//! Easy integration (§5.2, Definition 5.3).
//!
//! A reclamation scheme is *easily integrated* when:
//!
//! 1. it is provided as an **object** (one uniform API for all plain
//!    implementations — not adjusted per data structure);
//! 2. its API operations are only inserted at: operation boundaries,
//!    `alloc()`/`retire()` replacements, or primitive memory-access
//!    replacements;
//! 3. a primitive-replacing API operation is a **linearizable**
//!    implementation of that primitive;
//! 4. the integrated implementation is **well-formed** — in particular,
//!    no roll-backs from scheme code into data-structure code; and
//! 5. the scheme may add fields to the node layout but must not access
//!    any **original** field of the node.
//!
//! The conditions split into a *static* part — what the scheme's
//! interface looks like, captured by [`SchemeInterface`] and checked by
//! [`check_easy_integration`] — and a *dynamic* part — what actually
//! happened during an integrated execution, captured by
//! [`IntegrationMonitor`], which the simulator feeds with roll-back and
//! foreign-field-access events.

use std::fmt;

/// Where a reclamation-scheme API operation is inserted into the plain
/// implementation (Condition 2 of Definition 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallSite {
    /// Upon the invocation or before the termination of a
    /// data-structure operation (`beginOp()` / `endOp()`).
    OperationBoundary,
    /// Replacement of an `alloc()` call.
    AllocReplacement,
    /// Replacement of a `retire()` call.
    RetireReplacement,
    /// Replacement of a primitive memory-access operation
    /// (read/write/CAS on a shared word).
    PrimitiveReplacement,
    /// Anywhere else — a hand-placed call requiring understanding of the
    /// data-structure code (checkpoints, phase annotations, …). Its
    /// presence disqualifies easy integration.
    Arbitrary,
}

impl fmt::Display for CallSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CallSite::OperationBoundary => "operation boundary",
            CallSite::AllocReplacement => "alloc replacement",
            CallSite::RetireReplacement => "retire replacement",
            CallSite::PrimitiveReplacement => "primitive replacement",
            CallSite::Arbitrary => "arbitrary code location",
        };
        f.write_str(s)
    }
}

/// A code-shape requirement a scheme imposes on the plain implementation
/// before integration (§5.2 discussion: AOA, NBR, VBR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeShape {
    /// AOA: the implementation must first be transformed to normalized
    /// form (Timnat & Petrank).
    NormalizedForm,
    /// NBR / FA: the code must be divided into separate read and write
    /// phases.
    ReadWritePhases,
    /// VBR: checkpoints must be installed at linearization-aware spots.
    Checkpoints,
}

impl fmt::Display for CodeShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CodeShape::NormalizedForm => "normalized form",
            CodeShape::ReadWritePhases => "read/write phase division",
            CodeShape::Checkpoints => "checkpoint installation",
        };
        f.write_str(s)
    }
}

/// Static description of a reclamation scheme's integration interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeInterface {
    /// Scheme name (for reports).
    pub name: String,
    /// Condition 1: provided as one uniform object.
    pub provided_as_object: bool,
    /// Condition 2: every insertion point used by the scheme.
    pub call_sites: Vec<CallSite>,
    /// Condition 3: primitive replacements are linearizable
    /// implementations of the replaced primitive.
    pub primitive_replacements_linearizable: bool,
    /// Condition 4 (negation): the scheme requires roll-back
    /// instructions — control transfer from scheme code back into
    /// data-structure code.
    pub uses_rollback: bool,
    /// Condition 5 (negation): the scheme reads or writes *original*
    /// node fields (fields it did not itself add).
    pub accesses_foreign_fields: bool,
    /// Code shape the plain implementation must satisfy beforehand.
    pub required_code_shape: Option<CodeShape>,
}

impl SchemeInterface {
    /// Starts an interface description for a scheme with the given name
    /// and the most permissive (easily-integrable) defaults.
    pub fn new(name: impl Into<String>) -> Self {
        SchemeInterface {
            name: name.into(),
            provided_as_object: true,
            call_sites: Vec::new(),
            primitive_replacements_linearizable: true,
            uses_rollback: false,
            accesses_foreign_fields: false,
            required_code_shape: None,
        }
    }

    /// Adds an insertion point.
    pub fn call_site(mut self, site: CallSite) -> Self {
        self.call_sites.push(site);
        self
    }

    /// Marks the scheme as requiring roll-backs.
    pub fn with_rollback(mut self) -> Self {
        self.uses_rollback = true;
        self
    }

    /// Marks the scheme as touching original node fields.
    pub fn with_foreign_field_access(mut self) -> Self {
        self.accesses_foreign_fields = true;
        self
    }

    /// Declares a required code shape.
    pub fn with_code_shape(mut self, shape: CodeShape) -> Self {
        self.required_code_shape = Some(shape);
        self
    }

    /// Marks the scheme as *not* provided as a single uniform object.
    pub fn not_an_object(mut self) -> Self {
        self.provided_as_object = false;
        self
    }

    /// Marks primitive replacements as not linearizable.
    pub fn with_non_linearizable_primitives(mut self) -> Self {
        self.primitive_replacements_linearizable = false;
        self
    }
}

/// A reason an interface fails Definition 5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrationFailure {
    /// Condition 1 violated.
    NotProvidedAsObject,
    /// Condition 2 violated: an API call at an arbitrary location.
    ArbitraryCallSite,
    /// Condition 3 violated.
    NonLinearizablePrimitive,
    /// Condition 4 violated: roll-backs break well-formedness.
    RequiresRollback,
    /// Condition 5 violated.
    AccessesForeignFields,
    /// Code-shape preconditions mean the integration needs intimate
    /// knowledge of the implementation (fails Conditions 1–2 in spirit;
    /// the paper classifies AOA/NBR/VBR out via this route).
    RequiresCodeShape(CodeShape),
}

impl fmt::Display for IntegrationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrationFailure::NotProvidedAsObject => {
                write!(f, "not provided as a uniform object (condition 1)")
            }
            IntegrationFailure::ArbitraryCallSite => {
                write!(f, "API calls at arbitrary code locations (condition 2)")
            }
            IntegrationFailure::NonLinearizablePrimitive => {
                write!(f, "primitive replacement not linearizable (condition 3)")
            }
            IntegrationFailure::RequiresRollback => {
                write!(f, "requires roll-back instructions (condition 4)")
            }
            IntegrationFailure::AccessesForeignFields => {
                write!(f, "accesses original node fields (condition 5)")
            }
            IntegrationFailure::RequiresCodeShape(s) => {
                write!(f, "requires code shape: {s}")
            }
        }
    }
}

/// Verdict of the static Definition 5.3 check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EasyIntegrationVerdict {
    /// Scheme name.
    pub scheme: String,
    /// Failures; empty ⇒ easily integrated.
    pub failures: Vec<IntegrationFailure>,
}

impl EasyIntegrationVerdict {
    /// Whether the scheme is easily integrated.
    pub fn is_easy(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for EasyIntegrationVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_easy() {
            write!(f, "{}: easily integrated", self.scheme)
        } else {
            write!(f, "{}: not easily integrated (", self.scheme)?;
            for (i, fail) in self.failures.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{fail}")?;
            }
            write!(f, ")")
        }
    }
}

/// Checks Definition 5.3 against a static interface description.
///
/// # Example
///
/// ```
/// use era_core::integration::{check_easy_integration, CallSite, SchemeInterface};
///
/// // EBR: beginOp/endOp at operation boundaries + retire replacement.
/// let ebr = SchemeInterface::new("EBR")
///     .call_site(CallSite::OperationBoundary)
///     .call_site(CallSite::RetireReplacement);
/// assert!(check_easy_integration(&ebr).is_easy());
///
/// // VBR: checkpoints + roll-backs.
/// let vbr = SchemeInterface::new("VBR")
///     .call_site(CallSite::Arbitrary)
///     .with_rollback()
///     .with_code_shape(era_core::integration::CodeShape::Checkpoints);
/// assert!(!check_easy_integration(&vbr).is_easy());
/// ```
pub fn check_easy_integration(iface: &SchemeInterface) -> EasyIntegrationVerdict {
    let mut failures = Vec::new();
    if !iface.provided_as_object {
        failures.push(IntegrationFailure::NotProvidedAsObject);
    }
    if iface.call_sites.contains(&CallSite::Arbitrary) {
        failures.push(IntegrationFailure::ArbitraryCallSite);
    }
    if iface.call_sites.contains(&CallSite::PrimitiveReplacement)
        && !iface.primitive_replacements_linearizable
    {
        failures.push(IntegrationFailure::NonLinearizablePrimitive);
    }
    if iface.uses_rollback {
        failures.push(IntegrationFailure::RequiresRollback);
    }
    if iface.accesses_foreign_fields {
        failures.push(IntegrationFailure::AccessesForeignFields);
    }
    if let Some(shape) = iface.required_code_shape {
        failures.push(IntegrationFailure::RequiresCodeShape(shape));
    }
    EasyIntegrationVerdict {
        scheme: iface.name.clone(),
        failures,
    }
}

/// Runtime monitor for the dynamic side of Definition 5.3: the simulator
/// reports roll-backs and foreign-field accesses as they happen, so a
/// scheme's *declared* interface can be confronted with its behaviour.
#[derive(Debug, Clone, Default)]
pub struct IntegrationMonitor {
    rollbacks: usize,
    foreign_field_accesses: usize,
}

impl IntegrationMonitor {
    /// Creates a monitor with zero counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a control transfer from scheme code back into
    /// data-structure code (a roll-back / neutralization restart).
    pub fn record_rollback(&mut self) {
        self.rollbacks += 1;
    }

    /// Records a scheme access to an original node field.
    pub fn record_foreign_field_access(&mut self) {
        self.foreign_field_accesses += 1;
    }

    /// Roll-backs observed.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }

    /// Foreign field accesses observed.
    pub fn foreign_field_accesses(&self) -> usize {
        self.foreign_field_accesses
    }

    /// Whether the observed behaviour is consistent with an
    /// easily-integrated scheme (no roll-backs, no foreign fields).
    pub fn behaved_easily(&self) -> bool {
        self.rollbacks == 0 && self.foreign_field_accesses == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ebr_like_interface_is_easy() {
        let ebr = SchemeInterface::new("EBR")
            .call_site(CallSite::OperationBoundary)
            .call_site(CallSite::RetireReplacement);
        let v = check_easy_integration(&ebr);
        assert!(v.is_easy());
        assert_eq!(v.to_string(), "EBR: easily integrated");
    }

    #[test]
    fn hp_like_interface_is_easy() {
        let hp = SchemeInterface::new("HP")
            .call_site(CallSite::AllocReplacement)
            .call_site(CallSite::RetireReplacement)
            .call_site(CallSite::PrimitiveReplacement);
        assert!(check_easy_integration(&hp).is_easy());
    }

    #[test]
    fn rollback_disqualifies() {
        let nbr = SchemeInterface::new("NBR")
            .call_site(CallSite::OperationBoundary)
            .with_rollback()
            .with_code_shape(CodeShape::ReadWritePhases);
        let v = check_easy_integration(&nbr);
        assert!(!v.is_easy());
        assert!(v.failures.contains(&IntegrationFailure::RequiresRollback));
        assert!(v.failures.contains(&IntegrationFailure::RequiresCodeShape(
            CodeShape::ReadWritePhases
        )));
    }

    #[test]
    fn foreign_fields_disqualify() {
        let s = SchemeInterface::new("X").with_foreign_field_access();
        let v = check_easy_integration(&s);
        assert_eq!(v.failures, vec![IntegrationFailure::AccessesForeignFields]);
    }

    #[test]
    fn non_object_disqualifies() {
        let s = SchemeInterface::new("X").not_an_object();
        assert!(!check_easy_integration(&s).is_easy());
    }

    #[test]
    fn non_linearizable_primitive_only_matters_when_used() {
        let without = SchemeInterface::new("X").with_non_linearizable_primitives();
        assert!(check_easy_integration(&without).is_easy());
        let with = SchemeInterface::new("X")
            .call_site(CallSite::PrimitiveReplacement)
            .with_non_linearizable_primitives();
        assert!(!check_easy_integration(&with).is_easy());
    }

    #[test]
    fn arbitrary_call_site_disqualifies() {
        let s = SchemeInterface::new("X").call_site(CallSite::Arbitrary);
        let v = check_easy_integration(&s);
        assert!(v.failures.contains(&IntegrationFailure::ArbitraryCallSite));
        assert!(v.to_string().contains("condition 2"));
    }

    #[test]
    fn monitor_counts() {
        let mut m = IntegrationMonitor::new();
        assert!(m.behaved_easily());
        m.record_rollback();
        m.record_foreign_field_access();
        m.record_rollback();
        assert_eq!(m.rollbacks(), 2);
        assert_eq!(m.foreign_field_accesses(), 1);
        assert!(!m.behaved_easily());
    }

    #[test]
    fn call_site_display() {
        assert_eq!(
            CallSite::OperationBoundary.to_string(),
            "operation boundary"
        );
        assert_eq!(
            CodeShape::Checkpoints.to_string(),
            "checkpoint installation"
        );
    }
}
