//! Identifier newtypes shared across the model.
//!
//! The paper's model (§3) has a fixed set of `N` executing threads,
//! shared objects (memory words or whole data structures), and nodes.
//! Nodes are *logical* entities (§4.1): re-allocating the same address
//! yields a *different* node, which we capture with an incarnation
//! counter — see [`NodeId`].

use std::fmt;

/// Identifier of one of the `N` executing threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub usize);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a shared object.
///
/// An object may be a whole data structure (e.g. a set) or a single
/// shared memory word — the history projections of §3 treat both
/// uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// Identifier of a *logical* node: an address plus an incarnation count.
///
/// §4.1: "after a node returns to being unallocated, a new allocation
/// from the same address is considered as an allocation of a different
/// node". Two `NodeId`s with equal `addr` but different `incarnation`
/// are different nodes; a pointer holding the old incarnation is exactly
/// the paper's *invalid* pointer (Definition 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// The memory address (abstract cell index in the simulator).
    pub addr: usize,
    /// How many times this address has been allocated before, plus one.
    pub incarnation: u64,
}

impl NodeId {
    /// The first logical node living at `addr`.
    pub fn first(addr: usize) -> Self {
        NodeId {
            addr,
            incarnation: 1,
        }
    }

    /// The logical node of the next allocation at the same address.
    pub fn next_incarnation(self) -> Self {
        NodeId {
            addr: self.addr,
            incarnation: self.incarnation + 1,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}#{}", self.addr, self.incarnation)
    }
}

/// Index of a step in an execution `E = C_0 · s_1 · C_1 · …` (§3).
///
/// Step `s_i` leads from configuration `C_{i-1}` to `C_i`; the index is
/// 1-based to match the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StepIndex(pub usize);

impl fmt::Display for StepIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_incarnations_are_distinct_nodes() {
        let n1 = NodeId::first(7);
        let n2 = n1.next_incarnation();
        assert_eq!(n1.addr, n2.addr);
        assert_ne!(n1, n2);
        assert_eq!(n2.incarnation, 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ThreadId(3).to_string(), "T3");
        assert_eq!(ObjectId(9).to_string(), "O9");
        assert_eq!(NodeId::first(4).to_string(), "n4#1");
        assert_eq!(StepIndex(12).to_string(), "s12");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ThreadId(0));
        s.insert(ThreadId(0));
        s.insert(ThreadId(1));
        assert_eq!(s.len(), 2);
        assert!(ThreadId(0) < ThreadId(1));
        assert!(NodeId::first(1) < NodeId::first(1).next_incarnation());
    }
}
