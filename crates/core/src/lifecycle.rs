//! Node life-cycles (§4.1).
//!
//! Each node in a set implementation goes through a life-cycle:
//!
//! ```text
//! unallocated → local → shared → retired → unallocated → …
//!                  └──────────────↗
//! ```
//!
//! A node is *active* while local or shared. Retiring announces the node
//! is about to become garbage; reclaiming returns its memory for reuse
//! (a new *incarnation*, i.e. a different logical node — see
//! [`crate::ids::NodeId`]). The tracker enforces the paper's rules:
//!
//! * only unallocated memory can be allocated;
//! * only the allocating thread owns a `local` node (it may `share` it);
//! * a node becomes `retired` at most once, from an active state;
//! * nodes must be unreachable when retired (enforced by the caller /
//!   simulator, which knows reachability; the tracker records the claim);
//! * only retired nodes may be reclaimed.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ids::{NodeId, ThreadId};

/// The four life-cycle states of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Memory not available to the executing threads.
    Unallocated,
    /// Allocated by `owner`; no other thread has access.
    Local(ThreadId),
    /// Potentially reachable / accessible by several threads.
    Shared,
    /// Announced as garbage; awaiting reclamation.
    Retired,
}

impl NodeState {
    /// Whether the node is *active* (local or shared) per §4.1/§5.1.
    pub fn is_active(self) -> bool {
        matches!(self, NodeState::Local(_) | NodeState::Shared)
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeState::Unallocated => write!(f, "unallocated"),
            NodeState::Local(t) => write!(f, "local({t})"),
            NodeState::Shared => write!(f, "shared"),
            NodeState::Retired => write!(f, "retired"),
        }
    }
}

/// An illegal life-cycle transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleError {
    /// Allocation of an address whose current node is not unallocated.
    AllocInUse {
        /// The live node occupying the address.
        node: NodeId,
        /// Its current state.
        state: NodeState,
    },
    /// `share` called on a node that is not local.
    ShareNotLocal {
        /// The node being shared.
        node: NodeId,
        /// Its current state.
        state: NodeState,
    },
    /// `share` called by a thread that does not own the local node.
    ShareForeign {
        /// The node being shared.
        node: NodeId,
        /// The owning thread.
        owner: ThreadId,
        /// The thread that attempted the share.
        by: ThreadId,
    },
    /// `retire` called on a node that is already retired (§4.1: a node
    /// "cannot be retired again") or not allocated.
    RetireNotActive {
        /// The node being retired.
        node: NodeId,
        /// Its current state.
        state: NodeState,
    },
    /// `reclaim` called on a node that is not retired.
    ReclaimNotRetired {
        /// The node being reclaimed.
        node: NodeId,
        /// Its current state.
        state: NodeState,
    },
    /// Operation referenced a node incarnation that is not current.
    StaleIncarnation {
        /// The node referenced.
        node: NodeId,
        /// The incarnation currently live at that address (0 = never allocated).
        current: u64,
    },
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::AllocInUse { node, state } => {
                write!(f, "allocation at {node} while {state}")
            }
            LifecycleError::ShareNotLocal { node, state } => {
                write!(f, "share of {node} while {state}")
            }
            LifecycleError::ShareForeign { node, owner, by } => {
                write!(f, "share of {node} owned by {owner} attempted by {by}")
            }
            LifecycleError::RetireNotActive { node, state } => {
                write!(f, "retire of {node} while {state}")
            }
            LifecycleError::ReclaimNotRetired { node, state } => {
                write!(f, "reclaim of {node} while {state}")
            }
            LifecycleError::StaleIncarnation { node, current } => {
                write!(
                    f,
                    "reference to stale {node} (current incarnation {current})"
                )
            }
        }
    }
}

impl Error for LifecycleError {}

#[derive(Debug, Clone)]
struct AddrEntry {
    /// Incarnation currently (or most recently) occupying the address.
    incarnation: u64,
    state: NodeState,
}

/// Validates life-cycle transitions and maintains the §5.1 counters.
///
/// `active()` is the number of nodes that are local or shared —
/// `active_E(i)` in the paper; `retired()` counts nodes retired but not
/// yet reclaimed; `max_active()` is `max_active_E(i)`.
///
/// # Example
///
/// ```
/// use era_core::lifecycle::{LifecycleTracker, NodeState};
/// use era_core::ids::ThreadId;
///
/// let mut lc = LifecycleTracker::new();
/// let n = lc.alloc(0, ThreadId(0))?;
/// lc.share(n)?;
/// assert_eq!(lc.active(), 1);
/// lc.retire(n)?;
/// assert_eq!((lc.active(), lc.retired()), (0, 1));
/// lc.reclaim(n)?;
/// assert_eq!(lc.state(n), NodeState::Unallocated);
/// # Ok::<(), era_core::lifecycle::LifecycleError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LifecycleTracker {
    addrs: HashMap<usize, AddrEntry>,
    active: usize,
    retired: usize,
    max_active: usize,
    total_allocs: u64,
    total_reclaims: u64,
    total_retires: u64,
}

impl LifecycleTracker {
    /// Creates an empty tracker (all memory unallocated).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of `node`.
    ///
    /// A node whose incarnation is not the one currently at its address
    /// is, by definition, unallocated (it has been reclaimed); a later
    /// incarnation is a different node.
    pub fn state(&self, node: NodeId) -> NodeState {
        match self.addrs.get(&node.addr) {
            Some(e) if e.incarnation == node.incarnation => e.state,
            _ => NodeState::Unallocated,
        }
    }

    /// Allocates the next incarnation at `addr` for thread `by`.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::AllocInUse`] if the current node at `addr` is
    /// not unallocated.
    pub fn alloc(&mut self, addr: usize, by: ThreadId) -> Result<NodeId, LifecycleError> {
        let entry = self.addrs.entry(addr).or_insert(AddrEntry {
            incarnation: 0,
            state: NodeState::Unallocated,
        });
        if entry.state != NodeState::Unallocated {
            return Err(LifecycleError::AllocInUse {
                node: NodeId {
                    addr,
                    incarnation: entry.incarnation,
                },
                state: entry.state,
            });
        }
        entry.incarnation += 1;
        entry.state = NodeState::Local(by);
        self.active += 1;
        self.max_active = self.max_active.max(self.active);
        self.total_allocs += 1;
        Ok(NodeId {
            addr,
            incarnation: entry.incarnation,
        })
    }

    fn entry_mut(&mut self, node: NodeId) -> Result<&mut AddrEntry, LifecycleError> {
        match self.addrs.get_mut(&node.addr) {
            Some(e) if e.incarnation == node.incarnation => Ok(e),
            Some(e) => Err(LifecycleError::StaleIncarnation {
                node,
                current: e.incarnation,
            }),
            None => Err(LifecycleError::StaleIncarnation { node, current: 0 }),
        }
    }

    /// Publishes a local node (it may now become reachable).
    ///
    /// # Errors
    ///
    /// [`LifecycleError::ShareNotLocal`] if the node is not local;
    /// [`LifecycleError::StaleIncarnation`] if `node` is not current.
    pub fn share(&mut self, node: NodeId) -> Result<(), LifecycleError> {
        let e = self.entry_mut(node)?;
        match e.state {
            NodeState::Local(_) => {
                e.state = NodeState::Shared;
                Ok(())
            }
            state => Err(LifecycleError::ShareNotLocal { node, state }),
        }
    }

    /// Like [`share`](Self::share) but verifies the sharing thread owns
    /// the node.
    ///
    /// # Errors
    ///
    /// Additionally [`LifecycleError::ShareForeign`] when `by` is not the
    /// allocating thread — §4.1: "While being local, no thread but the
    /// allocating thread has access to this node."
    pub fn share_by(&mut self, node: NodeId, by: ThreadId) -> Result<(), LifecycleError> {
        let e = self.entry_mut(node)?;
        match e.state {
            NodeState::Local(owner) if owner == by => {
                e.state = NodeState::Shared;
                Ok(())
            }
            NodeState::Local(owner) => Err(LifecycleError::ShareForeign { node, owner, by }),
            state => Err(LifecycleError::ShareNotLocal { node, state }),
        }
    }

    /// Retires an active node (announces it as a reclamation candidate).
    ///
    /// # Errors
    ///
    /// [`LifecycleError::RetireNotActive`] on double-retire or retiring
    /// unallocated memory.
    pub fn retire(&mut self, node: NodeId) -> Result<(), LifecycleError> {
        let e = self.entry_mut(node)?;
        if !e.state.is_active() {
            return Err(LifecycleError::RetireNotActive {
                node,
                state: e.state,
            });
        }
        e.state = NodeState::Retired;
        self.active -= 1;
        self.retired += 1;
        self.total_retires += 1;
        Ok(())
    }

    /// Reclaims a retired node; its address becomes available for a new
    /// incarnation.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::ReclaimNotRetired`] if the node is not retired.
    pub fn reclaim(&mut self, node: NodeId) -> Result<(), LifecycleError> {
        let e = self.entry_mut(node)?;
        if e.state != NodeState::Retired {
            return Err(LifecycleError::ReclaimNotRetired {
                node,
                state: e.state,
            });
        }
        e.state = NodeState::Unallocated;
        self.retired -= 1;
        self.total_reclaims += 1;
        Ok(())
    }

    /// Number of active (local or shared) nodes — `active_E(i)`.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Number of retired, not-yet-reclaimed nodes.
    pub fn retired(&self) -> usize {
        self.retired
    }

    /// Running maximum of [`active`](Self::active) — `max_active_E(i)`.
    pub fn max_active(&self) -> usize {
        self.max_active
    }

    /// Total allocations performed so far.
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Total retire events so far.
    pub fn total_retires(&self) -> u64 {
        self.total_retires
    }

    /// Total reclamations so far.
    pub fn total_reclaims(&self) -> u64 {
        self.total_reclaims
    }

    /// Snapshot of the §5.1 counters as a robustness observation point.
    pub fn observe(&self) -> crate::robustness::FootprintSample {
        crate::robustness::FootprintSample {
            active: self.active,
            max_active: self.max_active,
            retired: self.retired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn full_cycle() {
        let mut lc = LifecycleTracker::new();
        let n = lc.alloc(3, T0).unwrap();
        assert_eq!(lc.state(n), NodeState::Local(T0));
        assert!(lc.state(n).is_active());
        lc.share(n).unwrap();
        assert_eq!(lc.state(n), NodeState::Shared);
        lc.retire(n).unwrap();
        assert_eq!(lc.state(n), NodeState::Retired);
        assert!(!lc.state(n).is_active());
        lc.reclaim(n).unwrap();
        assert_eq!(lc.state(n), NodeState::Unallocated);
    }

    #[test]
    fn local_node_can_be_retired_without_sharing() {
        // §4.1: "some nodes never become shared, and therefore become
        // retired after being local" (e.g. a failed insert).
        let mut lc = LifecycleTracker::new();
        let n = lc.alloc(0, T0).unwrap();
        lc.retire(n).unwrap();
        assert_eq!(lc.state(n), NodeState::Retired);
    }

    #[test]
    fn double_retire_rejected() {
        let mut lc = LifecycleTracker::new();
        let n = lc.alloc(0, T0).unwrap();
        lc.share(n).unwrap();
        lc.retire(n).unwrap();
        let err = lc.retire(n).unwrap_err();
        assert_eq!(
            err,
            LifecycleError::RetireNotActive {
                node: n,
                state: NodeState::Retired
            }
        );
    }

    #[test]
    fn reclaim_requires_retired() {
        let mut lc = LifecycleTracker::new();
        let n = lc.alloc(0, T0).unwrap();
        assert!(matches!(
            lc.reclaim(n),
            Err(LifecycleError::ReclaimNotRetired { .. })
        ));
    }

    #[test]
    fn alloc_in_use_rejected() {
        let mut lc = LifecycleTracker::new();
        let _ = lc.alloc(0, T0).unwrap();
        assert!(matches!(
            lc.alloc(0, T1),
            Err(LifecycleError::AllocInUse { .. })
        ));
    }

    #[test]
    fn reallocation_creates_new_incarnation() {
        let mut lc = LifecycleTracker::new();
        let n1 = lc.alloc(0, T0).unwrap();
        lc.retire(n1).unwrap();
        lc.reclaim(n1).unwrap();
        let n2 = lc.alloc(0, T1).unwrap();
        assert_ne!(n1, n2);
        assert_eq!(n2.incarnation, 2);
        // the old node is now permanently unallocated
        assert_eq!(lc.state(n1), NodeState::Unallocated);
        assert_eq!(lc.state(n2), NodeState::Local(T1));
    }

    #[test]
    fn stale_incarnation_operations_rejected() {
        let mut lc = LifecycleTracker::new();
        let n1 = lc.alloc(0, T0).unwrap();
        lc.retire(n1).unwrap();
        lc.reclaim(n1).unwrap();
        let _n2 = lc.alloc(0, T0).unwrap();
        assert!(matches!(
            lc.retire(n1),
            Err(LifecycleError::StaleIncarnation { current: 2, .. })
        ));
    }

    #[test]
    fn share_by_foreign_thread_rejected() {
        let mut lc = LifecycleTracker::new();
        let n = lc.alloc(0, T0).unwrap();
        assert!(matches!(
            lc.share_by(n, T1),
            Err(LifecycleError::ShareForeign { .. })
        ));
        lc.share_by(n, T0).unwrap();
    }

    #[test]
    fn counters_track_active_retired_max() {
        let mut lc = LifecycleTracker::new();
        let a = lc.alloc(0, T0).unwrap();
        let b = lc.alloc(1, T0).unwrap();
        let c = lc.alloc(2, T1).unwrap();
        assert_eq!((lc.active(), lc.max_active(), lc.retired()), (3, 3, 0));
        lc.retire(a).unwrap();
        lc.retire(b).unwrap();
        assert_eq!((lc.active(), lc.max_active(), lc.retired()), (1, 3, 2));
        lc.reclaim(a).unwrap();
        assert_eq!((lc.active(), lc.max_active(), lc.retired()), (1, 3, 1));
        lc.retire(c).unwrap();
        assert_eq!((lc.active(), lc.max_active(), lc.retired()), (0, 3, 2));
        assert_eq!(lc.total_allocs(), 3);
        assert_eq!(lc.total_retires(), 3);
        assert_eq!(lc.total_reclaims(), 1);
    }

    #[test]
    fn state_of_unknown_address_is_unallocated() {
        let lc = LifecycleTracker::new();
        assert_eq!(lc.state(NodeId::first(99)), NodeState::Unallocated);
    }

    #[test]
    fn display_of_errors_is_informative() {
        let mut lc = LifecycleTracker::new();
        let n = lc.alloc(0, T0).unwrap();
        let e = lc.alloc(0, T1).unwrap_err();
        assert!(e.to_string().contains("allocation"));
        lc.retire(n).unwrap();
        let e = lc.retire(n).unwrap_err();
        assert!(e.to_string().contains("retire"));
    }
}
