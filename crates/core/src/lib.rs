//! # era-core — executable formal model for the ERA theorem
//!
//! This crate turns the formal machinery of *"The ERA Theorem for Safe
//! Memory Reclamation"* (Sheffi & Petrank, PODC 2023) into executable,
//! testable Rust:
//!
//! * [`lifecycle`] — the node life-cycle of §4.1 (`unallocated → local →
//!   shared → retired → unallocated`), with logical node identities
//!   (address + incarnation) and transition validation.
//! * [`history`] — executions modelled by their histories (§3):
//!   invocation/response events, projections `H|T`, `H|O`, `H|⟨T,O⟩`.
//! * [`wellformed`] — the extended (nesting-aware) well-formedness of §3.
//! * [`spec`] — sequential specifications for sets, stacks, queues and
//!   registers.
//! * [`linearizability`] — a Wing–Gong style linearizability checker with
//!   memoization, including completion of pending operations.
//! * [`validity`] — pointer validity per Definition 4.1 (§4.2).
//! * [`safety`] — the three conditions of Definition 4.2 that an SMR
//!   scheme must satisfy when it permits unsafe accesses, including taint
//!   tracking for the "value never used" condition.
//! * [`robustness`] — Definitions 5.1/5.2 as an empirical classifier over
//!   retired-node footprint observations.
//! * [`integration`] — Definition 5.3 (easy integration) as a
//!   machine-checkable contract.
//! * [`applicability`] — Definitions 5.4–5.6 and the access-aware phase
//!   discipline of Appendix C.
//! * [`era`] — ERA profiles, the §6 trade-off matrix, and the theorem
//!   assertion itself.
//!
//! The crate is `#![forbid(unsafe_code)]` and dependency-free: it is pure
//! model. The sibling crates `era-sim` (deterministic simulator) and
//! `era-smr` (real reclamation schemes) feed it evidence.
//!
//! ## Example
//!
//! ```
//! use era_core::history::{History, Op, Ret};
//! use era_core::ids::{ObjectId, ThreadId};
//! use era_core::linearizability::Checker;
//! use era_core::spec::SetSpec;
//!
//! let set = ObjectId(1);
//! let mut h = History::new();
//! let t0 = ThreadId(0);
//! let t1 = ThreadId(1);
//! h.invoke(t0, set, Op::Insert(5));
//! h.invoke(t1, set, Op::Contains(5));
//! h.respond(t0, set, Ret::Bool(true));
//! h.respond(t1, set, Ret::Bool(true)); // observed the concurrent insert: fine
//! assert!(Checker::new(&SetSpec).is_linearizable(&h));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod applicability;
pub mod era;
pub mod history;
pub mod ids;
pub mod integration;
pub mod lifecycle;
pub mod linearizability;
pub mod robustness;
pub mod safety;
pub mod spec;
pub mod validity;
pub mod wellformed;

pub use era::{EraMatrix, EraProfile, TheoremViolation};
pub use history::{History, Op, Ret};
pub use ids::{NodeId, ObjectId, ThreadId};
pub use lifecycle::{LifecycleError, LifecycleTracker, NodeState};
pub use robustness::{RobustnessObservation, RobustnessVerdict};
pub use safety::{SafetyChecker, SafetyVerdict};
