//! Safe memory reclamation (§4.3, Definition 4.2).
//!
//! A reclamation scheme is an **SMR** with respect to a plain
//! implementation if every memory access in every integrated execution
//! is safe, *or* every unsafe access `s_i` (a dereference of an invalid
//! pointer, Definition 4.1) satisfies:
//!
//! 1. the accessed node's memory still belongs to **program space** in
//!    `C_{i-1}` (it was not handed back to the system);
//! 2. `s_i` does **not update** the node's content; and
//! 3. any value read by `s_i` into a variable `v` is **never used** —
//!    every later read of `v` is preceded by an overwrite of `v`.
//!
//! The [`SafetyChecker`] consumes a stream of [`MemEvent`]s emitted by
//! the simulator and produces a [`SafetyVerdict`]: the list of unsafe
//! accesses it observed and the list of Definition 4.2 **violations**
//! (an unsafe access by itself is *not* a violation — optimistic schemes
//! such as AOA and VBR rely on that).

use std::collections::HashSet;
use std::fmt;

use crate::ids::{NodeId, StepIndex, ThreadId};
use crate::validity::{Validity, ValidityTracker, VarId};

/// How a pointer variable was updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrSource {
    /// A fresh allocation of `node`.
    Alloc(NodeId),
    /// Assignment from another pointer variable.
    Copy(VarId),
    /// Set to null.
    Null,
}

/// What a dereference does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerefKind {
    /// Read a pointer field of the node into variable `dst`.
    ReadPtrInto {
        /// Destination variable.
        dst: VarId,
    },
    /// Read a non-pointer value of the node into variable `dst`.
    ReadValInto {
        /// Destination variable.
        dst: VarId,
    },
    /// Update the node's content (store, or a *successful* CAS).
    Write,
    /// An attempted update that did not change the node's content
    /// (a failed CAS) — permitted by Condition 2, which VBR exploits.
    FailedWrite,
}

/// One event in the memory-access stream fed to the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A pointer variable was updated.
    PtrUpdate {
        /// The variable.
        var: VarId,
        /// Where the new value came from.
        source: PtrSource,
    },
    /// A dereference of pointer `ptr`, i.e. an access to the node whose
    /// address is stored in it.
    Deref {
        /// Executing thread.
        thread: ThreadId,
        /// The pointer variable being dereferenced.
        ptr: VarId,
        /// What the access does.
        kind: DerefKind,
        /// Whether the memory accessed still belongs to program space.
        in_program_space: bool,
    },
    /// A node was reclaimed and became unallocated; `to_system` says the
    /// scheme returned the memory to the system rather than keeping it
    /// for re-allocation.
    Unallocate {
        /// The logical node.
        node: NodeId,
        /// Whether the memory left program space.
        to_system: bool,
    },
    /// The value of `var` was used for anything *other than* being
    /// overwritten (branching on it, arithmetic, returning it, …).
    /// Dereferences are reported as [`MemEvent::Deref`], which counts
    /// as a use of `ptr` internally.
    UseVar {
        /// Executing thread.
        thread: ThreadId,
        /// The variable read.
        var: VarId,
    },
    /// `var` was overwritten with data unrelated to any unsafe read
    /// (clears taint). Pointer overwrites via `PtrUpdate` also clear.
    OverwriteVar {
        /// The variable.
        var: VarId,
    },
}

/// Record of one unsafe memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsafeAccess {
    /// Step at which it happened.
    pub at: StepIndex,
    /// Executing thread.
    pub thread: ThreadId,
    /// The invalid pointer that was dereferenced.
    pub ptr: VarId,
    /// The node the pointer (formerly) referenced, if known.
    pub node: Option<NodeId>,
}

/// A violation of Definition 4.2 — the scheme is **not** an SMR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// Condition 1: the unsafe access touched system space.
    SystemSpaceAccess {
        /// The offending unsafe access.
        access: UnsafeAccess,
    },
    /// Condition 2: the unsafe access updated the node's content.
    MutatedReclaimed {
        /// The offending unsafe access.
        access: UnsafeAccess,
    },
    /// Condition 3: a value read by an unsafe access was later used.
    TaintedValueUsed {
        /// The unsafe access that produced the value.
        origin: UnsafeAccess,
        /// The variable through which it leaked.
        var: VarId,
        /// Step of the use.
        used_at: StepIndex,
        /// Thread that used it.
        used_by: ThreadId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SystemSpaceAccess { access } => write!(
                f,
                "{} dereferenced invalid {} into system space at {}",
                access.thread, access.ptr, access.at
            ),
            Violation::MutatedReclaimed { access } => write!(
                f,
                "{} mutated reclaimed memory via invalid {} at {}",
                access.thread, access.ptr, access.at
            ),
            Violation::TaintedValueUsed {
                origin,
                var,
                used_at,
                used_by,
            } => write!(
                f,
                "{used_by} used {var} at {used_at}, tainted by unsafe read at {} via {}",
                origin.at, origin.ptr
            ),
        }
    }
}

/// Outcome of checking an execution's access stream.
#[derive(Debug, Clone, Default)]
pub struct SafetyVerdict {
    /// Every unsafe access observed (not necessarily violations).
    pub unsafe_accesses: Vec<UnsafeAccess>,
    /// Definition 4.2 violations. Empty ⇒ the scheme behaved as an SMR
    /// on this execution.
    pub violations: Vec<Violation>,
}

impl SafetyVerdict {
    /// Whether the execution satisfied Definition 4.2.
    pub fn is_smr(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether every access was safe outright (no unsafe accesses at
    /// all) — the stronger, non-optimistic discipline of e.g. HP on
    /// Michael's list or EBR anywhere.
    pub fn all_accesses_safe(&self) -> bool {
        self.unsafe_accesses.is_empty()
    }
}

impl fmt::Display for SafetyVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} unsafe access(es), {} violation(s)",
            self.unsafe_accesses.len(),
            self.violations.len()
        )
    }
}

/// Streaming checker for Definitions 4.1 and 4.2.
///
/// Feed it every memory-relevant step via [`SafetyChecker::record`];
/// read the verdict with [`SafetyChecker::verdict`]. The checker owns a
/// [`ValidityTracker`] which callers may inspect via
/// [`SafetyChecker::validity`].
///
/// # Example
///
/// ```
/// use era_core::ids::{NodeId, ThreadId};
/// use era_core::safety::{DerefKind, MemEvent, PtrSource, SafetyChecker};
/// use era_core::validity::VarId;
///
/// let mut chk = SafetyChecker::new();
/// let (p, v) = (VarId(0), VarId(1));
/// let n = NodeId::first(0);
/// let t = ThreadId(0);
/// chk.record(MemEvent::PtrUpdate { var: p, source: PtrSource::Alloc(n) });
/// chk.record(MemEvent::Unallocate { node: n, to_system: false });
/// // An optimistic read through the now-invalid pointer: unsafe but OK
/// chk.record(MemEvent::Deref {
///     thread: t, ptr: p, kind: DerefKind::ReadValInto { dst: v }, in_program_space: true,
/// });
/// assert!(chk.verdict().is_smr());
/// // Using the tainted value breaks Condition 3:
/// chk.record(MemEvent::UseVar { thread: t, var: v });
/// assert!(!chk.verdict().is_smr());
/// ```
#[derive(Debug, Default)]
pub struct SafetyChecker {
    validity: ValidityTracker,
    verdict: SafetyVerdict,
    /// Variables currently holding a value read by an unsafe access,
    /// mapped to the access that produced it.
    tainted: std::collections::HashMap<VarId, UnsafeAccess>,
    /// Nodes whose memory left program space.
    system_space: HashSet<NodeId>,
    step: usize,
}

impl SafetyChecker {
    /// Creates a checker with an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// The embedded validity tracker (read-only).
    pub fn validity(&self) -> &ValidityTracker {
        &self.validity
    }

    /// Index of the next step to be recorded (1-based like the paper).
    pub fn next_step(&self) -> StepIndex {
        StepIndex(self.step + 1)
    }

    /// Records one event, advancing the step counter.
    pub fn record(&mut self, event: MemEvent) {
        self.step += 1;
        let at = StepIndex(self.step);
        match event {
            MemEvent::PtrUpdate { var, source } => {
                self.tainted.remove(&var); // any overwrite clears taint
                match source {
                    PtrSource::Alloc(node) => self.validity.on_alloc(var, node),
                    PtrSource::Copy(src) => {
                        // Copying a tainted pointer value is a *use* of it.
                        if let Some(origin) = self.tainted.get(&src).copied() {
                            self.verdict.violations.push(Violation::TaintedValueUsed {
                                origin,
                                var: src,
                                used_at: at,
                                used_by: origin.thread,
                            });
                        }
                        self.validity.on_copy(var, src);
                    }
                    PtrSource::Null => self.validity.on_null(var),
                }
            }
            MemEvent::Deref {
                thread,
                ptr,
                kind,
                in_program_space,
            } => {
                // Dereferencing is a use of `ptr`'s value.
                if let Some(origin) = self.tainted.get(&ptr).copied() {
                    self.verdict.violations.push(Violation::TaintedValueUsed {
                        origin,
                        var: ptr,
                        used_at: at,
                        used_by: thread,
                    });
                }
                let is_unsafe = self.validity.validity(ptr) == Validity::Invalid;
                if is_unsafe {
                    let access = UnsafeAccess {
                        at,
                        thread,
                        ptr,
                        node: self.validity.target(ptr),
                    };
                    self.verdict.unsafe_accesses.push(access);
                    // Condition 1.
                    if !in_program_space {
                        self.verdict
                            .violations
                            .push(Violation::SystemSpaceAccess { access });
                    }
                    // Condition 2.
                    if kind == DerefKind::Write {
                        self.verdict
                            .violations
                            .push(Violation::MutatedReclaimed { access });
                    }
                    // Condition 3 arming: the read value is tainted.
                    match kind {
                        DerefKind::ReadPtrInto { dst } | DerefKind::ReadValInto { dst } => {
                            // The destination now holds an unusable value;
                            // also reflect it in validity as an invalid ref.
                            self.tainted.insert(dst, access);
                            if let DerefKind::ReadPtrInto { dst } = kind {
                                self.validity.on_invalid_ref(dst, None);
                                let _ = dst;
                            }
                        }
                        DerefKind::Write | DerefKind::FailedWrite => {}
                    }
                } else {
                    // A safe read into dst clears any stale taint on dst.
                    match kind {
                        DerefKind::ReadPtrInto { dst } | DerefKind::ReadValInto { dst } => {
                            self.tainted.remove(&dst);
                        }
                        _ => {}
                    }
                }
            }
            MemEvent::Unallocate { node, to_system } => {
                self.validity.on_unallocate(node);
                if to_system {
                    self.system_space.insert(node);
                }
            }
            MemEvent::UseVar { thread, var } => {
                if let Some(origin) = self.tainted.get(&var).copied() {
                    self.verdict.violations.push(Violation::TaintedValueUsed {
                        origin,
                        var,
                        used_at: at,
                        used_by: thread,
                    });
                }
            }
            MemEvent::OverwriteVar { var } => {
                self.tainted.remove(&var);
            }
        }
    }

    /// Pointer bookkeeping helper: record a *safe* read of a pointer
    /// field: `dst := src_field` where `src_field` is the field variable.
    ///
    /// Equivalent to `record(PtrUpdate { var: dst, source: Copy(src_field) })`.
    pub fn record_ptr_read(&mut self, dst: VarId, src_field: VarId) {
        self.record(MemEvent::PtrUpdate {
            var: dst,
            source: PtrSource::Copy(src_field),
        });
    }

    /// The verdict so far.
    pub fn verdict(&self) -> &SafetyVerdict {
        &self.verdict
    }

    /// Consumes the checker, returning the final verdict.
    pub fn into_verdict(self) -> SafetyVerdict {
        self.verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ThreadId = ThreadId(0);
    const P: VarId = VarId(0);
    const Q: VarId = VarId(1);
    const V: VarId = VarId(2);

    fn alloc(chk: &mut SafetyChecker, var: VarId, addr: usize) -> NodeId {
        let n = NodeId::first(addr);
        chk.record(MemEvent::PtrUpdate {
            var,
            source: PtrSource::Alloc(n),
        });
        n
    }

    #[test]
    fn all_safe_execution() {
        let mut chk = SafetyChecker::new();
        let _n = alloc(&mut chk, P, 0);
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::ReadValInto { dst: V },
            in_program_space: true,
        });
        chk.record(MemEvent::UseVar { thread: T, var: V });
        let v = chk.verdict();
        assert!(v.is_smr());
        assert!(v.all_accesses_safe());
    }

    #[test]
    fn unsafe_read_alone_is_not_a_violation() {
        let mut chk = SafetyChecker::new();
        let n = alloc(&mut chk, P, 0);
        chk.record(MemEvent::Unallocate {
            node: n,
            to_system: false,
        });
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::ReadValInto { dst: V },
            in_program_space: true,
        });
        let v = chk.verdict();
        assert_eq!(v.unsafe_accesses.len(), 1);
        assert!(v.is_smr(), "optimistic read without use is fine");
        assert!(!v.all_accesses_safe());
    }

    #[test]
    fn condition1_system_space() {
        let mut chk = SafetyChecker::new();
        let n = alloc(&mut chk, P, 0);
        chk.record(MemEvent::Unallocate {
            node: n,
            to_system: true,
        });
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::ReadValInto { dst: V },
            in_program_space: false,
        });
        let v = chk.verdict();
        assert!(matches!(
            v.violations[0],
            Violation::SystemSpaceAccess { .. }
        ));
    }

    #[test]
    fn condition2_mutation() {
        let mut chk = SafetyChecker::new();
        let n = alloc(&mut chk, P, 0);
        chk.record(MemEvent::Unallocate {
            node: n,
            to_system: false,
        });
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::Write,
            in_program_space: true,
        });
        assert!(matches!(
            chk.verdict().violations[0],
            Violation::MutatedReclaimed { .. }
        ));
    }

    #[test]
    fn failed_cas_on_reclaimed_is_allowed() {
        // VBR's trick: attempting an update that is guaranteed to fail.
        let mut chk = SafetyChecker::new();
        let n = alloc(&mut chk, P, 0);
        chk.record(MemEvent::Unallocate {
            node: n,
            to_system: false,
        });
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::FailedWrite,
            in_program_space: true,
        });
        assert!(chk.verdict().is_smr());
        assert_eq!(chk.verdict().unsafe_accesses.len(), 1);
    }

    #[test]
    fn condition3_use_of_tainted_value() {
        let mut chk = SafetyChecker::new();
        let n = alloc(&mut chk, P, 0);
        chk.record(MemEvent::Unallocate {
            node: n,
            to_system: false,
        });
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::ReadValInto { dst: V },
            in_program_space: true,
        });
        chk.record(MemEvent::UseVar { thread: T, var: V });
        assert!(matches!(
            chk.verdict().violations[0],
            Violation::TaintedValueUsed { .. }
        ));
    }

    #[test]
    fn condition3_overwrite_clears_taint() {
        let mut chk = SafetyChecker::new();
        let n = alloc(&mut chk, P, 0);
        chk.record(MemEvent::Unallocate {
            node: n,
            to_system: false,
        });
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::ReadValInto { dst: V },
            in_program_space: true,
        });
        chk.record(MemEvent::OverwriteVar { var: V });
        chk.record(MemEvent::UseVar { thread: T, var: V });
        assert!(chk.verdict().is_smr());
    }

    #[test]
    fn dereferencing_tainted_pointer_is_a_use() {
        // The exact shape of the Theorem 6.1 contradiction: read a next
        // pointer from reclaimed memory, then traverse through it.
        let mut chk = SafetyChecker::new();
        let n = alloc(&mut chk, P, 0);
        chk.record(MemEvent::Unallocate {
            node: n,
            to_system: false,
        });
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::ReadPtrInto { dst: Q },
            in_program_space: true,
        });
        assert!(chk.verdict().is_smr(), "not yet used");
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: Q,
            kind: DerefKind::ReadValInto { dst: V },
            in_program_space: true,
        });
        assert!(!chk.verdict().is_smr());
        assert!(matches!(
            chk.verdict().violations[0],
            Violation::TaintedValueUsed { var, .. } if var == Q
        ));
    }

    #[test]
    fn copying_tainted_pointer_is_a_use() {
        let mut chk = SafetyChecker::new();
        let n = alloc(&mut chk, P, 0);
        chk.record(MemEvent::Unallocate {
            node: n,
            to_system: false,
        });
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::ReadPtrInto { dst: Q },
            in_program_space: true,
        });
        chk.record(MemEvent::PtrUpdate {
            var: V,
            source: PtrSource::Copy(Q),
        });
        assert!(!chk.verdict().is_smr());
    }

    #[test]
    fn safe_read_clears_previous_taint_on_destination() {
        let mut chk = SafetyChecker::new();
        let n = alloc(&mut chk, P, 0);
        let _m = alloc(&mut chk, Q, 1);
        chk.record(MemEvent::Unallocate {
            node: n,
            to_system: false,
        });
        // taint V via unsafe read
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: P,
            kind: DerefKind::ReadValInto { dst: V },
            in_program_space: true,
        });
        // overwrite V via safe read of another node
        chk.record(MemEvent::Deref {
            thread: T,
            ptr: Q,
            kind: DerefKind::ReadValInto { dst: V },
            in_program_space: true,
        });
        chk.record(MemEvent::UseVar { thread: T, var: V });
        assert!(chk.verdict().is_smr());
    }

    #[test]
    fn verdict_display() {
        let chk = SafetyChecker::new();
        assert_eq!(
            chk.verdict().to_string(),
            "0 unsafe access(es), 0 violation(s)"
        );
    }
}
