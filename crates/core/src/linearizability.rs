//! Linearizability checking (§3, Herlihy & Wing [25]).
//!
//! A complete history `H` is linearizable if it is well-formed and, for
//! every object `O`, the object's sequential specification contains a
//! sequential history `S` such that (1) `H|O` and `S` are equivalent and
//! (2) the real-time order of `H|O` is respected. A history with pending
//! operations is linearizable if it can be *completed* — adding matching
//! responses to a subset of pending operations and discarding the rest —
//! into a linearizable complete history.
//!
//! The checker is a Wing–Gong style depth-first search over
//! linearization orders, memoizing visited `(linearized-set, state)`
//! pairs (Lowe's optimization), so it is exact but intended for the
//! moderate histories produced by tests and the simulator (up to 128
//! operations per object).

use std::collections::HashSet;

use crate::history::{EventKind, History, Op, Ret};
use crate::ids::ObjectId;
use crate::spec::SequentialSpec;
use crate::wellformed;

/// One operation extracted from a history projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpRec {
    op: Op,
    /// `None` when the operation is pending.
    ret: Option<Ret>,
    /// Event index of the invocation within the projection.
    inv: usize,
    /// Event index of the response; `usize::MAX` when pending.
    res: usize,
}

/// Exact linearizability checker for a [`SequentialSpec`].
///
/// # Example
///
/// ```
/// use era_core::history::{History, Op, Ret};
/// use era_core::ids::{ObjectId, ThreadId};
/// use era_core::linearizability::Checker;
/// use era_core::spec::SetSpec;
///
/// let (t0, t1, set) = (ThreadId(0), ThreadId(1), ObjectId(1));
/// let mut h = History::new();
/// h.invoke(t0, set, Op::Insert(1));
/// h.respond(t0, set, Ret::Bool(true));
/// h.invoke(t1, set, Op::Contains(1));
/// h.respond(t1, set, Ret::Bool(false)); // insert already returned: illegal
/// assert!(!Checker::new(&SetSpec).is_linearizable(&h));
/// ```
#[derive(Debug)]
pub struct Checker<'a, S: SequentialSpec> {
    spec: &'a S,
    /// Maximum number of operations per object the checker accepts
    /// before refusing (DFS is exponential in the worst case).
    max_ops: usize,
}

impl<'a, S: SequentialSpec> Checker<'a, S> {
    /// Creates a checker for `spec` with the default operation cap (128).
    pub fn new(spec: &'a S) -> Self {
        Checker { spec, max_ops: 128 }
    }

    /// Sets the maximum number of operations per object.
    pub fn with_max_ops(mut self, max_ops: usize) -> Self {
        self.max_ops = max_ops.min(128);
        self
    }

    /// Checks the projection `H|object` for linearizability.
    ///
    /// # Panics
    ///
    /// Panics if the projection holds more than the configured maximum
    /// number of operations (128 hard cap, bitmask-bound).
    pub fn is_linearizable_object(&self, history: &History, object: ObjectId) -> bool {
        let proj = history.per_object(object);
        if !wellformed::is_well_formed(&proj) {
            return false;
        }
        // Extract per-thread operation sequences.
        let mut per_thread: Vec<Vec<OpRec>> = Vec::new();
        let threads = proj.threads();
        for &t in &threads {
            let tp = proj.per_thread(t);
            let mut ops = Vec::new();
            let mut open: Option<(Op, usize)> = None;
            for (i, e) in proj.events().iter().enumerate() {
                if e.thread != t {
                    continue;
                }
                match e.kind {
                    EventKind::Invoke(op) => open = Some((op, i)),
                    EventKind::Response(ret) => {
                        let (op, inv) = open.take().expect("well-formed");
                        ops.push(OpRec {
                            op,
                            ret: Some(ret),
                            inv,
                            res: i,
                        });
                    }
                }
            }
            if let Some((op, inv)) = open {
                ops.push(OpRec {
                    op,
                    ret: None,
                    inv,
                    res: usize::MAX,
                });
            }
            let _ = tp;
            per_thread.push(ops);
        }
        let flat: Vec<OpRec> = per_thread.iter().flatten().copied().collect();
        let total = flat.len();
        assert!(
            total <= self.max_ops,
            "history has {total} operations on {object}, cap is {}",
            self.max_ops
        );
        if total == 0 {
            return true;
        }
        // Global op ids: (thread index, op index) -> flat bit.
        let mut bit_of: Vec<Vec<u32>> = Vec::new();
        let mut next = 0u32;
        for ops in &per_thread {
            let mut v = Vec::new();
            for _ in ops {
                v.push(next);
                next += 1;
            }
            bit_of.push(v);
        }

        let full: u128 = if total == 128 {
            u128::MAX
        } else {
            (1u128 << total) - 1
        };
        let mut memo: HashSet<(u128, S::State)> = HashSet::new();
        self.dfs(
            &per_thread,
            &bit_of,
            0,
            full,
            self.spec.initial(),
            &mut memo,
        )
    }

    /// Depth-first search for a valid linearization.
    ///
    /// `done` is the bitmask of linearized operations. Completed at
    /// `done == full` *provided* every remaining (= none) op is handled;
    /// pending operations may be dropped, which we model by allowing the
    /// search to succeed once all *completed* operations are linearized
    /// and every remaining operation is pending.
    fn dfs(
        &self,
        per_thread: &[Vec<OpRec>],
        bit_of: &[Vec<u32>],
        done: u128,
        full: u128,
        state: S::State,
        memo: &mut HashSet<(u128, S::State)>,
    ) -> bool {
        if done == full {
            return true;
        }
        // If all remaining operations are pending, we may drop them all.
        let all_remaining_pending = per_thread.iter().enumerate().all(|(ti, ops)| {
            ops.iter()
                .enumerate()
                .all(|(oi, rec)| done & (1u128 << bit_of[ti][oi]) != 0 || rec.ret.is_none())
        });
        if all_remaining_pending {
            return true;
        }
        if !memo.insert((done, state.clone())) {
            return false;
        }
        // min response index among un-linearized ops
        let mut min_res = usize::MAX;
        for (ti, ops) in per_thread.iter().enumerate() {
            for (oi, rec) in ops.iter().enumerate() {
                if done & (1u128 << bit_of[ti][oi]) == 0 {
                    min_res = min_res.min(rec.res);
                }
            }
        }
        // Candidates: each thread's first un-linearized op whose
        // invocation precedes every un-linearized response.
        for (ti, ops) in per_thread.iter().enumerate() {
            let oi = match ops
                .iter()
                .enumerate()
                .find(|(oi, _)| done & (1u128 << bit_of[ti][*oi]) == 0)
            {
                Some((oi, _)) => oi,
                None => continue,
            };
            let rec = ops[oi];
            if rec.inv > min_res {
                continue; // would violate real-time order
            }
            let next_done = done | (1u128 << bit_of[ti][oi]);
            match rec.ret {
                Some(ret) => {
                    if let Some(next_state) = self.spec.step(&state, &rec.op, &ret) {
                        if self.dfs(per_thread, bit_of, next_done, full, next_state, memo) {
                            return true;
                        }
                    }
                }
                None => {
                    // Pending: either linearize with any legal outcome…
                    for (_, next_state) in self.spec.outcomes(&state, &rec.op) {
                        if self.dfs(per_thread, bit_of, next_done, full, next_state, memo) {
                            return true;
                        }
                    }
                    // …or drop it (skip): since a pending op is the last
                    // of its thread, skipping = marking done without a
                    // state change.
                    if self.dfs(per_thread, bit_of, next_done, full, state.clone(), memo) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Checks every object appearing in `history` against the spec.
    ///
    /// Callers with heterogeneous objects (e.g. a set plus the SMR API
    /// object) should project first and use
    /// [`is_linearizable_object`](Self::is_linearizable_object) with the
    /// appropriate spec per object.
    pub fn is_linearizable(&self, history: &History) -> bool {
        if !wellformed::is_well_formed(history) {
            return false;
        }
        history
            .objects()
            .into_iter()
            .all(|o| self.is_linearizable_object(history, o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Op, Ret};
    use crate::ids::ThreadId;
    use crate::spec::{QueueSpec, RegisterSpec, SetSpec, StackSpec};

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const SET: ObjectId = ObjectId(1);

    #[test]
    fn empty_history_linearizable() {
        assert!(Checker::new(&SetSpec).is_linearizable(&History::new()));
    }

    #[test]
    fn sequential_history() {
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.respond(T0, SET, Ret::Bool(true));
        h.invoke(T0, SET, Op::Insert(1));
        h.respond(T0, SET, Ret::Bool(false));
        h.invoke(T0, SET, Op::Delete(1));
        h.respond(T0, SET, Ret::Bool(true));
        assert!(Checker::new(&SetSpec).is_linearizable(&h));
    }

    #[test]
    fn wrong_sequential_return_rejected() {
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.respond(T0, SET, Ret::Bool(true));
        h.invoke(T0, SET, Op::Contains(1));
        h.respond(T0, SET, Ret::Bool(false));
        assert!(!Checker::new(&SetSpec).is_linearizable(&h));
    }

    #[test]
    fn concurrent_ops_may_linearize_either_way() {
        // contains(1) overlaps insert(1): both true and false are fine.
        for observed in [true, false] {
            let mut h = History::new();
            h.invoke(T0, SET, Op::Insert(1));
            h.invoke(T1, SET, Op::Contains(1));
            h.respond(T1, SET, Ret::Bool(observed));
            h.respond(T0, SET, Ret::Bool(true));
            assert!(
                Checker::new(&SetSpec).is_linearizable(&h),
                "observed={observed}"
            );
        }
    }

    #[test]
    fn real_time_order_enforced() {
        // insert(1) completes before contains(1) starts; contains must
        // see it.
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.respond(T0, SET, Ret::Bool(true));
        h.invoke(T1, SET, Op::Contains(1));
        h.respond(T1, SET, Ret::Bool(false));
        assert!(!Checker::new(&SetSpec).is_linearizable(&h));
    }

    #[test]
    fn pending_op_may_take_effect() {
        // insert(1) is pending, but a later contains already saw the key:
        // the pending op must be completed (it took effect).
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T1, SET, Op::Contains(1));
        h.respond(T1, SET, Ret::Bool(true));
        assert!(Checker::new(&SetSpec).is_linearizable(&h));
    }

    #[test]
    fn pending_op_may_be_dropped() {
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T1, SET, Op::Contains(1));
        h.respond(T1, SET, Ret::Bool(false));
        assert!(Checker::new(&SetSpec).is_linearizable(&h));
    }

    #[test]
    fn contradictory_observations_of_pending_rejected() {
        // Two sequential contains() by T1 observing 1 then not-1, with
        // only one pending insert(1) and no delete: impossible.
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T1, SET, Op::Contains(1));
        h.respond(T1, SET, Ret::Bool(true));
        h.invoke(T1, SET, Op::Contains(1));
        h.respond(T1, SET, Ret::Bool(false));
        assert!(!Checker::new(&SetSpec).is_linearizable(&h));
    }

    #[test]
    fn three_thread_queue_history() {
        let q = ObjectId(9);
        let spec = QueueSpec;
        let mut h = History::new();
        h.invoke(T0, q, Op::Enqueue(1));
        h.invoke(T1, q, Op::Enqueue(2));
        h.respond(T0, q, Ret::Unit);
        h.respond(T1, q, Ret::Unit);
        h.invoke(T2, q, Op::Dequeue);
        h.respond(T2, q, Ret::Val(Some(2)));
        h.invoke(T2, q, Op::Dequeue);
        h.respond(T2, q, Ret::Val(Some(1)));
        assert!(Checker::new(&spec).is_linearizable(&h));
        // FIFO violation: deq 2 then 2 again
        let mut bad = History::new();
        bad.invoke(T0, q, Op::Enqueue(1));
        bad.respond(T0, q, Ret::Unit);
        bad.invoke(T2, q, Op::Dequeue);
        bad.respond(T2, q, Ret::Val(Some(2)));
        assert!(!Checker::new(&spec).is_linearizable(&bad));
    }

    #[test]
    fn stack_lifo_checked() {
        let st = ObjectId(4);
        let spec = StackSpec;
        let mut h = History::new();
        h.invoke(T0, st, Op::Push(1));
        h.respond(T0, st, Ret::Unit);
        h.invoke(T0, st, Op::Push(2));
        h.respond(T0, st, Ret::Unit);
        h.invoke(T1, st, Op::Pop);
        h.respond(T1, st, Ret::Val(Some(2)));
        assert!(Checker::new(&spec).is_linearizable(&h));
        let mut bad = h.clone();
        bad.invoke(T1, st, Op::Pop);
        bad.respond(T1, st, Ret::Val(Some(2)));
        assert!(!Checker::new(&spec).is_linearizable(&bad));
    }

    #[test]
    fn register_cas_history() {
        let r = ObjectId(7);
        let spec = RegisterSpec { initial_value: 0 };
        let mut h = History::new();
        h.invoke(T0, r, Op::Cas(0, 1));
        h.invoke(T1, r, Op::Cas(0, 2));
        h.respond(T0, r, Ret::Bool(true));
        h.respond(T1, r, Ret::Bool(false));
        h.invoke(T2, r, Op::Read);
        h.respond(T2, r, Ret::Val(Some(1)));
        assert!(Checker::new(&spec).is_linearizable(&h));
        // Both CAS succeeding from 0 is impossible.
        let mut bad = History::new();
        bad.invoke(T0, r, Op::Cas(0, 1));
        bad.invoke(T1, r, Op::Cas(0, 2));
        bad.respond(T0, r, Ret::Bool(true));
        bad.respond(T1, r, Ret::Bool(true));
        assert!(!Checker::new(&spec).is_linearizable(&bad));
    }

    #[test]
    fn non_well_formed_rejected() {
        let mut h = History::new();
        h.respond(T0, SET, Ret::Bool(true));
        assert!(!Checker::new(&SetSpec).is_linearizable(&h));
    }

    #[test]
    fn per_object_independence() {
        // Two independent sets; each linearizable on its own.
        let s1 = ObjectId(1);
        let s2 = ObjectId(2);
        let mut h = History::new();
        h.invoke(T0, s1, Op::Insert(1));
        h.respond(T0, s1, Ret::Bool(true));
        h.invoke(T0, s2, Op::Contains(1));
        h.respond(T0, s2, Ret::Bool(false));
        assert!(Checker::new(&SetSpec).is_linearizable(&h));
    }

    /// Brute-force reference: enumerate all interleavings of complete
    /// operations and compare with the checker on tiny histories.
    #[cfg(test)]
    fn brute_force_set(h: &History, obj: ObjectId) -> bool {
        use crate::spec::SequentialSpec as _;
        #[derive(Clone, Copy)]
        struct R {
            op: Op,
            ret: Ret,
            inv: usize,
            res: usize,
        }
        let proj = h.per_object(obj);
        let mut recs: Vec<R> = Vec::new();
        let mut open: std::collections::HashMap<ThreadId, (Op, usize)> = Default::default();
        for (i, e) in proj.events().iter().enumerate() {
            match e.kind {
                EventKind::Invoke(op) => {
                    open.insert(e.thread, (op, i));
                }
                EventKind::Response(ret) => {
                    let (op, inv) = open.remove(&e.thread).unwrap();
                    recs.push(R {
                        op,
                        ret,
                        inv,
                        res: i,
                    });
                }
            }
        }
        if !open.is_empty() {
            panic!("brute force only handles complete histories");
        }
        fn perms(recs: &[R], used: &mut Vec<usize>, spec: &SetSpec) -> bool {
            if used.len() == recs.len() {
                return true;
            }
            for i in 0..recs.len() {
                if used.contains(&i) {
                    continue;
                }
                // real-time: no unused j with res(j) < inv(i)
                if recs
                    .iter()
                    .enumerate()
                    .any(|(j, rj)| !used.contains(&j) && j != i && rj.res < recs[i].inv)
                {
                    continue;
                }
                used.push(i);
                // replay
                let mut st = spec.initial();
                let mut ok = true;
                for &k in used.iter() {
                    match spec.step(&st, &recs[k].op, &recs[k].ret) {
                        Some(next) => st = next,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok && perms(recs, used, spec) {
                    return true;
                }
                used.pop();
            }
            false
        }
        perms(&recs, &mut Vec::new(), &SetSpec)
    }

    #[test]
    fn checker_matches_brute_force_on_random_histories() {
        use std::collections::BTreeSet;
        // Deterministic pseudo-random generation (no rand dependency in
        // unit tests): simple LCG.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _case in 0..200 {
            // Build a small concurrent history over keys {0,1} and 2 threads.
            let mut h = History::new();
            let mut model: Vec<Option<(Op, usize)>> = vec![None, None];
            let mut state: BTreeSet<i64> = BTreeSet::new(); // a *plausible* serial state
            let mut events = 0;
            while events < 10 {
                let t = next() % 2;
                let tid = ThreadId(t);
                match model[t] {
                    None => {
                        let op = match next() % 3 {
                            0 => Op::Insert((next() % 2) as i64),
                            1 => Op::Delete((next() % 2) as i64),
                            _ => Op::Contains((next() % 2) as i64),
                        };
                        h.invoke(tid, SET, op);
                        model[t] = Some((op, events));
                        events += 1;
                    }
                    Some((op, _)) => {
                        // Respond with a value that is sometimes right,
                        // sometimes wrong, to exercise both verdicts.
                        let truthful = next() % 4 != 0;
                        let ret = match op {
                            Op::Insert(k) => {
                                let ok = state.insert(k);
                                Ret::Bool(if truthful { ok } else { !ok })
                            }
                            Op::Delete(k) => {
                                let ok = state.remove(&k);
                                Ret::Bool(if truthful { ok } else { !ok })
                            }
                            Op::Contains(k) => {
                                let ok = state.contains(&k);
                                Ret::Bool(if truthful { ok } else { !ok })
                            }
                            _ => unreachable!(),
                        };
                        h.respond(tid, SET, ret);
                        model[t] = None;
                        events += 1;
                    }
                }
            }
            // Complete any pending ops with arbitrary answers.
            for (t, slot) in model.iter().enumerate() {
                if let Some((op, _)) = slot {
                    let ret = match op {
                        Op::Insert(_) | Op::Delete(_) | Op::Contains(_) => Ret::Bool(true),
                        _ => Ret::Unit,
                    };
                    h.respond(ThreadId(t), SET, ret);
                }
            }
            let fast = Checker::new(&SetSpec).is_linearizable(&h);
            let slow = brute_force_set(&h, SET);
            assert_eq!(fast, slow, "disagreement on history:\n{h}");
        }
    }
}
