//! Histories of executions (§3).
//!
//! An execution is modelled by its *history*: the sub-sequence of
//! operation invocation and response steps. This module provides the
//! event vocabulary ([`Op`], [`Ret`]), the [`History`] container, and the
//! paper's projections `H|T`, `H|O` and `H|⟨T,O⟩`.

use std::fmt;

use crate::ids::{ObjectId, ThreadId};

/// An operation invocation payload.
///
/// Covers the data-type operations used throughout the paper (§3 defines
/// the set type; stacks/queues/registers are routine extensions) plus the
/// reclamation-scheme API operations that are *nested* inside them
/// (§5.2: `beginOp`, `endOp`, `alloc`, `retire`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `insert(key)` on a set.
    Insert(i64),
    /// `delete(key)` on a set.
    Delete(i64),
    /// `contains(key)` on a set.
    Contains(i64),
    /// `push(v)` on a stack.
    Push(i64),
    /// `pop()` on a stack.
    Pop,
    /// `enqueue(v)` on a queue.
    Enqueue(i64),
    /// `dequeue()` on a queue.
    Dequeue,
    /// Atomic read of a memory word (treated as an object per Def. 5.3).
    Read,
    /// Atomic write of a memory word.
    Write(i64),
    /// Atomic compare-and-swap of a memory word.
    Cas(i64, i64),
    /// SMR `beginOp()` — start of a data-structure operation.
    BeginOp,
    /// SMR `endOp()` — end of a data-structure operation.
    EndOp,
    /// SMR `retire(node)` — the argument is an abstract node tag.
    Retire(u64),
    /// SMR `alloc()`.
    Alloc,
    /// SMR `protect(slot)` — pointer protection (HP/HE/IBR style).
    Protect(u64),
}

impl Op {
    /// Whether this is a reclamation-scheme API operation (as opposed to
    /// a data-structure operation).
    pub fn is_smr_op(self) -> bool {
        matches!(
            self,
            Op::BeginOp | Op::EndOp | Op::Retire(_) | Op::Alloc | Op::Protect(_)
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Insert(k) => write!(f, "insert({k})"),
            Op::Delete(k) => write!(f, "delete({k})"),
            Op::Contains(k) => write!(f, "contains({k})"),
            Op::Push(v) => write!(f, "push({v})"),
            Op::Pop => write!(f, "pop()"),
            Op::Enqueue(v) => write!(f, "enqueue({v})"),
            Op::Dequeue => write!(f, "dequeue()"),
            Op::Read => write!(f, "read()"),
            Op::Write(v) => write!(f, "write({v})"),
            Op::Cas(e, n) => write!(f, "cas({e},{n})"),
            Op::BeginOp => write!(f, "beginOp()"),
            Op::EndOp => write!(f, "endOp()"),
            Op::Retire(n) => write!(f, "retire(n{n})"),
            Op::Alloc => write!(f, "alloc()"),
            Op::Protect(s) => write!(f, "protect({s})"),
        }
    }
}

/// An operation response payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ret {
    /// Boolean result (set operations, CAS success).
    Bool(bool),
    /// Optional value (pop/dequeue — `None` when empty; reads).
    Val(Option<i64>),
    /// No information (beginOp/endOp/retire/…).
    Unit,
}

impl fmt::Display for Ret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ret::Bool(b) => write!(f, "{b}"),
            Ret::Val(Some(v)) => write!(f, "{v}"),
            Ret::Val(None) => write!(f, "empty"),
            Ret::Unit => write!(f, "ok"),
        }
    }
}

/// Invocation or response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An operation invocation step.
    Invoke(Op),
    /// An operation response step.
    Response(Ret),
}

/// One history event: who, on what object, invoke or response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Executing thread.
    pub thread: ThreadId,
    /// Accessed object.
    pub object: ObjectId,
    /// Invocation or response payload.
    pub kind: EventKind,
}

/// A history: a finite sequence of invocation/response events.
///
/// # Example
///
/// ```
/// use era_core::history::{History, Op, Ret};
/// use era_core::ids::{ObjectId, ThreadId};
///
/// let mut h = History::new();
/// h.invoke(ThreadId(0), ObjectId(1), Op::Insert(3));
/// h.respond(ThreadId(0), ObjectId(1), Ret::Bool(true));
/// assert!(h.is_complete());
/// assert_eq!(h.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an invocation event.
    pub fn invoke(&mut self, thread: ThreadId, object: ObjectId, op: Op) {
        self.events.push(Event {
            thread,
            object,
            kind: EventKind::Invoke(op),
        });
    }

    /// Appends a response event.
    pub fn respond(&mut self, thread: ThreadId, object: ObjectId, ret: Ret) {
        self.events.push(Event {
            thread,
            object,
            kind: EventKind::Response(ret),
        });
    }

    /// Appends an arbitrary event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// The events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `H|T` — the sub-history of events executed by `thread`.
    pub fn per_thread(&self, thread: ThreadId) -> History {
        History {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.thread == thread)
                .collect(),
        }
    }

    /// `H|O` — the sub-history of events executed on `object`.
    pub fn per_object(&self, object: ObjectId) -> History {
        History {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.object == object)
                .collect(),
        }
    }

    /// `H|⟨T,O⟩` — events executed by `thread` on `object`.
    pub fn per_thread_object(&self, thread: ThreadId, object: ObjectId) -> History {
        History {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.thread == thread && e.object == object)
                .collect(),
        }
    }

    /// Thread ids appearing in the history, ascending, de-duplicated.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut v: Vec<ThreadId> = self.events.iter().map(|e| e.thread).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Object ids appearing in the history, ascending, de-duplicated.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.events.iter().map(|e| e.object).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Two histories are *equivalent* if every per-thread projection
    /// agrees (§3).
    pub fn is_equivalent_to(&self, other: &History) -> bool {
        let mut threads = self.threads();
        for t in other.threads() {
            if !threads.contains(&t) {
                threads.push(t);
            }
        }
        threads
            .iter()
            .all(|&t| self.per_thread(t) == other.per_thread(t))
    }

    /// An operation is *complete* when its matching response is present;
    /// a history is complete when all operations are (§3).
    ///
    /// With nesting (§3, well-formed histories after [4]) matching is
    /// per `⟨T,O⟩`: within each such projection events must alternate
    /// invoke/response, so completeness is simply "no projection ends on
    /// an un-responded invocation".
    pub fn is_complete(&self) -> bool {
        self.pending().is_empty()
    }

    /// The pending operations: `(thread, object, op)` of every
    /// invocation with no matching response.
    pub fn pending(&self) -> Vec<(ThreadId, ObjectId, Op)> {
        use std::collections::HashMap;
        let mut open: HashMap<(ThreadId, ObjectId), Vec<Op>> = HashMap::new();
        for e in &self.events {
            match e.kind {
                EventKind::Invoke(op) => open.entry((e.thread, e.object)).or_default().push(op),
                EventKind::Response(_) => {
                    if let Some(stack) = open.get_mut(&(e.thread, e.object)) {
                        stack.pop();
                    }
                }
            }
        }
        let mut out: Vec<(ThreadId, ObjectId, Op)> = open
            .into_iter()
            .flat_map(|((t, o), ops)| ops.into_iter().map(move |op| (t, o, op)))
            .collect();
        out.sort_by_key(|&(t, o, _)| (t, o));
        out
    }
}

impl FromIterator<Event> for History {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        History {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for History {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            match e.kind {
                EventKind::Invoke(op) => {
                    writeln!(f, "{i:4}: {} {}.{} invoked", e.thread, e.object, op)?
                }
                EventKind::Response(r) => {
                    writeln!(f, "{i:4}: {} {} responded {}", e.thread, e.object, r)?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const SET: ObjectId = ObjectId(1);
    const SMR: ObjectId = ObjectId(2);

    fn sample() -> History {
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T1, SET, Op::Contains(1));
        h.respond(T0, SET, Ret::Bool(true));
        h.respond(T1, SET, Ret::Bool(false));
        h
    }

    #[test]
    fn projections() {
        let h = sample();
        assert_eq!(h.per_thread(T0).len(), 2);
        assert_eq!(h.per_thread(T1).len(), 2);
        assert_eq!(h.per_object(SET).len(), 4);
        assert_eq!(h.per_object(SMR).len(), 0);
        assert_eq!(h.per_thread_object(T0, SET).len(), 2);
    }

    #[test]
    fn completeness_and_pending() {
        let mut h = sample();
        assert!(h.is_complete());
        h.invoke(T0, SET, Op::Delete(1));
        assert!(!h.is_complete());
        assert_eq!(h.pending(), vec![(T0, SET, Op::Delete(1))]);
    }

    #[test]
    fn nested_smr_ops_pending() {
        // insert(1) { beginOp(); ... } with both pending
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T0, SMR, Op::BeginOp);
        assert_eq!(h.pending().len(), 2);
        h.respond(T0, SMR, Ret::Unit);
        assert_eq!(h.pending(), vec![(T0, SET, Op::Insert(1))]);
    }

    #[test]
    fn equivalence_is_per_thread() {
        let h1 = sample();
        // Reorder events of different threads: still equivalent.
        let mut h2 = History::new();
        h2.invoke(T1, SET, Op::Contains(1));
        h2.invoke(T0, SET, Op::Insert(1));
        h2.respond(T1, SET, Ret::Bool(false));
        h2.respond(T0, SET, Ret::Bool(true));
        assert!(h1.is_equivalent_to(&h2));
        // Changing a response breaks equivalence.
        let mut h3 = sample();
        h3.events.pop();
        h3.respond(T1, SET, Ret::Bool(true));
        assert!(!h1.is_equivalent_to(&h3));
    }

    #[test]
    fn equivalence_detects_extra_thread_in_other() {
        let h1 = sample();
        let mut h2 = sample();
        h2.invoke(ThreadId(7), SET, Op::Pop);
        assert!(!h1.is_equivalent_to(&h2));
        assert!(!h2.is_equivalent_to(&h1));
    }

    #[test]
    fn threads_and_objects_listing() {
        let mut h = sample();
        h.invoke(T0, SMR, Op::BeginOp);
        assert_eq!(h.threads(), vec![T0, T1]);
        assert_eq!(h.objects(), vec![SET, SMR]);
    }

    #[test]
    fn smr_op_classification() {
        assert!(Op::BeginOp.is_smr_op());
        assert!(Op::Retire(3).is_smr_op());
        assert!(!Op::Insert(1).is_smr_op());
        assert!(!Op::Read.is_smr_op());
    }

    #[test]
    fn display_renders_each_event() {
        let h = sample();
        let s = h.to_string();
        assert!(s.contains("insert(1)"));
        assert!(s.contains("responded"));
    }

    #[test]
    fn from_iterator_roundtrip() {
        let h = sample();
        let h2: History = h.events().iter().copied().collect();
        assert_eq!(h, h2);
    }
}
