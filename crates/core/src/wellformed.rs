//! Extended well-formedness of histories (§3, following Attiya et al. [4]).
//!
//! The classical definition of well-formed histories assumes each thread
//! alternates invocations and *immediately* matching responses. That is
//! too strong once a reclamation scheme's operations (`retire()`,
//! `alloc()`, `beginOp()`, …) are *nested* inside data-structure
//! operations. The paper therefore adopts the extended definition:
//!
//! 1. for every object `O`, `H|O` is well-formed: for every thread `T`,
//!    `H|⟨T,O⟩` starts with an invocation and alternates invocations and
//!    their immediate matching responses; and
//! 2. nesting is proper (LIFO): for two invocations `s_inv1 ≺ s_inv2` of
//!    the same thread with `s_inv2 ≺ s_res1`, the inner response
//!    `s_res2` precedes the outer one: `s_res2 ≺ s_res1`.
//!
//! Condition 4 of Definition 5.3 uses exactly this notion to outlaw
//! roll-backs: a roll-back jumps from inside a reclamation operation back
//! into data-structure code, leaving the inner invocation unreturned
//! while the outer operation continues — which shows up here as a
//! nesting violation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::history::{EventKind, History};
use crate::ids::{ObjectId, ThreadId};

/// A violation of the extended well-formedness conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormedError {
    /// Thread invoked on an object while it already has a pending
    /// invocation on that same object (breaks per-`⟨T,O⟩` alternation).
    OverlappingSameObject {
        /// Event index of the offending invocation.
        at: usize,
        /// Thread involved.
        thread: ThreadId,
        /// Object involved.
        object: ObjectId,
    },
    /// A response with no pending invocation by that thread.
    UnmatchedResponse {
        /// Event index of the offending response.
        at: usize,
        /// Thread involved.
        thread: ThreadId,
        /// Object involved.
        object: ObjectId,
    },
    /// A response that is not for the innermost open invocation —
    /// improper (non-LIFO) nesting, i.e. a control-flow roll-back.
    NonLifoNesting {
        /// Event index of the offending response.
        at: usize,
        /// Thread involved.
        thread: ThreadId,
        /// The object the response names.
        responded: ObjectId,
        /// The innermost open invocation's object (which should have
        /// responded first).
        expected: ObjectId,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::OverlappingSameObject { at, thread, object } => write!(
                f,
                "event {at}: {thread} invoked on {object} with a pending invocation on it"
            ),
            WellFormedError::UnmatchedResponse { at, thread, object } => {
                write!(f, "event {at}: {thread} responded on {object} with nothing pending")
            }
            WellFormedError::NonLifoNesting { at, thread, responded, expected } => write!(
                f,
                "event {at}: {thread} responded on {responded} while inner {expected} is open (roll-back)"
            ),
        }
    }
}

impl Error for WellFormedError {}

/// Checks the extended well-formedness of a history.
///
/// Returns the first violation in event order, or `Ok(())`.
///
/// # Example
///
/// ```
/// use era_core::history::{History, Op, Ret};
/// use era_core::ids::{ObjectId, ThreadId};
/// use era_core::wellformed::check;
///
/// let (t, set, smr) = (ThreadId(0), ObjectId(1), ObjectId(2));
/// let mut h = History::new();
/// h.invoke(t, set, Op::Insert(1)); // outer data-structure op
/// h.invoke(t, smr, Op::BeginOp);   // nested SMR op
/// h.respond(t, smr, Ret::Unit);    // inner returns first: proper nesting
/// h.respond(t, set, Ret::Bool(true));
/// assert!(check(&h).is_ok());
/// ```
pub fn check(history: &History) -> Result<(), WellFormedError> {
    // Per-thread stack of open invocations (object ids, innermost last).
    let mut open: HashMap<ThreadId, Vec<ObjectId>> = HashMap::new();
    for (at, e) in history.events().iter().enumerate() {
        let stack = open.entry(e.thread).or_default();
        match e.kind {
            EventKind::Invoke(_) => {
                if stack.contains(&e.object) {
                    return Err(WellFormedError::OverlappingSameObject {
                        at,
                        thread: e.thread,
                        object: e.object,
                    });
                }
                stack.push(e.object);
            }
            EventKind::Response(_) => match stack.last().copied() {
                None => {
                    return Err(WellFormedError::UnmatchedResponse {
                        at,
                        thread: e.thread,
                        object: e.object,
                    })
                }
                Some(top) if top == e.object => {
                    stack.pop();
                }
                Some(top) => {
                    return Err(WellFormedError::NonLifoNesting {
                        at,
                        thread: e.thread,
                        responded: e.object,
                        expected: top,
                    })
                }
            },
        }
    }
    Ok(())
}

/// Whether `history` is well-formed under the extended definition.
pub fn is_well_formed(history: &History) -> bool {
    check(history).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Op, Ret};

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const SET: ObjectId = ObjectId(1);
    const SMR: ObjectId = ObjectId(2);
    const WORD: ObjectId = ObjectId(3);

    #[test]
    fn flat_history_is_well_formed() {
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.respond(T0, SET, Ret::Bool(true));
        h.invoke(T0, SET, Op::Delete(1));
        h.respond(T0, SET, Ret::Bool(true));
        assert!(is_well_formed(&h));
    }

    #[test]
    fn interleaved_threads_are_fine() {
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T1, SET, Op::Insert(2));
        h.respond(T1, SET, Ret::Bool(true));
        h.respond(T0, SET, Ret::Bool(true));
        assert!(is_well_formed(&h));
    }

    #[test]
    fn proper_nesting_accepted() {
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T0, SMR, Op::BeginOp);
        h.respond(T0, SMR, Ret::Unit);
        h.invoke(T0, WORD, Op::Cas(0, 1));
        h.respond(T0, WORD, Ret::Bool(true));
        h.invoke(T0, SMR, Op::EndOp);
        h.respond(T0, SMR, Ret::Unit);
        h.respond(T0, SET, Ret::Bool(true));
        assert!(is_well_formed(&h));
    }

    #[test]
    fn rollback_is_a_nesting_violation() {
        // The outer set operation "returns" while the nested SMR read is
        // still open — the shape of a roll-back out of scheme code.
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T0, SMR, Op::BeginOp);
        h.respond(T0, SET, Ret::Bool(true));
        let err = check(&h).unwrap_err();
        assert_eq!(
            err,
            WellFormedError::NonLifoNesting {
                at: 2,
                thread: T0,
                responded: SET,
                expected: SMR
            }
        );
    }

    #[test]
    fn overlapping_same_object_rejected() {
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T0, SET, Op::Delete(1));
        assert!(matches!(
            check(&h),
            Err(WellFormedError::OverlappingSameObject { at: 1, .. })
        ));
    }

    #[test]
    fn unmatched_response_rejected() {
        let mut h = History::new();
        h.respond(T0, SET, Ret::Bool(true));
        assert!(matches!(
            check(&h),
            Err(WellFormedError::UnmatchedResponse { at: 0, .. })
        ));
    }

    #[test]
    fn pending_inner_ops_are_allowed() {
        // A history may end with pending operations and still be
        // well-formed (well-formedness != completeness).
        let mut h = History::new();
        h.invoke(T0, SET, Op::Insert(1));
        h.invoke(T0, SMR, Op::BeginOp);
        assert!(is_well_formed(&h));
        assert!(!h.is_complete());
    }

    #[test]
    fn error_display() {
        let e = WellFormedError::NonLifoNesting {
            at: 5,
            thread: T0,
            responded: SET,
            expected: SMR,
        };
        assert!(e.to_string().contains("roll-back"));
    }
}
