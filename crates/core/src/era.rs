//! The ERA trade-off matrix and Theorem 6.1 (§6).
//!
//! Theorem 6.1: *any memory reclamation scheme can provide at most two of
//! robustness, easy integration, and wide applicability*. The paper
//! proves the stronger form: even **weak** robustness is impossible
//! together with easy integration and wide applicability.
//!
//! [`EraProfile`] bundles the measured verdicts for one scheme;
//! [`EraMatrix`] collects profiles and [`EraMatrix::check_theorem`]
//! asserts that no row contradicts the theorem — which, for *measured*
//! profiles, doubles as a sanity check on the measurement pipeline.

use std::fmt;

use crate::applicability::ApplicabilityClass;
use crate::robustness::RobustnessVerdict;

/// Measured/derived ERA properties of one reclamation scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct EraProfile {
    /// Scheme name.
    pub scheme: String,
    /// Easy integration per Definition 5.3.
    pub easy_integration: bool,
    /// Robustness class per Definitions 5.1/5.2.
    pub robustness: RobustnessVerdict,
    /// Applicability class per Definitions 5.5/5.6.
    pub applicability: ApplicabilityClass,
    /// Free-form notes (e.g. which property was sacrificed and where it
    /// shows: "stalled thread ⇒ unbounded retire lists").
    pub notes: String,
}

impl EraProfile {
    /// Creates a profile.
    pub fn new(
        scheme: impl Into<String>,
        easy_integration: bool,
        robustness: RobustnessVerdict,
        applicability: ApplicabilityClass,
        notes: impl Into<String>,
    ) -> Self {
        EraProfile {
            scheme: scheme.into(),
            easy_integration,
            robustness,
            applicability,
            notes: notes.into(),
        }
    }

    /// How many of the three ERA properties the profile claims, counting
    /// weak robustness as robustness (the theorem's stronger form).
    pub fn property_count(&self) -> usize {
        usize::from(self.easy_integration)
            + usize::from(self.robustness.is_weakly_robust())
            + usize::from(self.applicability.is_wide())
    }

    /// Whether this profile contradicts Theorem 6.1.
    pub fn contradicts_theorem(&self) -> bool {
        self.easy_integration && self.robustness.is_weakly_robust() && self.applicability.is_wide()
    }
}

/// A claimed contradiction of Theorem 6.1.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoremViolation {
    /// The offending profile.
    pub profile: EraProfile,
}

impl fmt::Display for TheoremViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile '{}' claims all three ERA properties ({} + easy integration + {}), \
             contradicting Theorem 6.1 — the measurement pipeline is wrong",
            self.profile.scheme, self.profile.robustness, self.profile.applicability
        )
    }
}

impl std::error::Error for TheoremViolation {}

/// The §6 trade-off matrix: one row per scheme.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EraMatrix {
    rows: Vec<EraProfile>,
}

impl EraMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a row.
    pub fn push(&mut self, profile: EraProfile) {
        self.rows.push(profile);
    }

    /// The rows.
    pub fn rows(&self) -> &[EraProfile] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Asserts Theorem 6.1 over all rows: no scheme may claim even weak
    /// robustness together with easy integration and wide applicability.
    ///
    /// # Errors
    ///
    /// Returns the first contradicting profile. A contradiction does not
    /// falsify the theorem — it means a verdict upstream (usually an
    /// optimistic robustness or applicability measurement) is wrong.
    pub fn check_theorem(&self) -> Result<(), TheoremViolation> {
        for row in &self.rows {
            if row.contradicts_theorem() {
                return Err(TheoremViolation {
                    profile: row.clone(),
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<EraProfile> for EraMatrix {
    fn from_iter<I: IntoIterator<Item = EraProfile>>(iter: I) -> Self {
        EraMatrix {
            rows: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for EraMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:<8} {:<15} {:<22} notes",
            "scheme", "easy", "robustness", "applicability"
        )?;
        writeln!(f, "{}", "-".repeat(88))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:<8} {:<15} {:<22} {}",
                r.scheme,
                if r.easy_integration { "yes" } else { "no" },
                r.robustness.to_string(),
                r.applicability.to_string(),
                r.notes
            )?;
        }
        Ok(())
    }
}

/// The paper's reference matrix (§6): the classification the paper
/// itself gives to the surveyed schemes, used by tests and as the
/// expected shape for the measured matrix.
pub fn reference_matrix() -> EraMatrix {
    [
        EraProfile::new(
            "EBR",
            true,
            RobustnessVerdict::NotRobust,
            ApplicabilityClass::Strong,
            "stalled thread blocks the epoch: unbounded retire lists",
        ),
        EraProfile::new(
            "HP",
            true,
            RobustnessVerdict::Robust,
            ApplicabilityClass::Limited,
            "cannot traverse marked chains (Harris's list)",
        ),
        EraProfile::new(
            "HE",
            true,
            RobustnessVerdict::Robust,
            ApplicabilityClass::Limited,
            "era protection fails on Harris's list (App. E)",
        ),
        EraProfile::new(
            "IBR",
            true,
            RobustnessVerdict::WeaklyRobust,
            ApplicabilityClass::Limited,
            "retired bounded linearly by live nodes × reserved epochs",
        ),
        EraProfile::new(
            "NBR",
            false,
            RobustnessVerdict::Robust,
            ApplicabilityClass::Wide,
            "needs read/write phase division + neutralization restarts",
        ),
        EraProfile::new(
            "VBR",
            false,
            RobustnessVerdict::Robust,
            ApplicabilityClass::Wide,
            "needs checkpoints/roll-backs; constant retire bound",
        ),
        EraProfile::new(
            "Leak",
            true,
            RobustnessVerdict::NotRobust,
            ApplicabilityClass::Strong,
            "baseline: never reclaims",
        ),
    ]
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matrix_respects_theorem() {
        let m = reference_matrix();
        assert!(m.check_theorem().is_ok());
        assert!(!m.is_empty());
        assert_eq!(m.len(), 7);
    }

    #[test]
    fn every_reference_row_claims_at_most_two() {
        for row in reference_matrix().rows() {
            assert!(
                row.property_count() <= 2,
                "{} claims {} properties",
                row.scheme,
                row.property_count()
            );
        }
    }

    #[test]
    fn contradiction_detected() {
        let mut m = reference_matrix();
        m.push(EraProfile::new(
            "Unicorn",
            true,
            RobustnessVerdict::Robust,
            ApplicabilityClass::Wide,
            "impossible",
        ));
        let err = m.check_theorem().unwrap_err();
        assert_eq!(err.profile.scheme, "Unicorn");
        assert!(err.to_string().contains("Theorem 6.1"));
    }

    #[test]
    fn weak_robustness_counts_for_the_strong_form() {
        // The theorem's stronger statement: even weak robustness is
        // incompatible with E + A.
        let p = EraProfile::new(
            "X",
            true,
            RobustnessVerdict::WeaklyRobust,
            ApplicabilityClass::Wide,
            "",
        );
        assert!(p.contradicts_theorem());
    }

    #[test]
    fn inconclusive_robustness_never_contradicts() {
        let p = EraProfile::new(
            "Y",
            true,
            RobustnessVerdict::Inconclusive,
            ApplicabilityClass::Strong,
            "",
        );
        assert!(!p.contradicts_theorem());
        assert_eq!(p.property_count(), 2);
    }

    #[test]
    fn display_renders_table() {
        let m = reference_matrix();
        let s = m.to_string();
        assert!(s.contains("scheme"));
        assert!(s.contains("EBR"));
        assert!(s.contains("strongly applicable"));
    }

    #[test]
    fn from_iterator_and_push() {
        let mut m: EraMatrix = std::iter::empty().collect();
        assert!(m.is_empty());
        m.push(EraProfile::new(
            "Z",
            false,
            RobustnessVerdict::Robust,
            ApplicabilityClass::Wide,
            "",
        ));
        assert_eq!(m.rows().len(), 1);
    }
}
