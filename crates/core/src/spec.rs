//! Sequential specifications (§3).
//!
//! An object is associated with a *sequential specification*: a
//! prefix-closed set of sequential histories. We represent a
//! specification operationally, as a deterministic-or-branching state
//! machine: [`SequentialSpec::outcomes`] enumerates the legal
//! `(return value, next state)` pairs of an operation in a state. A
//! sequential history belongs to the specification iff it can be
//! replayed through `outcomes` from [`SequentialSpec::initial`].

use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt::Debug;
use std::hash::Hash;

use crate::history::{Op, Ret};

/// An operational sequential specification.
///
/// Implementations enumerate every legal outcome of applying `op` in
/// `state`; an empty vector means the operation is illegal for the
/// object (e.g. `push` on a set).
pub trait SequentialSpec {
    /// Abstract state of the object.
    type State: Clone + Eq + Hash + Debug;

    /// The state of a freshly initialized object (§3: data structures
    /// are initialized and represent empty sets).
    fn initial(&self) -> Self::State;

    /// All legal `(return, next state)` outcomes of `op` in `state`.
    fn outcomes(&self, state: &Self::State, op: &Op) -> Vec<(Ret, Self::State)>;

    /// Whether applying `op` in `state` may return `ret`; if so, the
    /// successor state.
    fn step(&self, state: &Self::State, op: &Op, ret: &Ret) -> Option<Self::State> {
        self.outcomes(state, op)
            .into_iter()
            .find(|(r, _)| r == ret)
            .map(|(_, s)| s)
    }
}

/// The set data type of §3: integer keys, `insert`/`delete`/`contains`.
///
/// * `insert(key)` inserts and returns `true` iff `key` was absent.
/// * `delete(key)` removes and returns `true` iff `key` was present.
/// * `contains(key)` returns whether `key` is present.
///
/// # Example
///
/// ```
/// use era_core::spec::{SequentialSpec, SetSpec};
/// use era_core::history::{Op, Ret};
///
/// let spec = SetSpec;
/// let s0 = spec.initial();
/// let s1 = spec.step(&s0, &Op::Insert(7), &Ret::Bool(true)).expect("legal");
/// assert!(spec.step(&s1, &Op::Insert(7), &Ret::Bool(true)).is_none()); // duplicate
/// assert!(spec.step(&s1, &Op::Contains(7), &Ret::Bool(true)).is_some());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetSpec;

impl SequentialSpec for SetSpec {
    type State = BTreeSet<i64>;

    fn initial(&self) -> Self::State {
        BTreeSet::new()
    }

    fn outcomes(&self, state: &Self::State, op: &Op) -> Vec<(Ret, Self::State)> {
        match *op {
            Op::Insert(k) => {
                if state.contains(&k) {
                    vec![(Ret::Bool(false), state.clone())]
                } else {
                    let mut s = state.clone();
                    s.insert(k);
                    vec![(Ret::Bool(true), s)]
                }
            }
            Op::Delete(k) => {
                if state.contains(&k) {
                    let mut s = state.clone();
                    s.remove(&k);
                    vec![(Ret::Bool(true), s)]
                } else {
                    vec![(Ret::Bool(false), state.clone())]
                }
            }
            Op::Contains(k) => vec![(Ret::Bool(state.contains(&k)), state.clone())],
            _ => Vec::new(),
        }
    }
}

/// A LIFO stack of integers: `push`/`pop` (pop of an empty stack returns
/// `Ret::Val(None)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackSpec;

impl SequentialSpec for StackSpec {
    type State = Vec<i64>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn outcomes(&self, state: &Self::State, op: &Op) -> Vec<(Ret, Self::State)> {
        match *op {
            Op::Push(v) => {
                let mut s = state.clone();
                s.push(v);
                vec![(Ret::Unit, s)]
            }
            Op::Pop => match state.last() {
                Some(&v) => {
                    let mut s = state.clone();
                    s.pop();
                    vec![(Ret::Val(Some(v)), s)]
                }
                None => vec![(Ret::Val(None), state.clone())],
            },
            _ => Vec::new(),
        }
    }
}

/// A FIFO queue of integers: `enqueue`/`dequeue` (dequeue of an empty
/// queue returns `Ret::Val(None)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueSpec;

impl SequentialSpec for QueueSpec {
    type State = VecDeque<i64>;

    fn initial(&self) -> Self::State {
        VecDeque::new()
    }

    fn outcomes(&self, state: &Self::State, op: &Op) -> Vec<(Ret, Self::State)> {
        match *op {
            Op::Enqueue(v) => {
                let mut s = state.clone();
                s.push_back(v);
                vec![(Ret::Unit, s)]
            }
            Op::Dequeue => match state.front() {
                Some(&v) => {
                    let mut s = state.clone();
                    s.pop_front();
                    vec![(Ret::Val(Some(v)), s)]
                }
                None => vec![(Ret::Val(None), state.clone())],
            },
            _ => Vec::new(),
        }
    }
}

/// An atomic integer register with `read`/`write`/`cas` — memory words
/// treated as objects, as required by Condition 3 of Definition 5.3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegisterSpec {
    /// Initial register value.
    pub initial_value: i64,
}

impl SequentialSpec for RegisterSpec {
    type State = i64;

    fn initial(&self) -> Self::State {
        self.initial_value
    }

    fn outcomes(&self, state: &Self::State, op: &Op) -> Vec<(Ret, Self::State)> {
        match *op {
            Op::Read => vec![(Ret::Val(Some(*state)), *state)],
            Op::Write(v) => vec![(Ret::Unit, v)],
            Op::Cas(expected, new) => {
                if *state == expected {
                    vec![(Ret::Bool(true), new)]
                } else {
                    vec![(Ret::Bool(false), *state)]
                }
            }
            _ => Vec::new(),
        }
    }
}

/// A permissive specification for the reclamation scheme's own API
/// object (§5.2): `beginOp`/`endOp`/`retire`/`alloc`/`protect` are
/// always legal and return `Unit` (`alloc` may return any value, modelled
/// as `Unit` here since the model does not track which address is
/// handed out).
///
/// Using a trivial spec is deliberate: the paper's correctness condition
/// (Def. 5.4) constrains the *data-structure* object's linearizability;
/// the scheme's API object merely has to be well-formed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmrApiSpec;

impl SequentialSpec for SmrApiSpec {
    type State = ();

    fn initial(&self) -> Self::State {}

    fn outcomes(&self, _state: &Self::State, op: &Op) -> Vec<(Ret, Self::State)> {
        if op.is_smr_op() {
            vec![(Ret::Unit, ())]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_spec_semantics() {
        let spec = SetSpec;
        let s0 = spec.initial();
        let s1 = spec.step(&s0, &Op::Insert(1), &Ret::Bool(true)).unwrap();
        assert!(spec.step(&s0, &Op::Insert(1), &Ret::Bool(false)).is_none());
        let s2 = spec.step(&s1, &Op::Insert(1), &Ret::Bool(false)).unwrap();
        assert_eq!(s1, s2);
        let s3 = spec.step(&s2, &Op::Delete(1), &Ret::Bool(true)).unwrap();
        assert!(s3.is_empty());
        assert!(spec.step(&s3, &Op::Delete(1), &Ret::Bool(true)).is_none());
        assert!(spec
            .step(&s3, &Op::Contains(1), &Ret::Bool(false))
            .is_some());
        // Illegal op for the type
        assert!(spec.outcomes(&s3, &Op::Push(1)).is_empty());
    }

    #[test]
    fn stack_spec_semantics() {
        let spec = StackSpec;
        let s = spec.initial();
        let s = spec.step(&s, &Op::Push(1), &Ret::Unit).unwrap();
        let s = spec.step(&s, &Op::Push(2), &Ret::Unit).unwrap();
        let s = spec.step(&s, &Op::Pop, &Ret::Val(Some(2))).unwrap();
        assert!(spec.step(&s, &Op::Pop, &Ret::Val(Some(2))).is_none());
        let s = spec.step(&s, &Op::Pop, &Ret::Val(Some(1))).unwrap();
        let s = spec.step(&s, &Op::Pop, &Ret::Val(None)).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn queue_spec_semantics() {
        let spec = QueueSpec;
        let s = spec.initial();
        let s = spec.step(&s, &Op::Enqueue(1), &Ret::Unit).unwrap();
        let s = spec.step(&s, &Op::Enqueue(2), &Ret::Unit).unwrap();
        let s = spec.step(&s, &Op::Dequeue, &Ret::Val(Some(1))).unwrap();
        let s = spec.step(&s, &Op::Dequeue, &Ret::Val(Some(2))).unwrap();
        let _ = spec.step(&s, &Op::Dequeue, &Ret::Val(None)).unwrap();
    }

    #[test]
    fn register_spec_semantics() {
        let spec = RegisterSpec { initial_value: 5 };
        let s = spec.initial();
        assert_eq!(s, 5);
        let s = spec.step(&s, &Op::Read, &Ret::Val(Some(5))).unwrap();
        let s = spec.step(&s, &Op::Cas(5, 9), &Ret::Bool(true)).unwrap();
        assert_eq!(s, 9);
        let s = spec.step(&s, &Op::Cas(5, 1), &Ret::Bool(false)).unwrap();
        assert_eq!(s, 9);
        let s = spec.step(&s, &Op::Write(0), &Ret::Unit).unwrap();
        assert_eq!(s, 0);
    }

    #[test]
    fn smr_api_spec_accepts_only_smr_ops() {
        let spec = SmrApiSpec;
        assert_eq!(spec.outcomes(&(), &Op::BeginOp).len(), 1);
        assert_eq!(spec.outcomes(&(), &Op::Retire(3)).len(), 1);
        assert!(spec.outcomes(&(), &Op::Insert(1)).is_empty());
    }

    #[test]
    fn outcomes_are_pure() {
        let spec = SetSpec;
        let s0 = spec.initial();
        let _ = spec.outcomes(&s0, &Op::Insert(1));
        assert!(s0.is_empty(), "outcomes must not mutate the input state");
    }
}
