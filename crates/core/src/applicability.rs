//! Applicability (§5.3, Definitions 5.4–5.6) and access-aware
//! implementations (Appendix C).
//!
//! A reclamation scheme is **applicable** to a plain implementation when
//! the integrated implementation (1) is memory-safe per Definition 4.2,
//! (2) remains linearizable, and (3) preserves the plain
//! implementation's progress guarantee. It is **strongly applicable**
//! when applicable to *every* plain implementation (EBR, Appendix A) and
//! **widely applicable** when applicable to every *access-aware*
//! implementation — the class of Singh et al. [39]: implementations
//! divisible into alternating read-only and write phases obeying the
//! permitted-pointer discipline formalized in Appendix C and implemented
//! here by [`AccessAwareChecker`].

use std::collections::HashMap;
use std::fmt;

use crate::ids::ThreadId;
use crate::validity::VarId;

/// Progress guarantees, ordered weakest-to-strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProgressGuarantee {
    /// Some thread may block all others (locking).
    Blocking,
    /// A thread running alone makes progress.
    ObstructionFree,
    /// Some effective pending operation always completes (minimal
    /// progress for every history, maximal for some — §3).
    LockFree,
    /// Every effective pending operation completes.
    WaitFree,
}

impl fmt::Display for ProgressGuarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProgressGuarantee::Blocking => "blocking",
            ProgressGuarantee::ObstructionFree => "obstruction-free",
            ProgressGuarantee::LockFree => "lock-free",
            ProgressGuarantee::WaitFree => "wait-free",
        };
        f.write_str(s)
    }
}

/// Definition 5.4 evidence for one (scheme, plain implementation) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplicabilityVerdict {
    /// Condition 1: the scheme is an SMR w.r.t. the implementation.
    pub memory_safe: bool,
    /// Condition 2: the integrated implementation is linearizable.
    pub linearizable: bool,
    /// Condition 3: the plain implementation's progress guarantee is
    /// preserved.
    pub progress_preserved: bool,
}

impl ApplicabilityVerdict {
    /// Whether all three conditions hold.
    pub fn is_applicable(self) -> bool {
        self.memory_safe && self.linearizable && self.progress_preserved
    }

    /// The fully-applicable verdict.
    pub fn applicable() -> Self {
        ApplicabilityVerdict {
            memory_safe: true,
            linearizable: true,
            progress_preserved: true,
        }
    }
}

impl fmt::Display for ApplicabilityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_applicable() {
            write!(f, "applicable")
        } else {
            write!(
                f,
                "not applicable (safety={}, linearizability={}, progress={})",
                self.memory_safe, self.linearizable, self.progress_preserved
            )
        }
    }
}

/// How broadly a scheme applies (Definitions 5.5/5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplicabilityClass {
    /// Applicable to every plain implementation (EBR only, App. A).
    Strong,
    /// Applicable to all access-aware implementations — in particular
    /// to Harris's linked list, the §6 litmus test.
    Wide,
    /// Fails on some access-aware implementation (HP/HE/IBR fail on
    /// Harris's list, App. E).
    Limited,
}

impl ApplicabilityClass {
    /// Whether this class satisfies Definition 5.6.
    pub fn is_wide(self) -> bool {
        matches!(self, ApplicabilityClass::Strong | ApplicabilityClass::Wide)
    }
}

impl fmt::Display for ApplicabilityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ApplicabilityClass::Strong => "strongly applicable",
            ApplicabilityClass::Wide => "widely applicable",
            ApplicabilityClass::Limited => "limited applicability",
        };
        f.write_str(s)
    }
}

/// Phase kinds of the Appendix C discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Read-only phase: shared nodes may be read only through pointers
    /// obtained during the current phase.
    ReadOnly,
    /// Write phase: shared accesses only through pointers obtained in
    /// the *preceding* read-only phase (or still-local allocations).
    Write,
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseKind::ReadOnly => write!(f, "read-only"),
            PhaseKind::Write => write!(f, "write"),
        }
    }
}

/// An event in the access-aware discipline stream (per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseEvent {
    /// The thread enters a new phase.
    PhaseStart(PhaseKind),
    /// `var` received a fresh allocation (still local to the thread).
    LocalAlloc {
        /// Destination variable.
        var: VarId,
    },
    /// The node referenced by `var` became shared; allocation-based
    /// permission expires.
    Shared {
        /// Variable referencing the now-shared node.
        var: VarId,
    },
    /// `var` was assigned from a global variable (a data-structure
    /// entry point).
    ReadGlobalInto {
        /// Destination variable.
        var: VarId,
    },
    /// `dst` was read from a pointer field of the node referenced by
    /// `src` (a shared-memory read that dereferences `src`).
    DerefReadInto {
        /// Dereferenced pointer.
        src: VarId,
        /// Destination variable.
        dst: VarId,
    },
    /// Local pointer assignment `dst := src` (no shared-memory access;
    /// `dst` inherits `src`'s permission).
    LocalCopy {
        /// Source variable.
        src: VarId,
        /// Destination variable.
        dst: VarId,
    },
    /// A shared-memory write dereferencing `via`.
    SharedWrite {
        /// Dereferenced pointer.
        via: VarId,
    },
}

/// A violation of the Appendix C conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseViolation {
    /// Shared write outside a write phase (condition 3).
    WriteInReadOnlyPhase {
        /// Thread at fault.
        thread: ThreadId,
    },
    /// Dereferenced a pointer that is not permitted in the current
    /// phase (conditions 1–3).
    UnpermittedDeref {
        /// Thread at fault.
        thread: ThreadId,
        /// The pointer.
        var: VarId,
    },
    /// Two consecutive phases of the same kind (the division must
    /// alternate).
    NonAlternatingPhases {
        /// Thread at fault.
        thread: ThreadId,
    },
    /// A shared access before any phase was started.
    AccessOutsidePhases {
        /// Thread at fault.
        thread: ThreadId,
    },
}

impl fmt::Display for PhaseViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseViolation::WriteInReadOnlyPhase { thread } => {
                write!(f, "{thread}: shared write during a read-only phase")
            }
            PhaseViolation::UnpermittedDeref { thread, var } => {
                write!(f, "{thread}: dereference of unpermitted pointer {var}")
            }
            PhaseViolation::NonAlternatingPhases { thread } => {
                write!(f, "{thread}: consecutive phases of the same kind")
            }
            PhaseViolation::AccessOutsidePhases { thread } => {
                write!(f, "{thread}: shared access before any phase started")
            }
        }
    }
}

/// How a pointer variable acquired its current value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Acquisition {
    /// Obtained during phase number `n` (global read or deref chain).
    InPhase(u64),
    /// A fresh allocation, node still local.
    LocalAlloc,
}

#[derive(Debug, Default)]
struct ThreadPhaseState {
    /// Phase counter; 0 = no phase yet.
    phase: u64,
    kind: Option<PhaseKind>,
    acquired: HashMap<VarId, Acquisition>,
}

/// Checks the Appendix C access-aware discipline over a stream of
/// per-thread [`PhaseEvent`]s.
///
/// A plain implementation is *access-aware* when it admits a phase
/// division under which no execution produces a violation. The
/// simulator's Harris-list interpreter emits the phase division of
/// Appendix D; running it through this checker reproduces the paper's
/// claim that Harris's list is access-aware.
///
/// # Example
///
/// ```
/// use era_core::applicability::{AccessAwareChecker, PhaseEvent, PhaseKind};
/// use era_core::ids::ThreadId;
/// use era_core::validity::VarId;
///
/// let mut chk = AccessAwareChecker::new();
/// let t = ThreadId(0);
/// let (pred, curr) = (VarId(0), VarId(1));
/// chk.record(t, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
/// chk.record(t, PhaseEvent::ReadGlobalInto { var: pred });      // pred = head
/// chk.record(t, PhaseEvent::DerefReadInto { src: pred, dst: curr }); // curr = pred.next
/// chk.record(t, PhaseEvent::PhaseStart(PhaseKind::Write));
/// chk.record(t, PhaseEvent::SharedWrite { via: pred });          // CAS(pred.next, …)
/// assert!(chk.violations().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct AccessAwareChecker {
    threads: HashMap<ThreadId, ThreadPhaseState>,
    violations: Vec<PhaseViolation>,
}

impl AccessAwareChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `var` may be dereferenced by `state` in its current phase.
    fn permitted(state: &ThreadPhaseState, var: VarId) -> bool {
        match (state.kind, state.acquired.get(&var)) {
            (_, Some(Acquisition::LocalAlloc)) => true,
            (Some(PhaseKind::ReadOnly), Some(Acquisition::InPhase(p))) => *p == state.phase,
            (Some(PhaseKind::Write), Some(Acquisition::InPhase(p))) => {
                // Obtained during the preceding read-only phase.
                *p + 1 == state.phase
            }
            _ => false,
        }
    }

    /// Records one event for `thread`.
    pub fn record(&mut self, thread: ThreadId, event: PhaseEvent) {
        let state = self.threads.entry(thread).or_default();
        match event {
            PhaseEvent::PhaseStart(kind) => {
                if state.kind == Some(kind) {
                    self.violations
                        .push(PhaseViolation::NonAlternatingPhases { thread });
                }
                state.phase += 1;
                state.kind = Some(kind);
            }
            PhaseEvent::LocalAlloc { var } => {
                state.acquired.insert(var, Acquisition::LocalAlloc);
            }
            PhaseEvent::Shared { var } => {
                // The allocation-based permission expires; treat as
                // acquired in the current phase (the thread obviously
                // still holds a fresh pointer to it).
                if state.acquired.get(&var) == Some(&Acquisition::LocalAlloc) {
                    state
                        .acquired
                        .insert(var, Acquisition::InPhase(state.phase));
                }
            }
            PhaseEvent::ReadGlobalInto { var } => {
                if state.kind.is_none() {
                    self.violations
                        .push(PhaseViolation::AccessOutsidePhases { thread });
                    return;
                }
                state
                    .acquired
                    .insert(var, Acquisition::InPhase(state.phase));
            }
            PhaseEvent::DerefReadInto { src, dst } => {
                if state.kind.is_none() {
                    self.violations
                        .push(PhaseViolation::AccessOutsidePhases { thread });
                    return;
                }
                if !Self::permitted(state, src) {
                    self.violations
                        .push(PhaseViolation::UnpermittedDeref { thread, var: src });
                }
                // In a read-only phase the result is permitted for the
                // current phase; in a write phase the result is obtained
                // *during* the write phase and therefore not
                // dereferenceable until a later acquisition.
                match state.kind {
                    Some(PhaseKind::ReadOnly) => {
                        state
                            .acquired
                            .insert(dst, Acquisition::InPhase(state.phase));
                    }
                    Some(PhaseKind::Write) => {
                        // Mark as acquired in the *write* phase: never
                        // permitted for deref (neither now nor after the
                        // next read-only phase begins).
                        state
                            .acquired
                            .insert(dst, Acquisition::InPhase(state.phase));
                    }
                    None => {}
                }
            }
            PhaseEvent::LocalCopy { src, dst } => {
                let acq = state.acquired.get(&src).copied();
                match acq {
                    Some(a) => {
                        state.acquired.insert(dst, a);
                    }
                    None => {
                        state.acquired.remove(&dst);
                    }
                }
            }
            PhaseEvent::SharedWrite { via } => {
                match state.kind {
                    None => {
                        self.violations
                            .push(PhaseViolation::AccessOutsidePhases { thread });
                        return;
                    }
                    Some(PhaseKind::ReadOnly) => {
                        self.violations
                            .push(PhaseViolation::WriteInReadOnlyPhase { thread });
                        return;
                    }
                    Some(PhaseKind::Write) => {}
                }
                if !Self::permitted(state, via) {
                    self.violations
                        .push(PhaseViolation::UnpermittedDeref { thread, var: via });
                }
            }
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[PhaseViolation] {
        &self.violations
    }

    /// Whether the execution respected the discipline.
    pub fn is_access_aware(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ThreadId = ThreadId(0);
    const P: VarId = VarId(0);
    const Q: VarId = VarId(1);
    const R: VarId = VarId(2);

    #[test]
    fn harris_search_shape_is_clean() {
        // read-only: traverse from head; write: unlink + return window.
        let mut c = AccessAwareChecker::new();
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::ReadGlobalInto { var: P });
        c.record(T, PhaseEvent::DerefReadInto { src: P, dst: Q });
        c.record(T, PhaseEvent::DerefReadInto { src: Q, dst: R });
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::Write));
        c.record(T, PhaseEvent::SharedWrite { via: P });
        c.record(T, PhaseEvent::SharedWrite { via: Q });
        assert!(c.is_access_aware());
    }

    #[test]
    fn write_in_read_only_phase_flagged() {
        let mut c = AccessAwareChecker::new();
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::ReadGlobalInto { var: P });
        c.record(T, PhaseEvent::SharedWrite { via: P });
        assert_eq!(
            c.violations(),
            &[PhaseViolation::WriteInReadOnlyPhase { thread: T }]
        );
    }

    #[test]
    fn stale_pointer_from_older_phase_flagged() {
        let mut c = AccessAwareChecker::new();
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::ReadGlobalInto { var: P });
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::Write));
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        // P was acquired two phases ago: not permitted in this phase.
        c.record(T, PhaseEvent::DerefReadInto { src: P, dst: Q });
        assert_eq!(
            c.violations(),
            &[PhaseViolation::UnpermittedDeref { thread: T, var: P }]
        );
    }

    #[test]
    fn pointer_read_during_write_phase_not_dereferenceable() {
        let mut c = AccessAwareChecker::new();
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::ReadGlobalInto { var: P });
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::Write));
        c.record(T, PhaseEvent::DerefReadInto { src: P, dst: Q }); // ok: reads P
        c.record(T, PhaseEvent::DerefReadInto { src: Q, dst: R }); // Q obtained in write phase
        assert_eq!(
            c.violations(),
            &[PhaseViolation::UnpermittedDeref { thread: T, var: Q }]
        );
    }

    #[test]
    fn local_allocation_always_permitted_until_shared() {
        let mut c = AccessAwareChecker::new();
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::LocalAlloc { var: P });
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::Write));
        c.record(T, PhaseEvent::SharedWrite { via: P }); // linking the new node
        c.record(T, PhaseEvent::Shared { var: P });
        assert!(c.is_access_aware());
        // After sharing + a new phase, the old pointer is stale.
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::Write));
        c.record(T, PhaseEvent::SharedWrite { via: P });
        assert!(!c.is_access_aware());
    }

    #[test]
    fn non_alternating_phases_flagged() {
        let mut c = AccessAwareChecker::new();
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        assert_eq!(
            c.violations(),
            &[PhaseViolation::NonAlternatingPhases { thread: T }]
        );
    }

    #[test]
    fn access_outside_phases_flagged() {
        let mut c = AccessAwareChecker::new();
        c.record(T, PhaseEvent::ReadGlobalInto { var: P });
        assert_eq!(
            c.violations(),
            &[PhaseViolation::AccessOutsidePhases { thread: T }]
        );
    }

    #[test]
    fn threads_tracked_independently() {
        let t1 = ThreadId(1);
        let mut c = AccessAwareChecker::new();
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::ReadGlobalInto { var: P });
        c.record(t1, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        // t1 never acquired P.
        c.record(t1, PhaseEvent::DerefReadInto { src: P, dst: Q });
        assert_eq!(
            c.violations(),
            &[PhaseViolation::UnpermittedDeref { thread: t1, var: P }]
        );
    }

    #[test]
    fn local_copy_inherits_permission() {
        let mut c = AccessAwareChecker::new();
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::ReadGlobalInto { var: P });
        c.record(T, PhaseEvent::LocalCopy { src: P, dst: Q });
        c.record(T, PhaseEvent::DerefReadInto { src: Q, dst: R });
        assert!(c.is_access_aware());
        // Copying from an unpermitted var removes permission.
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::Write));
        c.record(T, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
        c.record(T, PhaseEvent::LocalCopy { src: Q, dst: R }); // Q is stale now
        c.record(T, PhaseEvent::DerefReadInto { src: R, dst: P });
        assert!(!c.is_access_aware());
    }

    #[test]
    fn verdict_helpers() {
        let ok = ApplicabilityVerdict::applicable();
        assert!(ok.is_applicable());
        assert_eq!(ok.to_string(), "applicable");
        let bad = ApplicabilityVerdict {
            memory_safe: false,
            ..ok
        };
        assert!(!bad.is_applicable());
        assert!(bad.to_string().contains("safety=false"));
        assert!(ApplicabilityClass::Strong.is_wide());
        assert!(ApplicabilityClass::Wide.is_wide());
        assert!(!ApplicabilityClass::Limited.is_wide());
    }

    #[test]
    fn progress_ordering() {
        assert!(ProgressGuarantee::WaitFree > ProgressGuarantee::LockFree);
        assert!(ProgressGuarantee::LockFree > ProgressGuarantee::ObstructionFree);
        assert!(ProgressGuarantee::ObstructionFree > ProgressGuarantee::Blocking);
        assert_eq!(ProgressGuarantee::LockFree.to_string(), "lock-free");
    }
}
