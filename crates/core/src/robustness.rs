//! Robustness — the memory-footprint property (§5.1, Definitions 5.1/5.2).
//!
//! A reclamation scheme is **robust** when, for every integrated
//! execution `E`, there is a function `f_E = o(max_active_E)` bounding
//! the number of retired nodes in every configuration by `f_E(i) · N`.
//! It is **weakly robust** when `f_E` may be polynomial in
//! `max_active_E`. EBR is neither: one stalled thread makes the retired
//! population grow without bound while the data structure stays tiny
//! (the engine of the Theorem 6.1 construction).
//!
//! Asymptotic statements cannot be decided from one finite run, so this
//! module classifies from a *family* of runs at increasing scales: each
//! [`RobustnessObservation`] records the peak retired population and the
//! peak data-structure size for one run. The classifier estimates
//! log–log growth rates of the retired footprint against the run scale
//! and against `max_active`, and maps them onto the definitions:
//!
//! * retired/N stays bounded as scale grows → **Robust** (the strongest
//!   bound, VBR-style constant `f_E`);
//! * retired/N grows strictly slower than `max_active` → **Robust**
//!   (`f_E = o(max_active)`);
//! * retired/N grows polynomially in `max_active` → **WeaklyRobust**
//!   (IBR-style, linear in the live size);
//! * retired/N grows although `max_active` does not (or grows
//!   super-polynomially) → **NotRobust** (EBR with a stalled thread).
//!
//! The verdict is an *empirical* classification with explicit witnesses,
//! suitable for the experiments in `era-bench`; it is not a proof.

use std::fmt;

/// Footprint counters of one configuration (`C_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FootprintSample {
    /// `active_E(i)` — allocated, not yet retired nodes.
    pub active: usize,
    /// `max_active_E(i)` — running maximum of `active`.
    pub max_active: usize,
    /// Retired, not yet reclaimed nodes.
    pub retired: usize,
}

/// Footprint summary of one run at a given scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessObservation {
    /// The run's scale parameter (e.g. number of operations executed).
    pub scale: u64,
    /// Number of threads `N`.
    pub threads: usize,
    /// Peak retired population over the run.
    pub peak_retired: usize,
    /// Peak `max_active` over the run.
    pub peak_max_active: usize,
}

impl RobustnessObservation {
    /// Builds an observation by scanning a sample series.
    pub fn from_samples(scale: u64, threads: usize, samples: &[FootprintSample]) -> Self {
        RobustnessObservation {
            scale,
            threads,
            peak_retired: samples.iter().map(|s| s.retired).max().unwrap_or(0),
            peak_max_active: samples.iter().map(|s| s.max_active).max().unwrap_or(0),
        }
    }
}

/// Robustness classification per Definitions 5.1/5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustnessVerdict {
    /// Definition 5.1 — retired footprint is `o(max_active) · N`.
    Robust,
    /// Definition 5.2 but not 5.1 — polynomial in `max_active`, times `N`.
    WeaklyRobust,
    /// Not even weakly robust — the retired footprint is unbounded in
    /// terms of the data-structure size.
    NotRobust,
    /// Not enough or not well-spread observations to decide.
    Inconclusive,
}

impl RobustnessVerdict {
    /// Whether the verdict satisfies Definition 5.1.
    pub fn is_robust(self) -> bool {
        self == RobustnessVerdict::Robust
    }

    /// Whether the verdict satisfies Definition 5.2 (robust schemes are
    /// weakly robust too).
    pub fn is_weakly_robust(self) -> bool {
        matches!(
            self,
            RobustnessVerdict::Robust | RobustnessVerdict::WeaklyRobust
        )
    }
}

impl fmt::Display for RobustnessVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RobustnessVerdict::Robust => write!(f, "robust"),
            RobustnessVerdict::WeaklyRobust => write!(f, "weakly robust"),
            RobustnessVerdict::NotRobust => write!(f, "not robust"),
            RobustnessVerdict::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// Classification with the measured growth exponents as witnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessReport {
    /// The verdict.
    pub verdict: RobustnessVerdict,
    /// Estimated log–log slope of `peak_retired / N` against `scale`.
    pub retired_growth: f64,
    /// Estimated log–log slope of `peak_max_active` against `scale`.
    pub active_growth: f64,
    /// Largest observed `peak_retired / N` (the concrete bound when the
    /// verdict is `Robust` with constant `f_E`).
    pub max_retired_per_thread: f64,
}

impl fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (retired growth {:.2}, active growth {:.2}, peak retired/thread {:.1})",
            self.verdict, self.retired_growth, self.active_growth, self.max_retired_per_thread
        )
    }
}

/// Threshold below which a log–log slope counts as "no growth".
const EPS: f64 = 0.15;
/// Polynomial-degree cap for weak robustness in the classifier.
///
/// Definition 5.2 allows any polynomial; empirically we accept degree up
/// to this bound (larger estimated degrees on finite data almost always
/// indicate super-polynomial/unbounded behaviour).
const MAX_POLY_DEGREE: f64 = 4.0;

/// Least-squares slope of `ln(ys)` against `ln(xs)`.
///
/// Points with zero coordinates are shifted by +1 so empty footprints do
/// not produce `-inf`.
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let lx: Vec<f64> = points.iter().map(|&(x, _)| (x + 1.0).ln()).collect();
    let ly: Vec<f64> = points.iter().map(|&(_, y)| (y + 1.0).ln()).collect();
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..points.len() {
        num += (lx[i] - mx) * (ly[i] - my);
        den += (lx[i] - mx) * (lx[i] - mx);
    }
    if den.abs() < 1e-12 {
        0.0
    } else {
        num / den
    }
}

/// Classifies a family of observations at increasing scales.
///
/// Requirements: at least 3 observations and at least a 4× spread
/// between the smallest and largest scale; otherwise the verdict is
/// [`RobustnessVerdict::Inconclusive`].
///
/// # Example
///
/// ```
/// use era_core::robustness::{classify, RobustnessObservation, RobustnessVerdict};
///
/// // EBR with a stalled thread: retired grows with scale, structure tiny.
/// let obs: Vec<_> = [1_000u64, 4_000, 16_000, 64_000]
///     .iter()
///     .map(|&s| RobustnessObservation {
///         scale: s,
///         threads: 2,
///         peak_retired: s as usize, // everything piles up
///         peak_max_active: 4,
///     })
///     .collect();
/// assert_eq!(classify(&obs).verdict, RobustnessVerdict::NotRobust);
/// ```
pub fn classify(observations: &[RobustnessObservation]) -> RobustnessReport {
    let max_rpt = observations
        .iter()
        .map(|o| o.peak_retired as f64 / o.threads.max(1) as f64)
        .fold(0.0f64, f64::max);
    let inconclusive = RobustnessReport {
        verdict: RobustnessVerdict::Inconclusive,
        retired_growth: f64::NAN,
        active_growth: f64::NAN,
        max_retired_per_thread: max_rpt,
    };
    if observations.len() < 3 {
        return inconclusive;
    }
    let min_scale = observations.iter().map(|o| o.scale).min().unwrap_or(0);
    let max_scale = observations.iter().map(|o| o.scale).max().unwrap_or(0);
    if min_scale == 0 || max_scale < 4 * min_scale {
        return inconclusive;
    }

    let retired_pts: Vec<(f64, f64)> = observations
        .iter()
        .map(|o| {
            (
                o.scale as f64,
                o.peak_retired as f64 / o.threads.max(1) as f64,
            )
        })
        .collect();
    let active_pts: Vec<(f64, f64)> = observations
        .iter()
        .map(|o| (o.scale as f64, o.peak_max_active as f64))
        .collect();
    let retired_growth = loglog_slope(&retired_pts);
    let active_growth = loglog_slope(&active_pts);

    let verdict = if retired_growth < EPS {
        // Bounded retired footprint per thread: constant f_E.
        RobustnessVerdict::Robust
    } else if active_growth < EPS {
        // Retired grows although the data structure does not.
        RobustnessVerdict::NotRobust
    } else if retired_growth < active_growth - EPS {
        // Sub-linear in max_active: f_E = o(max_active).
        RobustnessVerdict::Robust
    } else if retired_growth <= MAX_POLY_DEGREE * active_growth + EPS {
        RobustnessVerdict::WeaklyRobust
    } else {
        RobustnessVerdict::NotRobust
    };

    RobustnessReport {
        verdict,
        retired_growth,
        active_growth,
        max_retired_per_thread: max_rpt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(scale: u64, threads: usize, retired: usize, active: usize) -> RobustnessObservation {
        RobustnessObservation {
            scale,
            threads,
            peak_retired: retired,
            peak_max_active: active,
        }
    }

    #[test]
    fn constant_footprint_is_robust() {
        // VBR/HP-like: retired bounded by a per-thread constant.
        let o: Vec<_> = [1_000u64, 4_000, 16_000, 64_000]
            .iter()
            .map(|&s| obs(s, 4, 64 * 4, (s / 10) as usize))
            .collect();
        let r = classify(&o);
        assert_eq!(r.verdict, RobustnessVerdict::Robust);
        assert!(r.verdict.is_weakly_robust());
    }

    #[test]
    fn sublinear_in_active_is_robust() {
        // retired ~ sqrt(max_active), structure grows with scale.
        let o: Vec<_> = [1_000u64, 4_000, 16_000, 64_000, 256_000]
            .iter()
            .map(|&s| {
                let active = s as usize;
                obs(s, 4, (active as f64).sqrt() as usize * 4, active)
            })
            .collect();
        assert_eq!(classify(&o).verdict, RobustnessVerdict::Robust);
    }

    #[test]
    fn linear_in_active_is_weakly_robust() {
        // IBR-like: retired ~ max_active · N.
        let o: Vec<_> = [1_000u64, 4_000, 16_000, 64_000]
            .iter()
            .map(|&s| {
                let active = (s / 2) as usize;
                obs(s, 4, active * 4, active)
            })
            .collect();
        let r = classify(&o);
        assert_eq!(r.verdict, RobustnessVerdict::WeaklyRobust);
        assert!(!r.verdict.is_robust());
        assert!(r.verdict.is_weakly_robust());
    }

    #[test]
    fn unbounded_with_tiny_structure_is_not_robust() {
        // EBR with a stalled thread (the Figure 1 engine): max_active=4.
        let o: Vec<_> = [1_000u64, 4_000, 16_000, 64_000]
            .iter()
            .map(|&s| obs(s, 2, s as usize, 4))
            .collect();
        let r = classify(&o);
        assert_eq!(r.verdict, RobustnessVerdict::NotRobust);
        assert!(!r.verdict.is_weakly_robust());
    }

    #[test]
    fn too_few_observations_is_inconclusive() {
        let o = vec![obs(1_000, 2, 10, 10), obs(2_000, 2, 10, 10)];
        assert_eq!(classify(&o).verdict, RobustnessVerdict::Inconclusive);
    }

    #[test]
    fn narrow_scale_spread_is_inconclusive() {
        let o = vec![
            obs(1_000, 2, 10, 10),
            obs(1_100, 2, 10, 10),
            obs(1_200, 2, 10, 10),
        ];
        assert_eq!(classify(&o).verdict, RobustnessVerdict::Inconclusive);
    }

    #[test]
    fn from_samples_takes_peaks() {
        let samples = [
            FootprintSample {
                active: 1,
                max_active: 1,
                retired: 0,
            },
            FootprintSample {
                active: 5,
                max_active: 5,
                retired: 9,
            },
            FootprintSample {
                active: 2,
                max_active: 5,
                retired: 3,
            },
        ];
        let o = RobustnessObservation::from_samples(100, 2, &samples);
        assert_eq!(o.peak_retired, 9);
        assert_eq!(o.peak_max_active, 5);
    }

    #[test]
    fn loglog_slope_sanity() {
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| (i as f64 * 100.0, (i as f64 * 100.0).powi(2)))
            .collect();
        let s = loglog_slope(&pts);
        assert!((s - 2.0).abs() < 0.05, "slope={s}");
        let flat: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64 * 100.0, 42.0)).collect();
        assert!(loglog_slope(&flat).abs() < 0.01);
    }

    #[test]
    fn report_display() {
        let o: Vec<_> = [1_000u64, 4_000, 16_000, 64_000]
            .iter()
            .map(|&s| obs(s, 2, s as usize, 4))
            .collect();
        let r = classify(&o);
        let s = r.to_string();
        assert!(s.contains("not robust"), "{s}");
    }

    #[test]
    fn verdict_display_all_variants() {
        assert_eq!(RobustnessVerdict::Robust.to_string(), "robust");
        assert_eq!(RobustnessVerdict::WeaklyRobust.to_string(), "weakly robust");
        assert_eq!(RobustnessVerdict::NotRobust.to_string(), "not robust");
        assert_eq!(RobustnessVerdict::Inconclusive.to_string(), "inconclusive");
    }
}
