//! Pointer validity (§4.2, Definition 4.1).
//!
//! A pointer variable `p` is *valid* in a configuration `C_m` when,
//! tracing back to its last update `s_i`:
//!
//! * `s_i` allocated a new node into `p`, and that node has not been in
//!   the `unallocated` state in any configuration since; or
//! * `s_i` assigned another pointer `q` into `p`, `q` was valid at
//!   `C_i`, and the referenced node has not been `unallocated` since.
//!
//! Otherwise `p` is *invalid*. Dereferencing an invalid pointer is an
//! **unsafe memory access** (Definition 4.1).
//!
//! Pointer variables here cover both thread-local variables and node
//! pointer *fields* — a field is just a pointer variable living inside a
//! node, which is how the simulator models `next` pointers. Marked
//! pointers (Harris-style) carry their mark elsewhere; validity only
//! concerns the referenced logical node.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ids::NodeId;

/// Identity of a pointer variable (thread-local or node field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u64);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Validity status of a pointer variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validity {
    /// References a node that has remained allocated since the pointer
    /// was (transitively) derived from its allocation.
    Valid,
    /// References memory whose node has been unallocated since the
    /// pointer was last updated (or was derived from an invalid source).
    Invalid,
    /// Holds no reference.
    Null,
}

#[derive(Debug, Clone, Copy)]
struct PtrState {
    target: Option<NodeId>,
    valid: bool,
}

/// Tracks validity of every pointer variable in an execution.
///
/// # Example
///
/// ```
/// use era_core::ids::NodeId;
/// use era_core::validity::{Validity, ValidityTracker, VarId};
///
/// let mut v = ValidityTracker::new();
/// let (p, q) = (VarId(0), VarId(1));
/// let n = NodeId::first(3);
/// v.on_alloc(p, n);
/// v.on_copy(q, p);
/// assert_eq!(v.validity(q), Validity::Valid);
/// v.on_unallocate(n); // the node is reclaimed
/// assert_eq!(v.validity(p), Validity::Invalid);
/// assert_eq!(v.validity(q), Validity::Invalid);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ValidityTracker {
    ptrs: HashMap<VarId, PtrState>,
    /// Valid pointers per live node, for O(refs) invalidation.
    refs: HashMap<NodeId, HashSet<VarId>>,
}

impl ValidityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn unlink(&mut self, var: VarId) {
        if let Some(PtrState {
            target: Some(node),
            valid: true,
        }) = self.ptrs.get(&var).copied()
        {
            if let Some(set) = self.refs.get_mut(&node) {
                set.remove(&var);
                if set.is_empty() {
                    self.refs.remove(&node);
                }
            }
        }
    }

    /// `var` was last updated by an allocation of `node` (allocations
    /// always produce valid pointers — "by definition, p is always valid
    /// in `C_i`").
    pub fn on_alloc(&mut self, var: VarId, node: NodeId) {
        self.unlink(var);
        self.ptrs.insert(
            var,
            PtrState {
                target: Some(node),
                valid: true,
            },
        );
        self.refs.entry(node).or_default().insert(var);
    }

    /// `dst` was last updated by assigning pointer `src` into it.
    ///
    /// `dst` inherits `src`'s target and validity *at this instant*; a
    /// later unallocation of the target invalidates both.
    pub fn on_copy(&mut self, dst: VarId, src: VarId) {
        let state = self.ptrs.get(&src).copied().unwrap_or(PtrState {
            target: None,
            valid: false,
        });
        self.unlink(dst);
        self.ptrs.insert(dst, state);
        if let PtrState {
            target: Some(node),
            valid: true,
        } = state
        {
            self.refs.entry(node).or_default().insert(dst);
        }
    }

    /// `var` was set to null.
    pub fn on_null(&mut self, var: VarId) {
        self.unlink(var);
        self.ptrs.insert(
            var,
            PtrState {
                target: None,
                valid: false,
            },
        );
    }

    /// `var` holds a reference obtained out-of-band (e.g. read from a
    /// field of a *reclaimed* node): it targets `node` but is invalid
    /// from birth.
    pub fn on_invalid_ref(&mut self, var: VarId, node: Option<NodeId>) {
        self.unlink(var);
        self.ptrs.insert(
            var,
            PtrState {
                target: node,
                valid: false,
            },
        );
    }

    /// `node` transitioned to `unallocated` (reclaimed): every pointer
    /// currently referencing it becomes — and stays — invalid.
    pub fn on_unallocate(&mut self, node: NodeId) {
        if let Some(vars) = self.refs.remove(&node) {
            for var in vars {
                if let Some(p) = self.ptrs.get_mut(&var) {
                    p.valid = false;
                }
            }
        }
    }

    /// Forgets a variable entirely (e.g. the fields of a node whose
    /// memory was handed back to the system).
    pub fn drop_var(&mut self, var: VarId) {
        self.unlink(var);
        self.ptrs.remove(&var);
    }

    /// The node `var` currently references, if any (even when invalid —
    /// an invalid pointer still "names" the memory formerly occupied by
    /// the node, per §6's proof).
    pub fn target(&self, var: VarId) -> Option<NodeId> {
        self.ptrs.get(&var).and_then(|p| p.target)
    }

    /// Validity of `var` per Definition 4.1.
    ///
    /// Unknown variables are `Null` (never updated).
    pub fn validity(&self, var: VarId) -> Validity {
        match self.ptrs.get(&var) {
            None | Some(PtrState { target: None, .. }) => Validity::Null,
            Some(PtrState {
                target: Some(_),
                valid: true,
            }) => Validity::Valid,
            Some(PtrState {
                target: Some(_),
                valid: false,
            }) => Validity::Invalid,
        }
    }

    /// Number of tracked variables (diagnostics).
    pub fn len(&self) -> usize {
        self.ptrs.len()
    }

    /// Whether no variable is tracked.
    pub fn is_empty(&self) -> bool {
        self.ptrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: VarId = VarId(0);
    const Q: VarId = VarId(1);
    const R: VarId = VarId(2);

    #[test]
    fn alloc_produces_valid_pointer() {
        let mut v = ValidityTracker::new();
        v.on_alloc(P, NodeId::first(1));
        assert_eq!(v.validity(P), Validity::Valid);
        assert_eq!(v.target(P), Some(NodeId::first(1)));
    }

    #[test]
    fn unallocation_invalidates_all_references() {
        let mut v = ValidityTracker::new();
        let n = NodeId::first(1);
        v.on_alloc(P, n);
        v.on_copy(Q, P);
        v.on_copy(R, Q);
        v.on_unallocate(n);
        for var in [P, Q, R] {
            assert_eq!(v.validity(var), Validity::Invalid, "{var}");
            assert_eq!(v.target(var), Some(n), "{var} still names the node");
        }
    }

    #[test]
    fn copy_from_invalid_is_invalid() {
        let mut v = ValidityTracker::new();
        let n = NodeId::first(1);
        v.on_alloc(P, n);
        v.on_unallocate(n);
        v.on_copy(Q, P);
        assert_eq!(v.validity(Q), Validity::Invalid);
    }

    #[test]
    fn copy_taken_before_unallocation_still_invalidated() {
        // q := p; reclaim(n); q must be invalid even though the copy
        // happened while p was valid.
        let mut v = ValidityTracker::new();
        let n = NodeId::first(1);
        v.on_alloc(P, n);
        v.on_copy(Q, P);
        v.on_unallocate(n);
        assert_eq!(v.validity(Q), Validity::Invalid);
    }

    #[test]
    fn overwrite_restores_validity() {
        let mut v = ValidityTracker::new();
        let n1 = NodeId::first(1);
        v.on_alloc(P, n1);
        v.on_unallocate(n1);
        assert_eq!(v.validity(P), Validity::Invalid);
        let n2 = NodeId::first(2);
        v.on_alloc(Q, n2);
        v.on_copy(P, Q);
        assert_eq!(v.validity(P), Validity::Valid);
    }

    #[test]
    fn new_incarnation_does_not_revive_old_pointers() {
        let mut v = ValidityTracker::new();
        let n1 = NodeId::first(1);
        v.on_alloc(P, n1);
        v.on_unallocate(n1);
        // Same address is reallocated: a *different* logical node.
        let n2 = n1.next_incarnation();
        v.on_alloc(Q, n2);
        assert_eq!(v.validity(P), Validity::Invalid);
        assert_eq!(v.validity(Q), Validity::Valid);
        // Unallocating the new incarnation must not touch P's record.
        v.on_unallocate(n2);
        assert_eq!(v.validity(P), Validity::Invalid);
        assert_eq!(v.validity(Q), Validity::Invalid);
    }

    #[test]
    fn null_and_unknown_vars() {
        let mut v = ValidityTracker::new();
        assert_eq!(v.validity(P), Validity::Null);
        v.on_alloc(P, NodeId::first(1));
        v.on_null(P);
        assert_eq!(v.validity(P), Validity::Null);
        assert_eq!(v.target(P), None);
    }

    #[test]
    fn invalid_ref_constructor() {
        let mut v = ValidityTracker::new();
        let n = NodeId::first(9);
        v.on_invalid_ref(P, Some(n));
        assert_eq!(v.validity(P), Validity::Invalid);
        assert_eq!(v.target(P), Some(n));
    }

    #[test]
    fn drop_var_forgets() {
        let mut v = ValidityTracker::new();
        v.on_alloc(P, NodeId::first(1));
        assert_eq!(v.len(), 1);
        v.drop_var(P);
        assert!(v.is_empty());
        assert_eq!(v.validity(P), Validity::Null);
    }

    #[test]
    fn overwriting_unlinks_old_target() {
        let mut v = ValidityTracker::new();
        let n1 = NodeId::first(1);
        let n2 = NodeId::first(2);
        v.on_alloc(P, n1);
        v.on_alloc(P, n2); // overwrite
        v.on_unallocate(n1); // must not invalidate P (it points at n2 now)
        assert_eq!(v.validity(P), Validity::Valid);
        assert_eq!(v.target(P), Some(n2));
    }
}
