//! The no-reclamation baseline.
//!
//! `Leak` never frees retired nodes during the execution (they are all
//! released when the scheme itself is dropped, so tests do not leak
//! process memory). It is the paper's implicit baseline: trivially easy
//! to integrate and strongly applicable — every access is safe because
//! nothing is ever reclaimed — but with an unbounded retired footprint,
//! the extreme of non-robustness.

// ERA-CLASS: Leak non-robust — nothing is ever reclaimed, so trapped
// memory grows without bound by construction; the baseline the ERA
// matrix measures every real scheme against.

use std::sync::{Arc, Mutex};

use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};

use crate::common::{
    lock_unpoisoned, DropFn, RegisterError, Retired, SlotRegistry, Smr, SmrHeader, SmrStats,
    StatCells, SupportsUnlinkedTraversal,
};

#[derive(Debug)]
struct LeakInner {
    registry: SlotRegistry,
    stats: StatCells,
    orphans: Mutex<Vec<Retired>>,
}

impl Drop for LeakInner {
    fn drop(&mut self) {
        // No thread contexts remain (they hold an Arc): safe to free.
        let orphans = std::mem::take(&mut *lock_unpoisoned(&self.orphans));
        let n = orphans.len();
        for g in orphans {
            // SAFETY: called from Drop with exclusive access — the run is over
            // and no thread can reach the leaked garbage.
            unsafe { self.stats.reclaim_node(g) };
        }
        self.stats.on_reclaim(n);
    }
}

/// The leaking baseline scheme.
///
/// # Example
///
/// ```
/// use era_smr::{leak::Leak, Smr};
///
/// let smr = Leak::new(4);
/// let mut ctx = smr.register().unwrap();
/// let p = Box::into_raw(Box::new(7i64)) as *mut u8;
/// unsafe fn free_i64(p: *mut u8) {
///     unsafe { drop(Box::from_raw(p as *mut i64)) }
/// }
/// unsafe { smr.retire(&mut ctx, p, std::ptr::null(), free_i64) };
/// assert_eq!(smr.stats().retired_now, 1);
/// drop(ctx);
/// drop(smr); // everything is released here
/// ```
#[derive(Debug, Clone)]
pub struct Leak {
    inner: Arc<LeakInner>,
}

/// Per-thread context for [`Leak`].
#[derive(Debug)]
#[must_use = "dropping a context releases its slot (leaked garbage stays leaked)"]
pub struct LeakCtx {
    inner: Arc<LeakInner>,
    idx: usize,
    tracer: ThreadTracer,
    garbage: Vec<Retired>,
}

impl Drop for LeakCtx {
    fn drop(&mut self) {
        // Runs during unwinding too: poison-tolerant handoff, then an
        // unconditional slot release. A dead Leak context's garbage is
        // adopted into the shared pool (custody, not reclamation — the
        // baseline still never frees mid-run).
        lock_unpoisoned(&self.inner.orphans).append(&mut self.garbage);
        self.inner.registry.release(self.idx);
    }
}

impl Leak {
    /// Creates a leaking scheme for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Leak {
            inner: Arc::new(LeakInner {
                registry: SlotRegistry::new(max_threads),
                stats: StatCells::default(),
                orphans: Mutex::new(Vec::new()),
            }),
        }
    }
}

impl Smr for Leak {
    type ThreadCtx = LeakCtx;

    fn register(&self) -> Result<LeakCtx, RegisterError> {
        let idx = self.inner.registry.acquire()?;
        Ok(LeakCtx {
            inner: Arc::clone(&self.inner),
            idx,
            tracer: self.inner.stats.tracer(idx),
            garbage: Vec::new(),
        })
    }

    fn name(&self) -> &'static str {
        "Leak"
    }

    fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.stats.attach(recorder, SchemeId::LEAK);
    }

    fn begin_op(&self, ctx: &mut LeakCtx) {
        ctx.tracer.emit(Hook::BeginOp, 0, 0);
    }

    fn end_op(&self, ctx: &mut LeakCtx) {
        ctx.tracer.emit(Hook::EndOp, 0, 0);
    }

    /// # Safety
    /// See [`Smr::retire`]: `ptr` must be unlinked, retired at most once,
    /// and `drop_fn` must be valid for it.
    unsafe fn retire(
        &self,
        ctx: &mut LeakCtx,
        ptr: *mut u8,
        _header: *const SmrHeader,
        drop_fn: DropFn,
    ) {
        ctx.garbage.push(Retired {
            ptr,
            birth_era: 0,
            retire_era: 0,
            drop_fn,
            retire_tick: self.inner.stats.stamp(),
        });
        let held = self.inner.stats.on_retire();
        ctx.tracer.emit(Hook::Retire, ptr as u64, held as u64);
    }

    fn stats(&self) -> SmrStats {
        self.inner.stats.snapshot(0)
    }
}

// SAFETY: trivially epoch-protected — nothing is ever reclaimed mid-run.
unsafe impl crate::common::EpochProtected for Leak {}

// SAFETY: nothing is ever reclaimed during the run, so traversing retired
// nodes is trivially safe.
unsafe impl SupportsUnlinkedTraversal for Leak {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static FREED: AtomicUsize = AtomicUsize::new(0);

    /// # Safety
    /// `p` must be a leaked `Box<u64>` that nothing else can reach.
    unsafe fn counting_free(p: *mut u8) {
        // SAFETY(ordering): SeqCst — test counter, strongest for clarity.
        FREED.fetch_add(1, Ordering::SeqCst);
        // SAFETY: contract above.
        unsafe { drop(Box::from_raw(p as *mut u64)) }
    }

    #[test]
    fn never_frees_during_run_frees_on_drop() {
        // SAFETY(ordering): SeqCst — test counter reset before use.
        FREED.store(0, Ordering::SeqCst);
        let smr = Leak::new(2);
        let mut ctx = smr.register().unwrap();
        for i in 0..10u64 {
            let p = Box::into_raw(Box::new(i)) as *mut u8;
            // SAFETY: p was just leaked, is unlinked and retired exactly once.
            unsafe { smr.retire(&mut ctx, p, std::ptr::null(), counting_free) };
        }
        assert_eq!(smr.stats().retired_now, 10);
        assert_eq!(FREED.load(Ordering::SeqCst), 0);
        smr.flush(&mut ctx);
        assert_eq!(FREED.load(Ordering::SeqCst), 0, "flush must not free");
        drop(ctx);
        drop(smr);
        assert_eq!(FREED.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn registration_capacity() {
        let smr = Leak::new(1);
        let c1 = smr.register().unwrap();
        assert!(smr.register().is_err());
        drop(c1);
        let _c2 = smr.register().unwrap();
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_retires_count() {
        let smr = Leak::new(8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let smr = &smr;
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for i in 0..100u64 {
                        let p = Box::into_raw(Box::new(i)) as *mut u8;
                        /// # Safety
                        /// `p` must be a leaked `Box<u64>` nothing else reaches.
                        unsafe fn free_u64(p: *mut u8) {
                            // SAFETY: contract above.
                            unsafe { drop(Box::from_raw(p as *mut u64)) }
                        }
                        // SAFETY: p was just leaked; retired exactly once.
                        unsafe { smr.retire(&mut ctx, p, std::ptr::null(), free_u64) };
                    }
                });
            }
        });
        let st = smr.stats();
        assert_eq!(st.retired_now, 400);
        assert_eq!(st.total_retired, 400);
        assert_eq!(st.total_reclaimed, 0);
    }
}
