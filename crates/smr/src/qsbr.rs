//! Quiescent-state-based reclamation (QSBR) — the RCU-style ancestor of
//! EBR (Fraser [16] credits it as the starting point).
//!
//! There are no per-operation brackets at all: each thread occasionally
//! announces a *quiescent state* — a moment at which it holds no
//! references into any shared structure — by calling [`Qsbr::quiescent`].
//! A node retired in grace period `g` is reclaimed once every registered
//! thread has announced a quiescent state in `g + 1` or later.
//!
//! QSBR is instructive for the ERA classification because it holds only
//! **one** of the three properties (the theorem bounds from above, not
//! below):
//!
//! * **not easily integrated** — `quiescent()` must be placed at
//!   application points where the thread provably holds no references,
//!   which is an *arbitrary code location* requiring understanding of
//!   the whole program (Definition 5.3, Condition 2 fails);
//! * **not robust** — a thread that stops announcing quiescence blocks
//!   all reclamation, like EBR's stalled announcement;
//! * **widely applicable** — like EBR, traversals through retired nodes
//!   are protected until the trailing grace period, so it composes with
//!   Harris-style structures.

// ERA-CLASS: QSBR non-robust — a thread that never reaches a quiescent
// point blocks every grace period; trapped memory is unbounded.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};

use crate::common::{
    lock_unpoisoned, CachePadded, DropFn, RegisterError, Retired, SlotRegistry, Smr, SmrHeader,
    SmrStats, StatCells, SupportsUnlinkedTraversal,
};

#[derive(Debug)]
struct QsbrInner {
    grace: CachePadded<AtomicU64>,
    /// Latest grace period each slot has announced quiescence in.
    /// Line-padded: written once per operation per thread.
    announced: Box<[CachePadded<AtomicU64>]>,
    registry: SlotRegistry,
    stats: StatCells,
    orphans: Mutex<Vec<Retired>>,
    retire_threshold: usize,
    /// Slot `i` had quiescence announced *on its behalf* by
    /// [`Smr::neutralize`] and must restart before trusting pointers.
    neutralized: Box<[CachePadded<AtomicBool>]>,
}

impl QsbrInner {
    /// Advances the grace period if every registered thread has
    /// announced the current one.
    fn try_advance(&self) -> u64 {
        // SAFETY(ordering) PAIRS(qsbr-grace-dekker): SeqCst fence pairs
        // with the fence in
        // `begin_op`'s slow path (Dekker): either this scan observes a
        // thread's fresh not-quiescent announcement, or that thread's
        // post-fence grace re-read observes any advance we publish.
        // The loads stay SeqCst (plain loads on TSO) so they sit in the
        // same total order as the announcement stores.
        fence(Ordering::SeqCst);
        let g = self.grace.load(Ordering::SeqCst);
        for i in 0..self.registry.capacity() {
            if self.registry.is_in_use(i) && self.announced[i].load(Ordering::SeqCst) < g {
                // Thread `i` has not announced quiescence this grace
                // period: it blocks everyone (QSBR is not robust).
                self.stats
                    .blocked(i, self.stats.retired_now.load(Ordering::Relaxed));
                return g;
            }
        }
        // SAFETY(ordering): SeqCst CAS keeps the advance in the total
        // order the announce fences reason about; advancing is amortized
        // off the per-operation path, so strength here is free.
        if self
            .grace
            .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.stats.event(Hook::Advance, g + 1, 0);
        }
        self.grace.load(Ordering::SeqCst)
    }
}

impl Drop for QsbrInner {
    fn drop(&mut self) {
        let orphans = std::mem::take(&mut *lock_unpoisoned(&self.orphans));
        let n = orphans.len();
        for g in orphans {
            // SAFETY: orphans already aged a full grace period after their
            // owner departed; no thread can still reach them.
            unsafe { self.stats.reclaim_node(g) };
        }
        self.stats.on_reclaim(n);
    }
}

/// Quiescent-state-based reclamation.
///
/// # Example
///
/// ```
/// use era_smr::{qsbr::Qsbr, Smr};
///
/// let smr = Qsbr::new(4);
/// let mut ctx = smr.register().unwrap();
/// /* …operations; no begin_op/end_op needed… */
/// smr.quiescent(&mut ctx); // "I hold no shared references right now"
/// ```
#[derive(Debug, Clone)]
pub struct Qsbr {
    inner: Arc<QsbrInner>,
}

/// Per-thread context for [`Qsbr`].
#[derive(Debug)]
#[must_use = "dropping a context releases its slot; a forgotten one never announces quiescence and stalls every grace period"]
pub struct QsbrCtx {
    inner: Arc<QsbrInner>,
    idx: usize,
    tracer: ThreadTracer,
    garbage: Vec<Retired>,
    retired_since_scan: usize,
}

impl Drop for QsbrCtx {
    fn drop(&mut self) {
        // Runs during unwinding too: poison-tolerant handoff, then an
        // unconditional slot release (see the EBR drop path).
        lock_unpoisoned(&self.inner.orphans).append(&mut self.garbage);
        // A departing thread counts as permanently quiescent.
        // SAFETY(ordering): Release orders the thread's last accesses
        // before its permanent-quiescence mark.
        self.inner.announced[self.idx].store(u64::MAX, Ordering::Release);
        self.inner.registry.release(self.idx);
    }
}

impl Qsbr {
    /// Default retired-list length that triggers a collection attempt.
    pub const DEFAULT_RETIRE_THRESHOLD: usize = 64;

    /// Creates a QSBR instance for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_threshold(max_threads, Self::DEFAULT_RETIRE_THRESHOLD)
    }

    /// Creates a QSBR instance with a custom retire threshold.
    pub fn with_threshold(max_threads: usize, retire_threshold: usize) -> Self {
        let announced: Vec<CachePadded<AtomicU64>> = (0..max_threads)
            .map(|_| CachePadded::new(AtomicU64::new(u64::MAX)))
            .collect();
        let neutralized: Vec<CachePadded<AtomicBool>> = (0..max_threads)
            .map(|_| CachePadded::new(AtomicBool::new(false)))
            .collect();
        Qsbr {
            inner: Arc::new(QsbrInner {
                grace: CachePadded::new(AtomicU64::new(2)),
                announced: announced.into_boxed_slice(),
                registry: SlotRegistry::new(max_threads),
                stats: StatCells::default(),
                orphans: Mutex::new(Vec::new()),
                retire_threshold: retire_threshold.max(1),
                neutralized: neutralized.into_boxed_slice(),
            }),
        }
    }

    /// The current grace period.
    pub fn grace_period(&self) -> u64 {
        self.inner.grace.load(Ordering::SeqCst)
    }

    /// Announces that the calling thread holds **no** references into
    /// any structure managed by this instance, and attempts collection.
    ///
    /// This is the integration burden: the *application* must find the
    /// points where this is true (Definition 5.3 calls such insertions
    /// arbitrary code locations — QSBR is not easily integrated).
    pub fn quiescent(&self, ctx: &mut QsbrCtx) {
        let g = self.inner.grace.load(Ordering::SeqCst);
        let slot = &self.inner.announced[ctx.idx];
        if slot.load(Ordering::SeqCst) != g {
            // SAFETY(ordering): Release suffices for a quiescence
            // announcement — it is a claim about the *past* ("every
            // access I made is before this store"), so it only needs to
            // order prior accesses, not gate future ones. A delayed
            // propagation merely delays reclamation, never unsafety.
            slot.store(g, Ordering::Release);
        }
        ctx.tracer.emit(Hook::Reserve, g, 0);
        // Amortization: with no local garbage there is nothing a grace
        // advance could free for us — skip the O(threads) scan entirely.
        // Read-dominated workloads hit this path almost every time,
        // making the quiescent point O(1). Threads with garbage still
        // scan (retire() additionally scans on its own threshold).
        if !ctx.garbage.is_empty() {
            let g = self.inner.try_advance();
            self.collect(ctx, g);
        }
    }

    fn collect(&self, ctx: &mut QsbrCtx, grace: u64) {
        if ctx.garbage.is_empty() {
            return;
        }
        let (free, keep): (Vec<_>, Vec<_>) = ctx
            .garbage
            .drain(..)
            .partition(|r| r.retire_era + 2 <= grace);
        let n = free.len();
        for g in free {
            // SAFETY: every registered thread passed a quiescent point after
            // these were retired — the QSBR grace-period guarantee.
            unsafe { self.inner.stats.reclaim_node(g) };
        }
        ctx.garbage = keep;
        self.inner.stats.on_reclaim(n);
    }
}

impl Smr for Qsbr {
    type ThreadCtx = QsbrCtx;

    fn register(&self) -> Result<QsbrCtx, RegisterError> {
        let idx = self.inner.registry.acquire()?;
        // A fresh thread is quiescent until it touches anything.
        // SAFETY(ordering): registration is cold; SeqCst keeps the slot
        // reset visible before any advance scan can consider this slot.
        self.inner.announced[idx].store(u64::MAX, Ordering::SeqCst);
        self.inner.neutralized[idx].store(false, Ordering::SeqCst);
        Ok(QsbrCtx {
            inner: Arc::clone(&self.inner),
            idx,
            tracer: self.inner.stats.tracer(idx),
            garbage: Vec::new(),
            retired_since_scan: 0,
        })
    }

    fn name(&self) -> &'static str {
        "QSBR"
    }

    fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.stats.attach(recorder, SchemeId::QSBR);
    }

    /// No per-operation work — but entering an operation ends the
    /// thread's standing quiescence (it is about to hold references).
    fn begin_op(&self, ctx: &mut QsbrCtx) {
        let g = self.inner.grace.load(Ordering::SeqCst);
        let target = g.saturating_sub(1); // quiescent up to the previous period, not the current
        let slot = &self.inner.announced[ctx.idx];
        // Fast path: our announcement already claims no quiescence in
        // the current period (a previous `begin_op` in the same grace
        // period published it, with a fence). Re-storing the same or a
        // lower value would change nothing a scanner can observe.
        // SAFETY(ordering): the standing value was fenced when first
        // published and only this thread (or `neutralize`, which writes
        // the *current* grace and therefore fails this check) writes the
        // slot — consecutive operations in one grace period form one
        // continuous not-quiescent region.
        if slot.load(Ordering::SeqCst) <= target {
            ctx.tracer.emit(Hook::BeginOp, g, 0);
            return;
        }
        // SAFETY(ordering) PAIRS(qsbr-grace-dekker): Relaxed store +
        // SeqCst fence (StoreLoad)
        // replaces the old SeqCst store: the not-quiescent announcement
        // must be visible before any of the operation's shared loads,
        // or an advancing thread could treat us as quiescent for two
        // consecutive periods and free nodes we are about to reach.
        slot.store(target, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        ctx.tracer.emit(Hook::BeginOp, g, 0);
    }

    fn end_op(&self, _ctx: &mut QsbrCtx) {
        // Deliberately empty: QSBR does not know when references die —
        // only the application's quiescent() calls say so.
    }

    /// # Safety
    /// See [`Smr::retire`]: `ptr` must be unlinked, retired at most once,
    /// and `drop_fn` must be valid for it.
    unsafe fn retire(
        &self,
        ctx: &mut QsbrCtx,
        ptr: *mut u8,
        _header: *const SmrHeader,
        drop_fn: DropFn,
    ) {
        // SAFETY(ordering): SeqCst stamp load (plain load on TSO) — it
        // anchors the reader-load ≺ unlink ≺ stamp-load chain in the
        // SeqCst total order, bounding the stamp at ≥ any concurrent
        // reader's announced period so `stamp + 2` is a safe horizon.
        let g = self.inner.grace.load(Ordering::SeqCst);
        ctx.garbage.push(Retired {
            ptr,
            birth_era: 0,
            retire_era: g,
            drop_fn,
            retire_tick: self.inner.stats.stamp(),
        });
        let held = self.inner.stats.on_retire();
        ctx.tracer.emit(Hook::Retire, ptr as u64, held as u64);
        ctx.retired_since_scan += 1;
        if ctx.retired_since_scan >= self.inner.retire_threshold {
            ctx.retired_since_scan = 0;
            let g = self.inner.try_advance();
            self.collect(ctx, g);
        }
    }

    /// Announces quiescence *on the victim's behalf*: its announced
    /// grace period jumps to the current one, so `try_advance` stops
    /// waiting on it. The victim learns about it on its next
    /// [`Smr::needs_restart`] poll.
    /// # Safety
    /// The caller (watchdog) must ensure the victim polls
    /// [`Smr::needs_restart`] before trusting pointers read in the
    /// current interval — forcing quiescence voids them.
    unsafe fn neutralize(&self, slot: usize) -> bool {
        if slot >= self.inner.registry.capacity() || !self.inner.registry.is_in_use(slot) {
            return false;
        }
        // SAFETY(ordering): watchdog path, cold by construction; SeqCst
        // keeps the flag/announcement pair totally ordered against the
        // victim's `needs_restart` RMW and any advance scan.
        self.inner.neutralized[slot].store(true, Ordering::SeqCst);
        let g = self.inner.grace.load(Ordering::SeqCst);
        self.inner.announced[slot].store(g, Ordering::SeqCst);
        self.inner.stats.event(Hook::Restart, slot as u64, 0);
        true
    }

    fn needs_restart(&self, ctx: &mut QsbrCtx) -> bool {
        // SAFETY(ordering): same shape as EBR — Relaxed fast path for
        // the common not-neutralized poll (no RMW per hop); a missed
        // flag only delays restart detection, it does not extend any
        // protection. The confirming swap stays SeqCst.
        if !self.inner.neutralized[ctx.idx].load(Ordering::Relaxed) {
            return false;
        }
        self.inner.neutralized[ctx.idx].swap(false, Ordering::SeqCst)
    }

    /// QSBR's whole integration contract *is* the quiescent point, so
    /// the generic hook maps straight onto [`Qsbr::quiescent`].
    fn quiescent_point(&self, ctx: &mut QsbrCtx) {
        self.quiescent(ctx);
    }

    fn stats(&self) -> SmrStats {
        self.inner
            .stats
            .snapshot(self.inner.grace.load(Ordering::SeqCst))
    }

    fn flush(&self, ctx: &mut QsbrCtx) {
        let g = self.inner.try_advance();
        self.collect(ctx, g);
        // Adopt orphaned garbage from departed threads.
        let eligible: Vec<Retired> = {
            let mut orphans = lock_unpoisoned(&self.inner.orphans);
            let (free, keep): (Vec<_>, Vec<_>) =
                orphans.drain(..).partition(|r| r.retire_era + 2 <= g);
            *orphans = keep;
            free
        };
        let n = eligible.len();
        for r in eligible {
            // SAFETY: same grace-period argument as try_reclaim — every thread
            // was quiescent since these retires.
            unsafe { self.inner.stats.reclaim_node(r) };
        }
        self.inner.stats.on_reclaim(n);
        self.inner.stats.adopted(n);
    }
}

// Safe under QSBR's contract: nothing retired after a thread's last
// quiescent announcement is reclaimed before its next one, so pointers
// SAFETY: reclamation only happens after every thread passes a quiescent
// point, so pointers held between quiescent points — including into
// retired chains — remain dereferenceable.
unsafe impl SupportsUnlinkedTraversal for Qsbr {}

#[cfg(test)]
mod tests {
    use super::*;

    /// # Safety
    /// `p` must be a leaked `Box<u64>` that nothing else can reach.
    unsafe fn free_u64(p: *mut u8) {
        // SAFETY: contract above.
        unsafe { drop(Box::from_raw(p as *mut u64)) }
    }

    fn retire_one(smr: &Qsbr, ctx: &mut QsbrCtx, v: u64) {
        let p = Box::into_raw(Box::new(v)) as *mut u8;
        // SAFETY: p was just leaked, is unlinked and retired exactly once.
        unsafe { smr.retire(ctx, p, std::ptr::null(), free_u64) };
    }

    #[test]
    fn reclaims_after_all_threads_quiesce() {
        let smr = Qsbr::with_threshold(2, 4);
        let mut a = smr.register().unwrap();
        let mut b = smr.register().unwrap();
        smr.begin_op(&mut a);
        smr.begin_op(&mut b);
        for i in 0..10 {
            retire_one(&smr, &mut a, i);
        }
        assert_eq!(smr.stats().retired_now, 10);
        for _ in 0..4 {
            smr.quiescent(&mut a);
            smr.quiescent(&mut b);
        }
        assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
    }

    #[test]
    fn non_quiescing_thread_blocks_everything() {
        // The not-robust witness.
        let smr = Qsbr::with_threshold(2, 1);
        let mut busy = smr.register().unwrap();
        let mut worker = smr.register().unwrap();
        smr.begin_op(&mut busy); // never announces quiescence again
        smr.begin_op(&mut worker);
        for i in 0..200 {
            retire_one(&smr, &mut worker, i);
            smr.quiescent(&mut worker);
        }
        assert_eq!(
            smr.stats().retired_now,
            200,
            "busy thread blocks reclamation"
        );
        // One quiescent announcement from the busy thread drains it.
        for _ in 0..4 {
            smr.quiescent(&mut busy);
            smr.quiescent(&mut worker);
        }
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn neutralize_announces_on_victims_behalf() {
        let smr = Qsbr::with_threshold(2, 1);
        let mut busy = smr.register().unwrap();
        let mut worker = smr.register().unwrap();
        smr.begin_op(&mut busy); // never announces quiescence again
        smr.begin_op(&mut worker);
        for i in 0..50 {
            retire_one(&smr, &mut worker, i);
            smr.quiescent(&mut worker);
        }
        assert_eq!(smr.stats().retired_now, 50, "busy thread blocks");

        // The watchdog path: a forced announcement per grace period
        // lets the backlog drain without the victim's cooperation.
        for _ in 0..4 {
            // SAFETY: the victim polls needs_restart below (neutralize contract).
            assert!(unsafe { smr.neutralize(0) });
            smr.quiescent(&mut worker);
        }
        assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
        assert!(smr.needs_restart(&mut busy));
        assert!(!smr.needs_restart(&mut busy), "restart reported once");
        // SAFETY: out-of-range neutralize must be a no-op returning false.
        assert!(!unsafe { smr.neutralize(7) }, "out-of-range slot");
    }

    #[test]
    fn quiescent_point_maps_to_quiescent() {
        let smr = Qsbr::with_threshold(1, 1);
        let mut ctx = smr.register().unwrap();
        smr.begin_op(&mut ctx);
        for i in 0..10 {
            retire_one(&smr, &mut ctx, i);
        }
        for _ in 0..4 {
            smr.quiescent_point(&mut ctx);
        }
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn departed_threads_do_not_block() {
        let smr = Qsbr::with_threshold(2, 1);
        let a = smr.register().unwrap();
        drop(a); // departing thread is permanently quiescent
        let mut worker = smr.register().unwrap();
        smr.begin_op(&mut worker);
        for i in 0..10 {
            retire_one(&smr, &mut worker, i);
        }
        for _ in 0..4 {
            smr.quiescent(&mut worker);
        }
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn fresh_threads_are_quiescent() {
        let smr = Qsbr::with_threshold(2, 1);
        let mut worker = smr.register().unwrap();
        let _idle = smr.register().unwrap(); // registered, never operates
        smr.begin_op(&mut worker);
        for i in 0..10 {
            retire_one(&smr, &mut worker, i);
        }
        for _ in 0..4 {
            smr.quiescent(&mut worker);
        }
        assert_eq!(smr.stats().retired_now, 0, "idle threads must not block");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn works_with_harris_style_usage() {
        // QSBR + a grace-period discipline around a raw shared cell.
        let smr = Qsbr::with_threshold(2, 2);
        let cell = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (smr, cell) = (&smr, &cell);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for i in 0..1_000u64 {
                        smr.begin_op(&mut ctx);
                        let newp = Box::into_raw(Box::new(i)) as usize;
                        // SAFETY(ordering): SeqCst swap = unlink point, making
                        // this thread old's unique retirer.
                        let old = cell.swap(newp, Ordering::SeqCst);
                        if old != 0 {
                            // SAFETY: old came out of the winning swap.
                            unsafe {
                                smr.retire(&mut ctx, old as *mut u8, std::ptr::null(), free_u64)
                            };
                        }
                        // Quiescent point: we hold no references now.
                        smr.quiescent(&mut ctx);
                    }
                });
            }
        });
        let last = cell.load(Ordering::SeqCst);
        // SAFETY: workers joined; last is exclusively ours.
        unsafe { drop(Box::from_raw(last as *mut u64)) };
        let mut ctx = smr.register().unwrap();
        for _ in 0..4 {
            smr.quiescent(&mut ctx);
            smr.flush(&mut ctx); // adopts departed threads' garbage
        }
        assert_eq!(smr.stats().retired_now, 0);
    }
}
