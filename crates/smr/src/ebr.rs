//! Epoch-based reclamation (EBR) — Fraser [16], Harris [19], Brown [8].
//!
//! The scheme the paper proves *strongly applicable* (Appendix A) and
//! uses as the canonical easily-integrated scheme (§5.2): the execution
//! is divided into epochs; threads announce the global epoch on
//! `begin_op` and a quiescent state on `end_op`; the epoch advances only
//! when every in-operation thread has announced the current epoch; a
//! node retired in epoch `e` is reclaimed once the global epoch reaches
//! `e + 2`, at which point no thread can still hold a reference.
//!
//! The price is robustness: a single stalled thread pins its announced
//! epoch forever, the epoch never advances, and every subsequently
//! retired node accumulates — the engine of the paper's Theorem 6.1
//! construction (Figure 1).
//!
//! # Hot-path engineering
//!
//! The announce path is amortized DEBRA-style (Brown [8]): `end_op`
//! leaves the announcement *standing* while it still matches the global
//! epoch, and `begin_op` takes a fence-free fast path when it finds its
//! own standing announcement current. This is sound because the
//! standing value was published with a `SeqCst` fence the last time the
//! slow path ran and nobody has overwritten it since — back-to-back
//! operations in the same epoch are indistinguishable from one long
//! protected region. The announcement is force-cleared every
//! [`Ebr::CLEAR_EVERY`] operations, on [`Smr::flush`], and on context
//! drop, which bounds how long an idle thread can pin the epoch at
//! `announced + 1`. Announcement slots are cache-line padded: they are
//! the most written shared words in the scheme.

// ERA-CLASS: EBR non-robust — one stalled reader pins its announced
// epoch forever and trapped memory grows without limit (Theorem 6.1).

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};

use crate::common::{
    lock_unpoisoned, CachePadded, DropFn, RegisterError, Retired, SlotRegistry, Smr, SmrHeader,
    SmrStats, StatCells, SupportsUnlinkedTraversal,
};

/// Announcement value meaning "not inside any operation".
const QUIESCENT: u64 = u64::MAX;

#[derive(Debug)]
struct EbrInner {
    epoch: CachePadded<AtomicU64>,
    /// Per-thread epoch announcements, each on its own cache line: the
    /// single most written-per-op shared word in the scheme, and the
    /// classic false-sharing victim when packed.
    announcements: Box<[CachePadded<AtomicU64>]>,
    registry: SlotRegistry,
    stats: StatCells,
    orphans: Mutex<Vec<Retired>>,
    retire_threshold: usize,
    /// Slot `i` was force-unpinned by [`Smr::neutralize`] and must
    /// restart its protected region before trusting any pointer.
    neutralized: Box<[CachePadded<AtomicBool>]>,
}

impl EbrInner {
    /// Advances the epoch if every registered, in-operation thread has
    /// announced the current value. Returns the (possibly new) epoch.
    fn try_advance(&self) -> u64 {
        // SAFETY(ordering) PAIRS(ebr-epoch-dekker): the SeqCst fence
        // pairs with the fence in
        // `begin_op`'s announce path (Dekker): either this scan sees a
        // concurrent announcement, or that thread's post-fence epoch
        // re-read sees our subsequent advance and re-announces. Loads
        // of epoch/announcements stay SeqCst (free on TSO: plain loads)
        // so they participate in the same single total order as the
        // announce/advance stores the argument is about.
        fence(Ordering::SeqCst);
        let e = self.epoch.load(Ordering::SeqCst);
        for i in 0..self.registry.capacity() {
            if !self.registry.is_in_use(i) {
                continue;
            }
            let a = self.announcements[i].load(Ordering::SeqCst);
            if a != QUIESCENT && a != e {
                // Someone lags: cannot advance. Blame them — this is
                // exactly EBR's non-robustness (a stalled announcement
                // blocks every other thread's reclamation).
                self.stats
                    .blocked(i, self.stats.retired_now.load(Ordering::Relaxed));
                return e;
            }
        }
        // CAS failure means someone else advanced; either way progress.
        // SAFETY(ordering): SeqCst on the epoch bump keeps the advance
        // in the total order the announce-path fences reason about; the
        // advance is amortized (once per threshold batch), so strength
        // here costs nothing on the per-op path.
        if self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.stats.event(Hook::Advance, e + 1, 0);
        }
        self.epoch.load(Ordering::SeqCst)
    }
}

impl Drop for EbrInner {
    fn drop(&mut self) {
        let orphans = std::mem::take(&mut *lock_unpoisoned(&self.orphans));
        let n = orphans.len();
        for g in orphans {
            // SAFETY: adopted orphans already aged the full two-epoch grace
            // period; no live announcement can cover them.
            unsafe { self.stats.reclaim_node(g) };
        }
        self.stats.on_reclaim(n);
    }
}

/// Epoch-based reclamation.
///
/// # Example
///
/// ```
/// use era_smr::{ebr::Ebr, Smr};
///
/// let smr = Ebr::new(4);
/// let mut ctx = smr.register().unwrap();
/// smr.begin_op(&mut ctx);
/// /* …data-structure operation… */
/// smr.end_op(&mut ctx);
/// assert_eq!(smr.name(), "EBR");
/// ```
#[derive(Debug, Clone)]
pub struct Ebr {
    inner: Arc<EbrInner>,
}

/// Per-thread context for [`Ebr`]: the slot index and the three
/// epoch-tagged local retire lists of Appendix A.
#[derive(Debug)]
#[must_use = "dropping a context releases its slot and orphans its unflushed garbage"]
pub struct EbrCtx {
    inner: Arc<EbrInner>,
    idx: usize,
    tracer: ThreadTracer,
    lists: [Vec<Retired>; 3],
    list_epochs: [u64; 3],
    retired_since_scan: usize,
    /// Inside a `begin_op`/`end_op` window right now. Guards the
    /// announcement self-clear in [`Smr::flush`].
    active: bool,
    /// Operations since the standing announcement was last cleared.
    ops_since_clear: u32,
}

impl EbrCtx {
    /// Frees every local list whose epoch is ≤ `epoch - 2`.
    fn collect(&mut self, epoch: u64) {
        for i in 0..3 {
            if !self.lists[i].is_empty() && self.list_epochs[i] + 2 <= epoch {
                let n = self.lists[i].len();
                for g in self.lists[i].drain(..) {
                    // SAFETY: the epoch advanced two steps past this bucket —
                    // every reader that could see g has since announced a newer
                    // epoch or gone quiescent.
                    unsafe { self.inner.stats.reclaim_node(g) };
                }
                self.inner.stats.on_reclaim(n);
            }
        }
    }
}

impl Drop for EbrCtx {
    fn drop(&mut self) {
        // This may run during unwinding (the owning thread panicked
        // mid-operation), so the orphan handoff must be panic-free:
        // `lock_unpoisoned` tolerates a poisoned queue and the slot is
        // released unconditionally afterwards — a context death leaks
        // neither its garbage nor its registry slot.
        {
            let mut orphans = lock_unpoisoned(&self.inner.orphans);
            for list in &mut self.lists {
                orphans.append(list);
            }
        }
        // SAFETY(ordering): Release orders every access this thread made
        // under its announcement before the quiescent mark becomes
        // visible to an advancing scanner (which reads post-fence).
        self.inner.announcements[self.idx].store(QUIESCENT, Ordering::Release);
        self.inner.registry.release(self.idx);
    }
}

impl Ebr {
    /// Default local-retire-list length that triggers a reclamation
    /// attempt.
    pub const DEFAULT_RETIRE_THRESHOLD: usize = 64;

    /// A standing announcement is force-cleared every this many
    /// operations, bounding how long an idle thread's stale (but
    /// epoch-current at the time) announcement can pin advancement.
    pub const CLEAR_EVERY: u32 = 64;

    /// Creates an EBR instance for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_threshold(max_threads, Self::DEFAULT_RETIRE_THRESHOLD)
    }

    /// Creates an EBR instance with a custom retire threshold.
    pub fn with_threshold(max_threads: usize, retire_threshold: usize) -> Self {
        let announcements: Vec<CachePadded<AtomicU64>> = (0..max_threads)
            .map(|_| CachePadded::new(AtomicU64::new(QUIESCENT)))
            .collect();
        let neutralized: Vec<CachePadded<AtomicBool>> = (0..max_threads)
            .map(|_| CachePadded::new(AtomicBool::new(false)))
            .collect();
        Ebr {
            inner: Arc::new(EbrInner {
                epoch: CachePadded::new(AtomicU64::new(2)), // start >1 so `e-2` never underflows
                announcements: announcements.into_boxed_slice(),
                registry: SlotRegistry::new(max_threads),
                stats: StatCells::default(),
                orphans: Mutex::new(Vec::new()),
                retire_threshold: retire_threshold.max(1),
                neutralized: neutralized.into_boxed_slice(),
            }),
        }
    }

    /// The current global epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }
}

impl Smr for Ebr {
    type ThreadCtx = EbrCtx;

    fn register(&self) -> Result<EbrCtx, RegisterError> {
        let idx = self.inner.registry.acquire()?;
        // SAFETY(ordering): registration is cold; SeqCst keeps the slot
        // reset visible before any advance scan can consider this slot.
        self.inner.announcements[idx].store(QUIESCENT, Ordering::SeqCst);
        self.inner.neutralized[idx].store(false, Ordering::SeqCst);
        Ok(EbrCtx {
            inner: Arc::clone(&self.inner),
            idx,
            tracer: self.inner.stats.tracer(idx),
            lists: [Vec::new(), Vec::new(), Vec::new()],
            list_epochs: [0; 3],
            retired_since_scan: 0,
            active: false,
            ops_since_clear: 0,
        })
    }

    fn name(&self) -> &'static str {
        "EBR"
    }

    fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.stats.attach(recorder, SchemeId::EBR);
    }

    fn begin_op(&self, ctx: &mut EbrCtx) {
        ctx.active = true;
        let slot = &self.inner.announcements[ctx.idx];
        // Fast path (DEBRA-style): `end_op` left our announcement
        // standing and the epoch has not moved since. No store, no
        // fence.
        // SAFETY(ordering): the standing value was published with the
        // slow path's SeqCst fence and nobody overwrote it (only this
        // thread and `neutralize` write the slot; a neutralize write
        // fails this equality check and falls through to the slow
        // path). Since protection was never dropped in between,
        // back-to-back operations under the same announcement are one
        // long protected region — no new ordering is required. Both
        // loads are SeqCst so they sit in the same total order as the
        // advance CAS, but SeqCst loads compile to plain loads on TSO.
        let e = self.inner.epoch.load(Ordering::SeqCst);
        if slot.load(Ordering::SeqCst) == e {
            ctx.tracer.emit(Hook::BeginOp, e, 0);
            return;
        }
        // Slow path: (re-)announce; re-read to narrow the window in
        // which we announce a stale value (a stale announcement is safe
        // but blocks advancement).
        loop {
            let e = self.inner.epoch.load(Ordering::SeqCst);
            // SAFETY(ordering) PAIRS(ebr-epoch-dekker): Relaxed store +
            // SeqCst fence replaces
            // the old SeqCst store (XCHG on x86). The fence is the
            // StoreLoad barrier the Dekker argument with
            // `try_advance`'s fence needs: either the scanner sees this
            // announcement, or our post-fence epoch re-read sees the
            // scanner's advance and we retry.
            slot.store(e, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if self.inner.epoch.load(Ordering::SeqCst) == e {
                ctx.tracer.emit(Hook::BeginOp, e, 0);
                break;
            }
        }
    }

    fn end_op(&self, ctx: &mut EbrCtx) {
        ctx.active = false;
        ctx.ops_since_clear += 1;
        let slot = &self.inner.announcements[ctx.idx];
        // Leave a still-current announcement standing so the next
        // `begin_op` can take the fence-free fast path; clear it when it
        // went stale (so the epoch can keep advancing) or periodically
        // (so an idle thread cannot pin the epoch indefinitely).
        let e = self.inner.epoch.load(Ordering::SeqCst);
        if slot.load(Ordering::SeqCst) != e || ctx.ops_since_clear >= Ebr::CLEAR_EVERY {
            ctx.ops_since_clear = 0;
            // SAFETY(ordering): Release orders every traversal access
            // of the finished operation before the quiescent mark; an
            // advancer's fence + SeqCst announcement load observes
            // either the protection or the completed quiescence, never
            // a torn middle.
            slot.store(QUIESCENT, Ordering::Release);
        }
        ctx.tracer.emit(Hook::EndOp, 0, 0);
    }

    /// # Safety
    /// See [`Smr::retire`]: `ptr` must be unlinked, retired at most once,
    /// and `drop_fn` must be valid for it.
    unsafe fn retire(
        &self,
        ctx: &mut EbrCtx,
        ptr: *mut u8,
        _header: *const SmrHeader,
        drop_fn: DropFn,
    ) {
        // SAFETY(ordering): the retire stamp must be a SeqCst load (a
        // plain load on TSO — no cost). It anchors the chain
        // reader-link-load ≺ unlink-CAS ≺ this-load in the SeqCst total
        // order, which bounds the stamp at ≥ any concurrent reader's
        // announced epoch and makes `stamp + 2` a safe free horizon.
        let e = self.inner.epoch.load(Ordering::SeqCst);
        let slot = (e % 3) as usize;
        if ctx.list_epochs[slot] != e {
            // The list holds epoch e-3 (≤ e-2) garbage: free it first.
            if !ctx.lists[slot].is_empty() {
                let n = ctx.lists[slot].len();
                for g in ctx.lists[slot].drain(..) {
                    unsafe { self.inner.stats.reclaim_node(g) };
                }
                self.inner.stats.on_reclaim(n);
            }
            ctx.list_epochs[slot] = e;
        }
        ctx.lists[slot].push(Retired {
            ptr,
            birth_era: 0,
            retire_era: e,
            drop_fn,
            retire_tick: self.inner.stats.stamp(),
        });
        let held = self.inner.stats.on_retire();
        ctx.tracer.emit(Hook::Retire, ptr as u64, held as u64);
        ctx.retired_since_scan += 1;
        if ctx.retired_since_scan >= self.inner.retire_threshold {
            ctx.retired_since_scan = 0;
            let epoch = self.inner.try_advance();
            ctx.collect(epoch);
        }
    }

    /// Force-unpins slot `slot`: its announcement is overwritten with
    /// [`QUIESCENT`], so the epoch can advance past it. The victim
    /// learns about it on its next [`Smr::needs_restart`] poll.
    /// # Safety
    /// The caller (watchdog) must ensure the victim thread observes its
    /// neutralized flag before trusting any pointer read in the current
    /// operation — i.e. the structure polls [`Smr::needs_restart`].
    unsafe fn neutralize(&self, slot: usize) -> bool {
        if slot >= self.inner.registry.capacity() || !self.inner.registry.is_in_use(slot) {
            return false;
        }
        // SAFETY(ordering): watchdog path, cold by construction; SeqCst
        // keeps the flag/announcement pair totally ordered against the
        // victim's `needs_restart` RMW and any advance scan.
        self.inner.neutralized[slot].store(true, Ordering::SeqCst);
        self.inner.announcements[slot].store(QUIESCENT, Ordering::SeqCst);
        self.inner.stats.event(Hook::Restart, slot as u64, 0);
        true
    }

    fn needs_restart(&self, ctx: &mut EbrCtx) -> bool {
        // SAFETY(ordering): polled every traversal hop, so the common
        // not-neutralized case must not pay an RMW. A Relaxed miss of a
        // concurrent neutralize only delays the restart by one poll —
        // the victim's protection is already gone the moment the
        // watchdog overwrote its announcement, so detection timing is a
        // liveness matter, not a safety one. The confirming swap stays
        // SeqCst, totally ordered against `neutralize`'s stores.
        if !self.inner.neutralized[ctx.idx].load(Ordering::Relaxed) {
            return false;
        }
        // SAFETY(ordering): SeqCst — pairs with the watchdog's SeqCst flag set
        // in `neutralize`: consuming the flag must be totally ordered against
        // the forced QUIESCENT announcement so a restart is never lost.
        self.inner.neutralized[ctx.idx].swap(false, Ordering::SeqCst)
    }

    fn stats(&self) -> SmrStats {
        self.inner
            .stats
            .snapshot(self.inner.epoch.load(Ordering::SeqCst))
    }

    fn flush(&self, ctx: &mut EbrCtx) {
        // Drop our own standing announcement first (unless we are mid-
        // operation): otherwise the single-threaded flush would block on
        // its own DEBRA-standing value.
        if !ctx.active {
            ctx.ops_since_clear = 0;
            // SAFETY(ordering): Release — un-announcing pairs with the
            // collector's Acquire scan; all our reads of shared nodes happen
            // before the QUIESCENT store becomes visible. (See the fence note
            // in begin_op for why the announce side is stronger.)
            self.inner.announcements[ctx.idx].store(QUIESCENT, Ordering::Release);
        }
        let e = self.inner.try_advance();
        let e = if e == self.inner.epoch.load(Ordering::SeqCst) {
            // A second attempt helps the common single-threaded case:
            // advancing twice makes the previous epoch's garbage eligible.
            self.inner.try_advance()
        } else {
            e
        };
        ctx.collect(e);
        // Adopt orphaned garbage from departed threads: anything retired
        // two or more epochs ago is reclaimable by whoever finds it.
        let eligible: Vec<Retired> = {
            let mut orphans = lock_unpoisoned(&self.inner.orphans);
            let (free, keep): (Vec<_>, Vec<_>) =
                orphans.drain(..).partition(|g| g.retire_era + 2 <= e);
            *orphans = keep;
            free
        };
        let n = eligible.len();
        for g in eligible {
            // SAFETY: eligibility = retired two epochs before the oldest live
            // announcement; no reader can still reach g.
            unsafe { self.inner.stats.reclaim_node(g) };
        }
        self.inner.stats.on_reclaim(n);
        self.inner.stats.adopted(n);
    }
}

// SAFETY: between begin_op and end_op the announced epoch pins every node
// that was reachable since the announcement: nothing retired during the
// operation can be reclaimed before it ends.
unsafe impl crate::common::EpochProtected for Ebr {}

// SAFETY: EBR's epoch discipline makes traversal of retired nodes safe: a
// node is only reclaimed two epochs after retirement, and every traversal
// running in an operation pins its announced epoch.
unsafe impl SupportsUnlinkedTraversal for Ebr {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// # Safety
    /// `p` must be a leaked `Box<u64>` that nothing else can reach.
    unsafe fn free_u64(p: *mut u8) {
        // SAFETY: contract above.
        unsafe { drop(Box::from_raw(p as *mut u64)) }
    }

    fn retire_one(smr: &Ebr, ctx: &mut EbrCtx, v: u64) {
        let p = Box::into_raw(Box::new(v)) as *mut u8;
        // SAFETY: p was just leaked, is unlinked and retired exactly once.
        unsafe { smr.retire(ctx, p, std::ptr::null(), free_u64) };
    }

    #[test]
    fn epoch_advances_when_all_quiescent() {
        let smr = Ebr::new(2);
        let e0 = smr.epoch();
        let mut ctx = smr.register().unwrap();
        smr.begin_op(&mut ctx);
        smr.end_op(&mut ctx);
        smr.flush(&mut ctx);
        assert!(smr.epoch() > e0);
    }

    #[test]
    fn garbage_reclaimed_after_two_epochs() {
        let smr = Ebr::with_threshold(2, 1);
        let mut ctx = smr.register().unwrap();
        smr.begin_op(&mut ctx);
        for i in 0..10 {
            retire_one(&smr, &mut ctx, i);
        }
        smr.end_op(&mut ctx);
        // A few flushes advance the epoch enough to free everything.
        for _ in 0..4 {
            smr.flush(&mut ctx);
        }
        let st = smr.stats();
        assert_eq!(st.retired_now, 0, "{st}");
        assert_eq!(st.total_reclaimed, 10);
    }

    #[test]
    fn stalled_thread_blocks_reclamation() {
        // The non-robustness witness (Definition 5.1 failure).
        let smr = Ebr::with_threshold(2, 1);
        let mut stalled = smr.register().unwrap();
        smr.begin_op(&mut stalled); // announces the epoch and never ends
        let e_before = smr.epoch();

        let mut worker = smr.register().unwrap();
        for i in 0..100 {
            smr.begin_op(&mut worker);
            retire_one(&smr, &mut worker, i);
            smr.end_op(&mut worker);
        }
        for _ in 0..4 {
            smr.flush(&mut worker);
        }
        // The epoch can advance at most once past the stalled thread's
        // announcement (it announced the then-current epoch), then pins.
        assert!(
            smr.epoch() <= e_before + 1,
            "stalled announcement must pin the epoch: {} vs {}",
            smr.epoch(),
            e_before
        );
        let st = smr.stats();
        assert_eq!(st.total_reclaimed, 0, "{st}");
        assert_eq!(st.retired_now, 100);

        // Un-stall: everything drains.
        smr.end_op(&mut stalled);
        for _ in 0..6 {
            smr.flush(&mut worker);
        }
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_churn_reclaims_most_garbage() {
        let smr = Ebr::with_threshold(8, 8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let smr = &smr;
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for i in 0..1_000u64 {
                        smr.begin_op(&mut ctx);
                        retire_one(smr, &mut ctx, i);
                        smr.end_op(&mut ctx);
                    }
                    for _ in 0..8 {
                        smr.flush(&mut ctx);
                    }
                });
            }
        });
        let st = smr.stats();
        assert_eq!(st.total_retired, 4_000);
        assert!(
            st.total_reclaimed >= 3_000,
            "most garbage should be reclaimed under churn: {st}"
        );
    }

    #[test]
    fn neutralize_unpins_stalled_thread() {
        // Same setup as `stalled_thread_blocks_reclamation`, but the
        // watchdog path: neutralizing the stalled slot lets the epoch
        // advance and the backlog drain without the victim cooperating
        // first. The victim observes exactly one restart request.
        let smr = Ebr::with_threshold(2, 1);
        let mut stalled = smr.register().unwrap();
        smr.begin_op(&mut stalled);

        let mut worker = smr.register().unwrap();
        for i in 0..100 {
            smr.begin_op(&mut worker);
            retire_one(&smr, &mut worker, i);
            smr.end_op(&mut worker);
        }
        for _ in 0..4 {
            smr.flush(&mut worker);
        }
        assert_eq!(smr.stats().total_reclaimed, 0, "stall must hold garbage");

        // SAFETY: the test's own loop polls needs_restart before reusing
        // pointers (neutralize contract).
        assert!(unsafe { smr.neutralize(0) }, "slot 0 is registered");
        for _ in 0..6 {
            smr.flush(&mut worker);
        }
        assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());

        assert!(smr.needs_restart(&mut stalled), "victim must see restart");
        assert!(!smr.needs_restart(&mut stalled), "restart reported once");

        // Unregistered slots cannot be neutralized.
        // SAFETY: both calls must return false — nothing to restart.
        assert!(!unsafe { smr.neutralize(5) });
        drop(stalled);
        assert!(!unsafe { smr.neutralize(0) });
    }

    #[test]
    fn drop_frees_leftovers() {
        static FREED: AtomicUsize = AtomicUsize::new(0);
        /// # Safety
        /// `p` must be a leaked `Box<u64>` nothing else reaches.
        unsafe fn counting(p: *mut u8) {
            // SAFETY(ordering): SeqCst — test counter, strongest for clarity.
            FREED.fetch_add(1, Ordering::SeqCst);
            // SAFETY: contract above.
            unsafe { drop(Box::from_raw(p as *mut u64)) }
        }
        // SAFETY(ordering): SeqCst — test counter reset before use.
        FREED.store(0, Ordering::SeqCst);
        let smr = Ebr::new(2);
        let mut ctx = smr.register().unwrap();
        smr.begin_op(&mut ctx);
        let p = Box::into_raw(Box::new(1u64)) as *mut u8;
        // SAFETY: p was just leaked, unlinked, retired exactly once.
        unsafe { smr.retire(&mut ctx, p, std::ptr::null(), counting) };
        smr.end_op(&mut ctx);
        drop(ctx);
        drop(smr);
        assert_eq!(FREED.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stale_announcement_blocks_but_never_breaks() {
        // Two threads ping-pong; epoch keeps advancing.
        let smr = Ebr::with_threshold(2, 1);
        let mut a = smr.register().unwrap();
        let mut b = smr.register().unwrap();
        let start = smr.epoch();
        for i in 0..50 {
            smr.begin_op(&mut a);
            smr.begin_op(&mut b);
            retire_one(&smr, &mut a, i);
            smr.end_op(&mut a);
            smr.end_op(&mut b);
            smr.flush(&mut a);
        }
        assert!(smr.epoch() > start);
        assert!(smr.stats().total_reclaimed > 0);
    }
}
