//! Neutralization-based reclamation (NBR) — Singh, Brown & Mashtizadeh
//! [39], **cooperative variant**.
//!
//! Real NBR divides every operation into read-only and write phases
//! (the access-aware discipline of Appendix C), lets read phases run
//! completely unprotected, and publishes HP-style *reservations* only
//! for the handful of pointers the write phase needs. A reclaiming
//! thread *neutralizes* all readers with a POSIX signal: the signal
//! handler longjmps the reader back to the start of its read phase, so
//! after the signal round no reader holds an unreserved pointer, and
//! everything unreserved can be freed.
//!
//! ## Substitution (no OS signals)
//!
//! This crate has no `libc` dependency, so neutralization is
//! **cooperative**: readers poll [`Smr::needs_restart`] at every
//! traversal step; the reclaimer bumps a global round counter and waits
//! until every in-read-phase thread has acknowledged the new round (or
//! is quiescent / inside a reservation-protected write phase). Because a
//! reader acknowledges only at a poll point, every dereference it makes
//! is ordered *before* its acknowledgement and therefore before any
//! free — the same safety argument as the signal version, with the
//! delivery guarantee replaced by polling. The cost: a thread stalled
//! *inside* a read phase delays reclamation until it polls (real NBR
//! tolerates such stalls via the kernel). The reclaimer gives up after a
//! bounded wait, so progress is preserved and the footprint degrades
//! gracefully. DESIGN.md documents this substitution.
//!
//! NBR's ERA profile: **robust + widely applicable, not easy** — the
//! phase hooks (`enter_read_phase`, `needs_restart`, `reserve`,
//! `commit_reservations`) are insertions at arbitrary code locations and
//! restarts are roll-backs, both outlawed by Definition 5.3.

// ERA-CLASS: NBR robust — neutralization restarts stalled readers, so a
// reader cannot pin retired nodes past the next signalled round and the
// trapped set stays bounded (Def. 4.2).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};

use crate::common::{
    lock_unpoisoned, try_lock_unpoisoned, untagged, CachePadded, DropFn, RegisterError, Retired,
    SlotRegistry, Smr, SmrHeader, SmrStats, StatCells, SupportsUnlinkedTraversal,
};

/// Thread state: not inside any operation.
const QUIESCENT: u64 = u64::MAX;
/// Thread state: inside a write phase, protected by its reservations.
const IN_WRITE: u64 = u64::MAX - 1;

/// Spin budget while waiting for acknowledgements before giving up the
/// current reclamation attempt.
const WAIT_SPINS: usize = 100_000;

#[derive(Debug)]
struct NbrInner {
    round: AtomicU64,
    /// Per-thread acknowledgement: QUIESCENT, IN_WRITE, or the latest
    /// acknowledged round. Cache-padded: each slot is written by exactly
    /// one thread on its hot path, so sharing a line would cause false
    /// sharing between neighbouring thread indices.
    acked: Box<[CachePadded<AtomicU64>]>,
    /// `capacity × k` reservation slots (untagged node addresses),
    /// padded per *thread* group: the k slots of one thread stay close
    /// together (they are written together in the write phase) while
    /// different threads land on different cache lines.
    reservations: Box<[CachePadded<AtomicUsize>]>,
    k: usize,
    registry: SlotRegistry,
    stats: StatCells,
    orphans: Mutex<Vec<Retired>>,
    retire_threshold: usize,
}

impl NbrInner {
    /// Neutralize all readers, wait for acknowledgements, and free every
    /// unreserved retired node of `garbage`. `self_idx` is never waited
    /// on. Returns whether the round completed (false = gave up).
    /// Adopts orphaned garbage from dead contexts (see the HP variant).
    /// Safe to fold in before a neutralization round: orphaned nodes
    /// obey the same reservation test as locally retired ones.
    fn adopt_orphans(&self, garbage: &mut Vec<Retired>) {
        if let Some(mut orphans) = try_lock_unpoisoned(&self.orphans) {
            let n = orphans.len();
            if n > 0 {
                garbage.append(&mut orphans);
                drop(orphans);
                self.stats.adopted(n);
            }
        }
    }

    fn neutralize_and_reclaim(&self, self_idx: usize, garbage: &mut Vec<Retired>) -> bool {
        self.adopt_orphans(garbage);
        // SAFETY(ordering) PAIRS(nbr-round-handshake): SeqCst — the round
        // bump must be totally ordered
        // against every reader's SeqCst `acked` store (begin_op/poll below):
        // a reader that acknowledged < new_round can still hold pre-bump
        // pointers, and the wait loop below relies on that total order.
        let new_round = self.round.fetch_add(1, Ordering::SeqCst) + 1;
        for j in 0..self.registry.capacity() {
            if j == self_idx || !self.registry.is_in_use(j) {
                continue;
            }
            let mut spins = 0usize;
            loop {
                let a = self.acked[j].load(Ordering::SeqCst);
                if a == QUIESCENT || a == IN_WRITE || a >= new_round {
                    break;
                }
                spins += 1;
                if spins >= WAIT_SPINS {
                    // Reader stalled mid-read-phase: give up this round.
                    self.stats.blocked(j, garbage.len());
                    return false;
                }
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                }
                std::hint::spin_loop();
            }
        }
        let reserved: std::collections::HashSet<usize> = self
            .reservations
            .iter()
            .map(|r| r.load(Ordering::SeqCst))
            .filter(|&w| w != 0)
            .collect();
        let before = garbage.len();
        let mut kept = Vec::new();
        for g in garbage.drain(..) {
            if reserved.contains(&(g.ptr as usize)) {
                kept.push(g);
            } else {
                // SAFETY: every in-flight reader either acknowledged a round newer
                // than this retire or published a reservation; unreserved garbage
                // is unreachable from any read phase.
                unsafe { self.stats.reclaim_node(g) };
            }
        }
        self.stats.on_reclaim(before - kept.len());
        *garbage = kept;
        true
    }
}

impl Drop for NbrInner {
    fn drop(&mut self) {
        let orphans = std::mem::take(&mut *lock_unpoisoned(&self.orphans));
        let n = orphans.len();
        for g in orphans {
            // SAFETY: orphans were retired by a departed thread and survived its
            // final neutralize round — no live read phase can reach them.
            unsafe { self.stats.reclaim_node(g) };
        }
        self.stats.on_reclaim(n);
    }
}

/// Cooperative neutralization-based reclamation.
///
/// # Example
///
/// The write-phase protocol: reserve, commit, write, clear.
///
/// ```
/// use era_smr::{nbr::Nbr, Smr};
///
/// let smr = Nbr::new(4, 3);
/// let mut ctx = smr.register().unwrap();
/// smr.begin_op(&mut ctx);                 // enters a read phase
/// // …unprotected traversal, polling smr.needs_restart(&mut ctx)…
/// smr.reserve(&mut ctx, 0, 0x1000);       // publish write-set
/// if smr.commit_reservations(&mut ctx) {
///     // …write phase: CASes on reserved nodes…
///     smr.clear_reservations(&mut ctx);
/// } // else: restart the read phase
/// smr.end_op(&mut ctx);
/// ```
#[derive(Debug, Clone)]
pub struct Nbr {
    inner: Arc<NbrInner>,
}

/// Per-thread context for [`Nbr`].
#[derive(Debug)]
#[must_use = "dropping a context releases its slot, voids its reservations and orphans its garbage"]
pub struct NbrCtx {
    inner: Arc<NbrInner>,
    idx: usize,
    tracer: ThreadTracer,
    garbage: Vec<Retired>,
    /// Round observed at the start of the current read phase.
    round: u64,
}

impl Drop for NbrCtx {
    fn drop(&mut self) {
        // SAFETY(ordering): SeqCst — slot teardown pairs with the reclaimer's
        // SeqCst reservation/acked scan in neutralize_and_reclaim: the scan
        // must not observe QUIESCENT while a stale reservation is still
        // visible, or it would free a node this (dying) reader reserved.
        for s in 0..self.inner.k {
            self.inner.reservations[self.idx * self.inner.k + s].store(0, Ordering::SeqCst);
        }
        self.inner.acked[self.idx].store(QUIESCENT, Ordering::SeqCst);
        // Runs during unwinding too: poison-tolerant handoff, then an
        // unconditional slot release (see the EBR drop path).
        lock_unpoisoned(&self.inner.orphans).append(&mut self.garbage);
        self.inner.registry.release(self.idx);
    }
}

impl Nbr {
    /// Default retired-list length triggering neutralization.
    pub const DEFAULT_RETIRE_THRESHOLD: usize = 64;

    /// Creates an NBR instance: `max_threads` threads, `k` reservation
    /// slots each.
    pub fn new(max_threads: usize, k: usize) -> Self {
        Self::with_threshold(max_threads, k, Self::DEFAULT_RETIRE_THRESHOLD)
    }

    /// Creates an NBR instance with a custom retire threshold.
    pub fn with_threshold(max_threads: usize, k: usize, retire_threshold: usize) -> Self {
        assert!(k >= 1);
        let acked: Vec<CachePadded<AtomicU64>> = (0..max_threads)
            .map(|_| CachePadded::new(AtomicU64::new(QUIESCENT)))
            .collect();
        let reservations: Vec<CachePadded<AtomicUsize>> = (0..max_threads * k)
            .map(|_| CachePadded::new(AtomicUsize::new(0)))
            .collect();
        Nbr {
            inner: Arc::new(NbrInner {
                round: AtomicU64::new(1),
                acked: acked.into_boxed_slice(),
                reservations: reservations.into_boxed_slice(),
                k,
                registry: SlotRegistry::new(max_threads),
                stats: StatCells::default(),
                orphans: Mutex::new(Vec::new()),
                retire_threshold: retire_threshold.max(1),
            }),
        }
    }

    /// Current neutralization round.
    pub fn round(&self) -> u64 {
        self.inner.round.load(Ordering::SeqCst)
    }
}

impl Smr for Nbr {
    type ThreadCtx = NbrCtx;

    fn register(&self) -> Result<NbrCtx, RegisterError> {
        let idx = self.inner.registry.acquire()?;
        // SAFETY(ordering): SeqCst — slot re-initialization pairs with the
        // reclaimer's SeqCst scan: stale state from a previous owner of this
        // slot must be gone before any op of ours can be observed.
        self.inner.acked[idx].store(QUIESCENT, Ordering::SeqCst);
        for s in 0..self.inner.k {
            self.inner.reservations[idx * self.inner.k + s].store(0, Ordering::SeqCst);
        }
        Ok(NbrCtx {
            inner: Arc::clone(&self.inner),
            idx,
            tracer: self.inner.stats.tracer(idx),
            garbage: Vec::new(),
            round: 0,
        })
    }

    fn name(&self) -> &'static str {
        "NBR"
    }

    fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.stats.attach(recorder, SchemeId::NBR);
    }

    fn begin_op(&self, ctx: &mut NbrCtx) {
        self.enter_read_phase(ctx);
        ctx.tracer.emit(Hook::BeginOp, ctx.round, 0);
    }

    fn end_op(&self, ctx: &mut NbrCtx) {
        self.clear_reservations(ctx);
        // SAFETY(ordering): SeqCst — pairs with the reclaimer's SeqCst acked
        // scan: QUIESCENT must not become visible before the reservation
        // clears above, or reserved nodes could be freed mid-op.
        self.inner.acked[ctx.idx].store(QUIESCENT, Ordering::SeqCst);
        ctx.tracer.emit(Hook::EndOp, 0, 0);
    }

    /// # Safety
    /// See [`Smr::retire`]: `ptr` must be unlinked, retired at most once,
    /// and `drop_fn` must be valid for it.
    unsafe fn retire(
        &self,
        ctx: &mut NbrCtx,
        ptr: *mut u8,
        _header: *const SmrHeader,
        drop_fn: DropFn,
    ) {
        ctx.garbage.push(Retired {
            ptr,
            birth_era: 0,
            retire_era: 0,
            drop_fn,
            retire_tick: self.inner.stats.stamp(),
        });
        let held = self.inner.stats.on_retire();
        ctx.tracer.emit(Hook::Retire, ptr as u64, held as u64);
        if ctx.garbage.len() >= self.inner.retire_threshold {
            self.inner.neutralize_and_reclaim(ctx.idx, &mut ctx.garbage);
        }
    }

    fn enter_read_phase(&self, ctx: &mut NbrCtx) {
        let r = self.inner.round.load(Ordering::SeqCst);
        ctx.round = r;
        // SAFETY(ordering) PAIRS(nbr-round-handshake): SeqCst — the round
        // acknowledgement pairs with the
        // reclaimer's SeqCst round bump: acking r promises this phase holds no
        // pointer retired before round r.
        self.inner.acked[ctx.idx].store(r, Ordering::SeqCst);
    }

    fn needs_restart(&self, ctx: &mut NbrCtx) -> bool {
        let r = self.inner.round.load(Ordering::SeqCst);
        if r != ctx.round {
            // Acknowledge the neutralization; the caller must drop every
            // pointer collected in this read phase and restart it.
            ctx.round = r;
            // SAFETY(ordering): SeqCst — same acked/round pairing as begin_op:
            // the restart ack is the reader's promise to drop pre-round pointers.
            self.inner.acked[ctx.idx].store(r, Ordering::SeqCst);
            ctx.tracer.emit(Hook::Restart, r, 0);
            true
        } else {
            false
        }
    }

    fn reserve(&self, ctx: &mut NbrCtx, slot: usize, word: usize) {
        assert!(slot < self.inner.k, "reservation slot out of range");
        // SAFETY(ordering): SeqCst — the reservation publish pairs with the
        // reclaimer's SeqCst reservation scan; commit_reservations then
        // validates the round, closing the publish/scan race.
        self.inner.reservations[ctx.idx * self.inner.k + slot]
            .store(untagged(word), Ordering::SeqCst);
        ctx.tracer
            .emit(Hook::Reserve, slot as u64, untagged(word) as u64);
    }

    fn commit_reservations(&self, ctx: &mut NbrCtx) -> bool {
        // Reservations are published; if no neutralization intervened
        // since the read phase began they are guaranteed valid.
        let r = self.inner.round.load(Ordering::SeqCst);
        if r != ctx.round {
            self.clear_reservations(ctx);
            ctx.round = r;
            // SAFETY(ordering): SeqCst — both acked transitions pair with the
            // reclaimer's SeqCst acked scan: the failed branch re-acks the new
            // round, the success branch parks in IN_WRITE so neutralization
            // passes over a committed writer.
            self.inner.acked[ctx.idx].store(r, Ordering::SeqCst);
            false
        } else {
            self.inner.acked[ctx.idx].store(IN_WRITE, Ordering::SeqCst);
            true
        }
    }

    fn clear_reservations(&self, ctx: &mut NbrCtx) {
        // SAFETY(ordering): SeqCst — pairs with the reclaimer's SeqCst
        // reservation scan; a cleared slot must not appear reserved after the
        // owner moved on, and vice versa.
        for s in 0..self.inner.k {
            self.inner.reservations[ctx.idx * self.inner.k + s].store(0, Ordering::SeqCst);
        }
    }

    fn stats(&self) -> SmrStats {
        self.inner
            .stats
            .snapshot(self.inner.round.load(Ordering::SeqCst))
    }

    fn flush(&self, ctx: &mut NbrCtx) {
        self.inner.neutralize_and_reclaim(ctx.idx, &mut ctx.garbage);
    }
}

// SAFETY: read phases may traverse retired chains: a retired node is freed only
// after every concurrent read phase has acknowledged a neutralization
// round that began after the retire, and acknowledging happens only at
// poll points — after the reader's last dereference of the node.
unsafe impl SupportsUnlinkedTraversal for Nbr {}

#[cfg(test)]
mod tests {
    use super::*;

    /// # Safety
    /// `p` must be a leaked `Box<u64>` that nothing else can reach.
    unsafe fn free_u64(p: *mut u8) {
        // SAFETY: contract above.
        unsafe { drop(Box::from_raw(p as *mut u64)) }
    }

    fn retire_one(smr: &Nbr, ctx: &mut NbrCtx, v: u64) -> usize {
        let p = Box::into_raw(Box::new(v)) as usize;
        // SAFETY: p was just leaked, is unlinked and retired exactly once.
        unsafe { smr.retire(ctx, p as *mut u8, std::ptr::null(), free_u64) };
        p
    }

    #[test]
    fn reclaims_when_everyone_cooperates() {
        let smr = Nbr::with_threshold(2, 2, 4);
        let mut ctx = smr.register().unwrap();
        for i in 0..20 {
            let _ = retire_one(&smr, &mut ctx, i);
        }
        smr.flush(&mut ctx);
        let st = smr.stats();
        assert_eq!(st.retired_now, 0, "{st}");
        assert_eq!(st.total_reclaimed, 20);
    }

    #[test]
    fn reservation_protects_node_across_rounds() {
        let smr = Nbr::with_threshold(2, 1, 1);
        let mut writer = smr.register().unwrap();
        let mut other = smr.register().unwrap();

        smr.begin_op(&mut writer);
        let node = Box::into_raw(Box::new(5u64)) as usize;
        smr.reserve(&mut writer, 0, node);
        assert!(smr.commit_reservations(&mut writer));

        // Another thread retires the reserved node and neutralizes.
        // SAFETY: node is a leaked Box retired once; the writer's reservation
        // (the thing under test) keeps the later read valid.
        unsafe { smr.retire(&mut other, node as *mut u8, std::ptr::null(), free_u64) };
        smr.flush(&mut other);
        assert_eq!(smr.stats().retired_now, 1, "reserved node must survive");

        // Writer can still safely read it.
        let v = unsafe { *(node as *const u64) };
        assert_eq!(v, 5);

        smr.clear_reservations(&mut writer);
        smr.end_op(&mut writer);
        smr.flush(&mut other);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn neutralization_forces_reader_restart() {
        let smr = Nbr::with_threshold(2, 1, 1);
        let mut reader = smr.register().unwrap();
        let mut reclaimer = smr.register().unwrap();

        smr.begin_op(&mut reader);
        assert!(!smr.needs_restart(&mut reader));

        // Reclaimer bumps the round (flush with empty garbage still
        // neutralizes — use retire to trigger).
        let _ = retire_one(&smr, &mut reclaimer, 1);
        // Retire threshold 1 ⇒ neutralization ran; it waited for the
        // reader? No: reader has not polled. The reclaimer's spin budget
        // is generous but the test is single-threaded here, so neutralize
        // must NOT deadlock: it gives up after the budget. To keep the
        // test fast, poll from this thread interleaved:
        assert!(smr.needs_restart(&mut reader), "round changed: restart");
        assert!(!smr.needs_restart(&mut reader), "acked: no further restart");
        smr.end_op(&mut reader);
        smr.flush(&mut reclaimer);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn commit_fails_if_neutralized_mid_phase() {
        let smr = Nbr::with_threshold(2, 1, 1);
        let mut writer = smr.register().unwrap();
        let mut other = smr.register().unwrap();

        smr.begin_op(&mut writer);
        let node = Box::into_raw(Box::new(9u64)) as usize;
        smr.reserve(&mut writer, 0, node);

        // A neutralization intervenes before the commit: the round moves.
        // SAFETY(ordering): SeqCst — test mimics the reclaimer's round bump.
        smr.inner.round.fetch_add(1, Ordering::SeqCst);
        assert!(!smr.commit_reservations(&mut writer), "must restart");

        smr.end_op(&mut writer);
        // SAFETY: node is a leaked Box, unlinked, retired exactly once.
        unsafe { smr.retire(&mut other, node as *mut u8, std::ptr::null(), free_u64) };
        smr.flush(&mut other);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn quiescent_and_write_phase_threads_do_not_block_reclamation() {
        let smr = Nbr::with_threshold(3, 1, 1);
        let _quiescent = smr.register().unwrap();
        let mut in_write = smr.register().unwrap();
        smr.begin_op(&mut in_write);
        assert!(smr.commit_reservations(&mut in_write)); // IN_WRITE, no reservations

        let mut worker = smr.register().unwrap();
        for i in 0..10 {
            let _ = retire_one(&smr, &mut worker, i);
        }
        smr.flush(&mut worker);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_readers_and_reclaimers() {
        let smr = Nbr::with_threshold(8, 2, 16);
        let shared = AtomicUsize::new(Box::into_raw(Box::new(0u64)) as usize);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (smr, shared) = (&smr, &shared);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for i in 1..=1_000u64 {
                        smr.begin_op(&mut ctx);
                        let newp = Box::into_raw(Box::new(i)) as usize;
                        // Writer protocol: reserve the old node before
                        // detaching it (write phase).
                        let old = shared.load(Ordering::SeqCst);
                        smr.reserve(&mut ctx, 0, old);
                        if !smr.commit_reservations(&mut ctx) {
                            // Restart: drop the reservation and retry via
                            // a fresh op. (Simplified: skip this round.)
                            // SAFETY: newp is this thread's own unpublished Box.
                            unsafe { drop(Box::from_raw(newp as *mut u64)) };
                            smr.end_op(&mut ctx);
                            continue;
                        }
                        // SAFETY(ordering): SeqCst — test swap; keeps the
                        // publish in the same SC order the scheme assumes.
                        match shared.compare_exchange(old, newp, Ordering::SeqCst, Ordering::SeqCst)
                        {
                            Ok(_) => {
                                smr.clear_reservations(&mut ctx);
                                // SAFETY: the CAS unlinked `old`; this thread is
                                // its unique retirer.
                                unsafe {
                                    smr.retire(&mut ctx, old as *mut u8, std::ptr::null(), free_u64)
                                };
                            }
                            Err(_) => {
                                smr.clear_reservations(&mut ctx);
                                // SAFETY: lost the CAS — newp never published.
                                unsafe { drop(Box::from_raw(newp as *mut u64)) };
                            }
                        }
                        smr.end_op(&mut ctx);
                    }
                    smr.flush(&mut ctx);
                });
            }
            for _ in 0..2 {
                let (smr, shared) = (&smr, &shared);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for _ in 0..1_000 {
                        smr.begin_op(&mut ctx);
                        'phase: loop {
                            if smr.needs_restart(&mut ctx) {
                                continue 'phase;
                            }
                            let p = shared.load(Ordering::SeqCst);
                            // Poll BEFORE dereferencing: if no round
                            // intervened since the read phase began, p is
                            // still protected by the cooperative wait.
                            if smr.needs_restart(&mut ctx) {
                                continue 'phase;
                            }
                            // SAFETY: p is reserved and the commit validated
                            // the round — NBR's read-phase guarantee.
                            let v = unsafe { *(p as *const u64) };
                            assert!(v <= 2_000);
                            break 'phase;
                        }
                        smr.end_op(&mut ctx);
                    }
                });
            }
        });
        let last = shared.load(Ordering::SeqCst);
        // SAFETY: workers joined; the final published Box is exclusively ours.
        unsafe { drop(Box::from_raw(last as *mut u64)) };
    }
}
