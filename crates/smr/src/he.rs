//! Hazard eras (HE) — Ramalhete & Correia [36].
//!
//! HE replaces HP's per-pointer addresses with per-pointer *eras*: a
//! global era clock advances as nodes are allocated and retired; every
//! node records its birth era; retirement records its retire era. A
//! protected load publishes the current era in a reservation slot and
//! validates the clock did not move. A retired node may be freed only
//! when no reservation era `e` falls inside its `[birth, retire]`
//! lifetime.
//!
//! Like HP, HE is easy to integrate and robust (bounded footprint), and
//! like HP it is **not** applicable to Harris's list: a validated era
//! does not protect nodes whose lifetime ended before the era was
//! published — exactly the Figure 2 scenario — so `He` does not
//! implement [`SupportsUnlinkedTraversal`](crate::common::SupportsUnlinkedTraversal).

// ERA-CLASS: HE robust — era reservations bound what a stalled reader
// can trap to the nodes live in its reserved eras (Def. 4.2).

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};

use crate::common::{
    lock_unpoisoned, try_lock_unpoisoned, CachePadded, DropFn, RegisterError, Retired,
    SlotRegistry, Smr, SmrHeader, SmrStats, StatCells,
};

/// Reservation slot value meaning "nothing reserved".
const NONE: u64 = u64::MAX;

#[derive(Debug)]
struct HeInner {
    era: CachePadded<AtomicU64>,
    /// `capacity × k` era reservations, each line-padded: written on
    /// every slow-path protected load by their single owner and read by
    /// every scanner.
    reservations: Box<[CachePadded<AtomicU64>]>,
    k: usize,
    registry: SlotRegistry,
    stats: StatCells,
    orphans: Mutex<Vec<Retired>>,
    scan_threshold: usize,
    /// Advance the era every this many allocations (and retirements).
    era_frequency: u64,
}

impl HeInner {
    /// Snapshot of the published reservations as a sorted
    /// `(era, owner)` list. Sorting once turns the per-retired-node
    /// lifetime-overlap test into a binary search (`partition_point`),
    /// `O((R + T·k)·log(T·k))` per scan instead of a linear probe per
    /// node.
    fn reservation_snapshot(&self) -> Vec<(u64, usize)> {
        // SAFETY(ordering) PAIRS(he-era-dekker): the SeqCst fence
        // pairs with the fence in
        // `load`'s publish path (protect-validate Dekker): either a
        // reader's era reservation is visible to this scan, or the
        // reader's post-fence era validation observes the advance that
        // made its target node retirable and retries. Slot loads are in
        // ascending index order — `protect_alias` relies on it (its
        // destination slot store is sequenced before the source slot's
        // next Release publish).
        fence(Ordering::SeqCst);
        let mut snap = Vec::with_capacity(self.reservations.len());
        for (i, r) in self.reservations.iter().enumerate() {
            let e = r.load(Ordering::SeqCst);
            if e != NONE {
                snap.push((e, i / self.k));
            }
        }
        snap.sort_unstable();
        snap
    }

    /// Adopts orphaned garbage from dead contexts (see the HP variant):
    /// the era-overlap test in `scan` applies to orphans unchanged, so
    /// folding them into the scanning thread's list is all it takes.
    fn adopt_orphans(&self, garbage: &mut Vec<Retired>) {
        if let Some(mut orphans) = try_lock_unpoisoned(&self.orphans) {
            let n = orphans.len();
            if n > 0 {
                garbage.append(&mut orphans);
                drop(orphans);
                self.stats.adopted(n);
            }
        }
    }

    fn scan(&self, garbage: &mut Vec<Retired>) {
        self.adopt_orphans(garbage);
        let snapshot = self.reservation_snapshot();
        let before = garbage.len();
        let mut kept = Vec::new();
        for g in garbage.drain(..) {
            // Smallest reserved era ≥ birth; the node is pinned iff it
            // also falls at or before the retire era.
            let i = snapshot.partition_point(|&(e, _)| e < g.birth_era);
            if i < snapshot.len() && snapshot[i].0 <= g.retire_era {
                self.stats.blocked(snapshot[i].1, 1);
                kept.push(g);
            } else {
                // SAFETY: the scan found no hazard era covering [birth, retire] —
                // no reader can still hold a protected reference to g.
                unsafe { self.stats.reclaim_node(g) };
            }
        }
        self.stats.on_reclaim(before - kept.len());
        *garbage = kept;
    }
}

impl Drop for HeInner {
    fn drop(&mut self) {
        let orphans = std::mem::take(&mut *lock_unpoisoned(&self.orphans));
        let n = orphans.len();
        for g in orphans {
            // SAFETY: orphans already survived a full hazard-era scan after
            // their owner departed; nothing can reach them.
            unsafe { self.stats.reclaim_node(g) };
        }
        self.stats.on_reclaim(n);
    }
}

/// Hazard-era reclamation.
///
/// # Example
///
/// ```
/// use era_smr::{he::He, Smr, SmrHeader};
/// use std::sync::atomic::AtomicUsize;
///
/// let smr = He::new(4, 3);
/// let mut ctx = smr.register().unwrap();
/// let header = SmrHeader::new();
/// smr.init_header(&mut ctx, &header); // stamps the birth era
/// assert!(header.birth_era.load(std::sync::atomic::Ordering::SeqCst) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct He {
    inner: Arc<HeInner>,
}

/// Per-thread context for [`He`].
#[derive(Debug)]
#[must_use = "dropping a context releases its slot and orphans its unflushed garbage"]
pub struct HeCtx {
    inner: Arc<HeInner>,
    idx: usize,
    tracer: ThreadTracer,
    garbage: Vec<Retired>,
    allocs: u64,
    retires: u64,
    /// Private mirror of this thread's published reservation eras
    /// (single-writer slots, so the mirror is always exact). Lets the
    /// `load` fast path skip the publish + fence when the standing
    /// reservation already covers the current era.
    slot_eras: Vec<u64>,
}

impl Drop for HeCtx {
    fn drop(&mut self) {
        for s in 0..self.inner.k {
            // SAFETY(ordering): Release — orders the thread's last
            // dereferences before the reservations clear.
            self.inner.reservations[self.idx * self.inner.k + s].store(NONE, Ordering::Release);
        }
        // Runs during unwinding too: poison-tolerant handoff, then an
        // unconditional slot release (see the EBR drop path).
        lock_unpoisoned(&self.inner.orphans).append(&mut self.garbage);
        self.inner.registry.release(self.idx);
    }
}

impl He {
    /// Default retired-list length triggering a scan.
    pub const DEFAULT_SCAN_THRESHOLD: usize = 64;
    /// Default era advance frequency (allocations per era).
    pub const DEFAULT_ERA_FREQUENCY: u64 = 32;

    /// Creates an HE instance: `max_threads` threads, `k` reservation
    /// slots each.
    pub fn new(max_threads: usize, k: usize) -> Self {
        Self::with_params(
            max_threads,
            k,
            Self::DEFAULT_SCAN_THRESHOLD,
            Self::DEFAULT_ERA_FREQUENCY,
        )
    }

    /// Creates an HE instance with custom scan threshold and era
    /// frequency.
    pub fn with_params(
        max_threads: usize,
        k: usize,
        scan_threshold: usize,
        era_frequency: u64,
    ) -> Self {
        assert!(k >= 1);
        let reservations: Vec<CachePadded<AtomicU64>> = (0..max_threads * k)
            .map(|_| CachePadded::new(AtomicU64::new(NONE)))
            .collect();
        He {
            inner: Arc::new(HeInner {
                era: CachePadded::new(AtomicU64::new(1)),
                reservations: reservations.into_boxed_slice(),
                k,
                registry: SlotRegistry::new(max_threads),
                stats: StatCells::default(),
                orphans: Mutex::new(Vec::new()),
                scan_threshold: scan_threshold.max(1),
                era_frequency: era_frequency.max(1),
            }),
        }
    }

    /// Current global era.
    pub fn era(&self) -> u64 {
        self.inner.era.load(Ordering::SeqCst)
    }
}

impl Smr for He {
    type ThreadCtx = HeCtx;

    fn register(&self) -> Result<HeCtx, RegisterError> {
        let idx = self.inner.registry.acquire()?;
        for s in 0..self.inner.k {
            // SAFETY(ordering): registration is cold; SeqCst keeps the
            // slot reset visible before any scan considers this thread.
            self.inner.reservations[idx * self.inner.k + s].store(NONE, Ordering::SeqCst);
        }
        Ok(HeCtx {
            inner: Arc::clone(&self.inner),
            idx,
            tracer: self.inner.stats.tracer(idx),
            garbage: Vec::new(),
            allocs: 0,
            retires: 0,
            slot_eras: vec![NONE; self.inner.k],
        })
    }

    fn name(&self) -> &'static str {
        "HE"
    }

    fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.stats.attach(recorder, SchemeId::HE);
    }

    fn begin_op(&self, ctx: &mut HeCtx) {
        ctx.tracer
            .emit(Hook::BeginOp, self.inner.era.load(Ordering::SeqCst), 0);
    }

    fn end_op(&self, ctx: &mut HeCtx) {
        for s in 0..self.inner.k {
            // SAFETY(ordering): Release (plain store on x86, vs the old
            // SeqCst XCHG) orders the operation's dereferences before
            // the reservation clear becomes visible to a scanner.
            self.inner.reservations[ctx.idx * self.inner.k + s].store(NONE, Ordering::Release);
            ctx.slot_eras[s] = NONE;
        }
        ctx.tracer.emit(Hook::EndOp, 0, 0);
    }

    fn load(&self, ctx: &mut HeCtx, slot: usize, src: &AtomicUsize) -> usize {
        assert!(slot < self.inner.k, "reservation slot out of range");
        let cell = &self.inner.reservations[ctx.idx * self.inner.k + slot];
        let mut era = self.inner.era.load(Ordering::SeqCst);
        // Fast path: our standing reservation (published with a fence by
        // an earlier slow-path load, never cleared since — the mirror is
        // exact because the slot is single-writer) already covers the
        // current era: no store, no fence.
        // SAFETY(ordering): both validation loads are SeqCst (plain
        // loads on TSO), so they cannot reorder: if a node born in era
        // `era + 1` was published before our `src` read, the inserter's
        // era read precedes its publish in the SeqCst order, so our
        // second era load observes the advance and we fall through to
        // the slow path instead of trusting a reservation that does not
        // cover the new node's lifetime.
        if ctx.slot_eras[slot] == era {
            let p = src.load(Ordering::SeqCst);
            if self.inner.era.load(Ordering::SeqCst) == era {
                ctx.tracer.emit(Hook::Load, slot as u64, p as u64);
                return p;
            }
            era = self.inner.era.load(Ordering::SeqCst);
        }
        loop {
            // SAFETY(ordering) PAIRS(he-era-dekker): Release store +
            // SeqCst fence replaces
            // the old SeqCst store: the fence makes the reservation
            // globally visible before the validating reads (pairs with
            // the fence in `reservation_snapshot`); Release keeps the
            // store ordered after any earlier `protect_alias` transfer
            // out of this slot.
            cell.store(era, Ordering::Release);
            fence(Ordering::SeqCst);
            let p = src.load(Ordering::SeqCst);
            let now = self.inner.era.load(Ordering::SeqCst);
            if now == era {
                ctx.slot_eras[slot] = era;
                ctx.tracer.emit(Hook::Load, slot as u64, p as u64);
                return p;
            }
            era = now;
        }
    }

    /// HE aliases protection by copying the *source slot's reservation
    /// era* (which already covers the target node's lifetime up to now)
    /// into the destination slot — often a no-op when both slots already
    /// reserve the same era, and never a fence.
    fn protect_alias(&self, ctx: &mut HeCtx, dst_slot: usize, src_slot: usize, word: usize) {
        assert!(dst_slot < self.inner.k, "reservation slot out of range");
        debug_assert!(
            dst_slot > src_slot,
            "alias transfer must target a higher-indexed slot"
        );
        let era = ctx.slot_eras[src_slot];
        if ctx.slot_eras[dst_slot] == era {
            return;
        }
        ctx.slot_eras[dst_slot] = era;
        // SAFETY(ordering): Release store, no fence — the source slot
        // keeps the era reserved until its next Release publish, which
        // is sequenced after this store; an ascending-order scanner that
        // observes the source re-published synchronizes-with it and
        // sees this destination reservation.
        self.inner.reservations[ctx.idx * self.inner.k + dst_slot].store(era, Ordering::Release);
        ctx.tracer.emit(Hook::Load, dst_slot as u64, word as u64);
    }

    /// HE protection is era-based and established only by a completed
    /// publish-validate cycle — traversals must revalidate.
    fn requires_validation(&self) -> bool {
        true
    }

    fn init_header(&self, ctx: &mut HeCtx, header: &SmrHeader) {
        // SAFETY(ordering): SeqCst loads/RMWs here are off the
        // traversal hot path (one per allocation, advance once per
        // `era_frequency`); keeping them SeqCst anchors birth stamps in
        // the same total order the load validation reasons about.
        let e = self.inner.era.load(Ordering::SeqCst);
        header.birth_era.store(e, Ordering::SeqCst);
        ctx.allocs += 1;
        if ctx.allocs.is_multiple_of(self.inner.era_frequency) {
            let new = self.inner.era.fetch_add(1, Ordering::SeqCst) + 1;
            ctx.tracer.emit(Hook::Advance, new, 0);
        }
    }

    /// # Safety
    /// See [`Smr::retire`]: `ptr` must be unlinked, retired at most once,
    /// and `drop_fn` must be valid for it.
    unsafe fn retire(
        &self,
        ctx: &mut HeCtx,
        ptr: *mut u8,
        header: *const SmrHeader,
        drop_fn: DropFn,
    ) {
        let birth = if header.is_null() {
            0
        } else {
            // SAFETY: caller contract (`# Safety` above) — header outlives retire.
            unsafe { (*header).birth_era.load(Ordering::SeqCst) }
        };
        // SAFETY(ordering): SeqCst retire stamp (plain load on TSO) —
        // it must not be satisfied early: a reader whose validated era
        // equals the true retire era must have its era covered by the
        // recorded `[birth, retire]` interval.
        let retire_era = self.inner.era.load(Ordering::SeqCst);
        ctx.garbage.push(Retired {
            ptr,
            birth_era: birth,
            retire_era,
            drop_fn,
            retire_tick: self.inner.stats.stamp(),
        });
        let held = self.inner.stats.on_retire();
        ctx.tracer.emit(Hook::Retire, ptr as u64, held as u64);
        ctx.retires += 1;
        if ctx.retires.is_multiple_of(self.inner.era_frequency) {
            // SAFETY(ordering): SeqCst — the era bump pairs with the SeqCst
            // birth/retire-era stamps and readers' era publications: HE's
            // interval math needs one total order over era movement.
            let new = self.inner.era.fetch_add(1, Ordering::SeqCst) + 1;
            ctx.tracer.emit(Hook::Advance, new, 0);
        }
        if ctx.garbage.len() >= self.inner.scan_threshold {
            self.inner.scan(&mut ctx.garbage);
        }
    }

    fn stats(&self) -> SmrStats {
        self.inner
            .stats
            .snapshot(self.inner.era.load(Ordering::SeqCst))
    }

    fn flush(&self, ctx: &mut HeCtx) {
        self.inner.scan(&mut ctx.garbage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// # Safety
    /// `p` must be a leaked `Box<(SmrHeader, u64)>` nothing else reaches.
    unsafe fn free_node(p: *mut u8) {
        // SAFETY: contract above.
        unsafe { drop(Box::from_raw(p as *mut (SmrHeader, u64))) }
    }

    fn alloc_node(smr: &He, ctx: &mut HeCtx, v: u64) -> *mut (SmrHeader, u64) {
        let node = Box::into_raw(Box::new((SmrHeader::new(), v)));
        // SAFETY: node was just leaked and is still exclusively ours.
        smr.init_header(ctx, unsafe { &(*node).0 });
        node
    }

    #[test]
    fn era_advances_with_allocations() {
        let smr = He::with_params(1, 1, 64, 4);
        let mut ctx = smr.register().unwrap();
        let e0 = smr.era();
        let mut nodes = Vec::new();
        for i in 0..16 {
            nodes.push(alloc_node(&smr, &mut ctx, i));
        }
        assert!(smr.era() >= e0 + 4);
        for n in nodes {
            // SAFETY: nodes were never retired or shared; plain cleanup.
            unsafe { drop(Box::from_raw(n)) };
        }
    }

    #[test]
    fn reservation_protects_lifetime_overlap() {
        let smr = He::with_params(2, 1, 1, 1);
        let mut reader = smr.register().unwrap();
        let mut writer = smr.register().unwrap();

        let node = alloc_node(&smr, &mut writer, 7);
        let shared = AtomicUsize::new(node as usize);

        // Reader protects: publishes the current era.
        smr.begin_op(&mut reader);
        let p = smr.load(&mut reader, 0, &shared);
        assert_eq!(p, node as usize);

        // Writer unlinks + retires; node's lifetime covers the
        // reader's published era, so it must survive scans.
        // SAFETY(ordering): SeqCst unlink, matching the scheme's era order.
        shared.store(0, Ordering::SeqCst);
        // SAFETY: the store above unlinked node; retired exactly once.
        unsafe {
            smr.retire(&mut writer, node as *mut u8, &(*node).0, free_node);
        }
        smr.flush(&mut writer);
        assert_eq!(smr.stats().retired_now, 1);

        smr.end_op(&mut reader);
        smr.flush(&mut writer);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn nodes_born_after_reservation_are_reclaimable() {
        // The robustness property: a stalled reader pins only the
        // lifetimes overlapping its published era.
        let smr = He::with_params(2, 1, 1, 1);
        let mut stalled = smr.register().unwrap();
        let mut worker = smr.register().unwrap();

        let first = alloc_node(&smr, &mut worker, 0);
        let shared = AtomicUsize::new(first as usize);
        smr.begin_op(&mut stalled);
        let _ = smr.load(&mut stalled, 0, &shared); // publishes era E

        // Retire the first node (its lifetime covers E: pinned)…
        // SAFETY(ordering): SeqCst unlink, then a unique retire; churn nodes
        // below are unpublished and theirs alone.
        shared.store(0, Ordering::SeqCst);
        unsafe { smr.retire(&mut worker, first as *mut u8, &(*first).0, free_node) };
        // …then churn 100 nodes born strictly after E.
        for i in 1..=100u64 {
            let n = alloc_node(&smr, &mut worker, i);
            unsafe { smr.retire(&mut worker, n as *mut u8, &(*n).0, free_node) };
        }
        smr.flush(&mut worker);
        let st = smr.stats();
        assert_eq!(st.retired_now, 1, "only the era-E node is pinned: {st}");
        smr.end_op(&mut stalled);
        smr.flush(&mut worker);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn null_header_defaults_to_birth_zero() {
        let smr = He::with_params(1, 1, 1, 1);
        let mut ctx = smr.register().unwrap();
        let p = Box::into_raw(Box::new(1u64)) as *mut u8;
        /// # Safety
        /// `p` must be a leaked `Box<u64>` nothing else reaches.
        unsafe fn free_u64(p: *mut u8) {
            // SAFETY: contract above.
            unsafe { drop(Box::from_raw(p as *mut u64)) }
        }
        // SAFETY: p was just leaked; headerless retire is the case under test.
        unsafe { smr.retire(&mut ctx, p, std::ptr::null(), free_u64) };
        smr.flush(&mut ctx);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_stress() {
        let smr = He::new(8, 2);
        let shared = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (smr, shared) = (&smr, &shared);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for i in 0..1_000u64 {
                        smr.begin_op(&mut ctx);
                        let n = alloc_node(smr, &mut ctx, i);
                        // SAFETY(ordering): SeqCst swap is the unlink point and
                        // makes this thread old's unique retirer.
                        let old = shared.swap(n as usize, Ordering::SeqCst);
                        if old != 0 {
                            // SAFETY: we own `old` via the winning swap; the op
                            // is pinned so the header read is covered.
                            let hdr = unsafe { &(*(old as *mut (SmrHeader, u64))).0 };
                            unsafe { smr.retire(&mut ctx, old as *mut u8, hdr, free_node) };
                        }
                        smr.end_op(&mut ctx);
                    }
                    smr.flush(&mut ctx);
                });
            }
            for _ in 0..2 {
                let (smr, shared) = (&smr, &shared);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for _ in 0..1_000 {
                        smr.begin_op(&mut ctx);
                        let p = smr.load(&mut ctx, 0, shared);
                        if p != 0 {
                            // SAFETY: smr.load published our hazard era for p.
                            let v = unsafe { (*(p as *const (SmrHeader, u64))).1 };
                            assert!(v < 1_000);
                        }
                        smr.end_op(&mut ctx);
                    }
                });
            }
        });
        let last = shared.load(Ordering::SeqCst);
        if last != 0 {
            // SAFETY: workers joined; the final node is exclusively ours.
            unsafe { drop(Box::from_raw(last as *mut (SmrHeader, u64))) };
        }
    }
}
