//! # era-smr — safe memory reclamation schemes, from scratch
//!
//! Concurrent implementations of the reclamation schemes discussed in
//! *"The ERA Theorem for Safe Memory Reclamation"* (PODC 2023), built on
//! `std::sync::atomic` with no external dependencies:
//!
//! | Module | Scheme | ERA profile |
//! |---|---|---|
//! | [`ebr`] | Epoch-based reclamation (Fraser/Harris) | easy + widely applicable, **not** robust |
//! | [`hp`] | Hazard pointers (Michael) | easy + robust, **not** widely applicable |
//! | [`he`] | Hazard eras (Ramalhete & Correia) | easy + robust, **not** widely applicable |
//! | [`ibr`] | Interval-based reclamation (Wen et al., 2GE) | easy + weakly robust, **not** widely applicable |
//! | [`nbr`] | Neutralization-based reclamation (Singh et al.), cooperative variant | robust + widely applicable, **not** easy |
//! | [`qsbr`] | Quiescent-state-based reclamation (RCU-style) | widely applicable **only** (quiescent points are arbitrary-location insertions; stalls block reclamation) |
//! | [`vbr`] | Version-based reclamation (Sheffi et al.), arena variant | robust + widely applicable, **not** easy |
//! | [`leak`] | No reclamation (baseline) | easy + strongly applicable, unbounded footprint |
//!
//! All pointer-based schemes implement the [`Smr`] trait, whose surface
//! mirrors Definition 5.3's insertion points: `begin_op`/`end_op`
//! (operation boundaries), `load` (primitive replacement),
//! `init_header`/`retire` (alloc/retire replacements), plus the
//! *non-easy* hooks NBR needs (`enter_read_phase`, `needs_restart`,
//! `reserve`) — data structures that use the latter are, by
//! construction, doing a non-trivial integration.
//!
//! The marker trait [`SupportsUnlinkedTraversal`] statically encodes the
//! paper's applicability result: Harris's linked list (which traverses
//! marked, possibly retired chains) only accepts schemes carrying the
//! marker — EBR, NBR and the leaking baseline. HP/HE/IBR do not get it;
//! trying to use them with `era_ds::HarrisList` is a compile error,
//! which is Appendix E as a type error.
//!
//! VBR does not fit the pointer-based trait at all (it hands out
//! versioned arena handles instead of pointers); see [`vbr`].
//!
//! ## Example
//!
//! ```
//! use era_smr::{Smr, ebr::Ebr};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let smr = Ebr::new(8); // up to 8 threads
//! let mut ctx = smr.register().unwrap();
//! let shared = AtomicUsize::new(0);
//!
//! smr.begin_op(&mut ctx);
//! let boxed = Box::into_raw(Box::new(42u64)) as usize;
//! shared.store(boxed, Ordering::SeqCst);
//! let observed = smr.load(&mut ctx, 0, &shared);
//! assert_eq!(observed, boxed);
//! // Unlink, then hand the node to the scheme:
//! shared.store(0, Ordering::SeqCst);
//! unsafe fn free_u64(p: *mut u8) {
//!     unsafe { drop(Box::from_raw(p as *mut u64)) }
//! }
//! unsafe {
//!     smr.retire(&mut ctx, boxed as *mut u8, std::ptr::null(), free_u64);
//! }
//! smr.end_op(&mut ctx);
//! assert_eq!(smr.stats().total_retired, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod ebr;
pub mod he;
pub mod hp;
pub mod ibr;
pub mod leak;
pub mod nbr;
pub mod qsbr;
pub mod vbr;

pub use common::{
    CachePadded, EpochProtected, RegisterError, Smr, SmrHeader, SmrStats, SupportsUnlinkedTraversal,
};
