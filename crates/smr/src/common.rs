//! The common surface of pointer-based reclamation schemes.
//!
//! [`Smr`]'s methods map one-to-one onto the insertion points allowed by
//! Definition 5.3 (easy integration) plus the extra hooks that the
//! *non-easy* schemes (NBR) require:
//!
//! | Method | Def. 5.3 call site |
//! |---|---|
//! | [`Smr::begin_op`] / [`Smr::end_op`] | operation boundaries |
//! | [`Smr::load`] | primitive (read) replacement |
//! | [`Smr::init_header`] | alloc replacement |
//! | [`Smr::retire`] | retire replacement |
//! | [`Smr::enter_read_phase`], [`Smr::needs_restart`], [`Smr::reserve`], [`Smr::commit_reservations`] | **arbitrary** code locations — using them is what makes an integration non-easy |

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// The mutexes this guards (orphan queues, service tracers) protect
/// plain `Vec` / tracer state that is consistent between calls, so a
/// poisoned lock carries no torn invariant worth propagating. More
/// importantly, the scheme `Drop` paths run during *unwinding* when the
/// owning thread panicked mid-operation — an `unwrap()` there would
/// double-panic and abort, and would leak the context's registry slot.
pub(crate) fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Non-blocking variant of [`lock_unpoisoned`]: `None` only when the
/// lock is genuinely held by another thread right now. Used on scan
/// paths that opportunistically adopt orphaned garbage — if a peer is
/// already adopting, skipping this round costs nothing.
pub(crate) fn try_lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> Option<MutexGuard<'_, T>> {
    match m.try_lock() {
        Ok(g) => Some(g),
        Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        Err(std::sync::TryLockError::WouldBlock) => None,
    }
}

/// Pads and aligns `T` to 128 bytes so that per-thread slots land on
/// their own cache line(s) — the cure for false sharing on announcement
/// arrays, hazard slots, and shared counters, where one thread's store
/// would otherwise invalidate the line every *other* thread spins on.
///
/// 128 (not 64) covers the adjacent-line prefetcher on modern x86,
/// which pulls cache lines in pairs; the cost is memory, which is
/// negligible at per-thread-slot scale.
///
/// `Deref`/`DerefMut` make the wrapper transparent at use sites:
/// `padded_slot.load(…)` resolves through to the inner atomic.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line(s).
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// Reclamation-scheme-owned header embedded in every node.
///
/// Condition 5 of Definition 5.3 allows a scheme to *add* fields to the
/// node layout. This is that field: data structures embed one
/// `SmrHeader` per node and hand it to [`Smr::init_header`] right after
/// allocation and to [`Smr::retire`] on retirement. Epoch-free schemes
/// (EBR, HP, leak) ignore it; HE/IBR store the node's birth era in it.
#[derive(Debug, Default)]
#[repr(C)]
pub struct SmrHeader {
    /// Era/epoch at allocation (HE/IBR); unused otherwise.
    pub birth_era: AtomicU64,
}

impl SmrHeader {
    /// A fresh header (birth era 0).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Destructor for a retired node: must free exactly the allocation that
/// produced the pointer.
///
/// # Safety
/// Called at most once per retired pointer, only after the scheme has
/// proven no thread can still reach it.
pub type DropFn = unsafe fn(*mut u8);

/// A node awaiting reclamation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Retired {
    pub ptr: *mut u8,
    pub birth_era: u64,
    pub retire_era: u64,
    pub drop_fn: DropFn,
    /// Logical trace time of the retire call ([`StatCells::stamp`]);
    /// 0 when no recorder is attached. Basis of the retire→reclaim
    /// latency histogram.
    pub retire_tick: u64,
}

// SAFETY: retired nodes are plain data (ptr + metadata); the schemes
// guarantee exclusive access to the pointee by the eventual reclaimer.
unsafe impl Send for Retired {}

impl Retired {
    /// # Safety
    ///
    /// Caller promises `ptr` is exclusively owned garbage.
    pub unsafe fn free(self) {
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

/// Trace attachment of one scheme instance: the shared recorder plus a
/// *service* tracer (thread slot `u16::MAX`) for events produced on
/// scheme-internal paths that have no thread context at hand
/// (epoch-advance, blame, batched reclaim).
#[derive(Debug)]
struct TraceState {
    recorder: Recorder,
    scheme: SchemeId,
    service: Mutex<ThreadTracer>,
}

/// Shared footprint counters every scheme maintains — and, since they
/// sit on every retire/reclaim path already, the single choke point
/// where trace instrumentation hooks in. With no recorder attached
/// (the default) every trace branch is one `OnceLock` load that sees
/// `None`.
/// Invariant: `total_retired ≡ retired_now + total_reclaimed` (every
/// retire increments `retired_now`; every reclaim moves one unit from
/// `retired_now` to `total_reclaimed`), so the total is *derived* in
/// [`StatCells::snapshot`] rather than paid for with a third atomic RMW
/// on the retire hot path. The counters are cache-padded: they are the
/// only cross-thread-shared words on the retire/reclaim paths.
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub retired_now: CachePadded<AtomicUsize>,
    pub retired_peak: CachePadded<AtomicUsize>,
    pub total_reclaimed: CachePadded<AtomicU64>,
    trace: OnceLock<TraceState>,
}

impl StatCells {
    /// Attaches a trace recorder (first caller wins; later calls are
    /// ignored). Threads registered *after* this point get live
    /// tracers.
    pub fn attach(&self, recorder: &Recorder, scheme: SchemeId) {
        let _ = self.trace.set(TraceState {
            recorder: recorder.clone(),
            scheme,
            service: Mutex::new(recorder.tracer(u16::MAX, scheme)),
        });
    }

    /// A tracer for thread slot `thread` (disabled when no recorder is
    /// attached). Cold path: call at registration.
    pub fn tracer(&self, thread: usize) -> ThreadTracer {
        match self.trace.get() {
            Some(t) => t.recorder.tracer(thread as u16, t.scheme),
            None => ThreadTracer::disabled(),
        }
    }

    /// Current logical trace time for stamping retires (0 unattached —
    /// the attached clock never issues 0).
    #[inline]
    pub fn stamp(&self) -> u64 {
        match self.trace.get() {
            Some(t) => t.recorder.now(),
            None => 0,
        }
    }

    /// Emits a scheme-internal event through the service tracer.
    pub fn event(&self, hook: Hook, a: u64, b: u64) {
        if let Some(t) = self.trace.get() {
            lock_unpoisoned(&t.service).emit(hook, a, b);
        }
    }

    /// Records that reclamation is blocked on thread slot `blamed`
    /// (stalled-thread attribution), with `held` nodes waiting.
    pub fn blocked(&self, blamed: usize, held: usize) {
        if let Some(t) = self.trace.get() {
            t.recorder.metrics().blame(blamed);
            lock_unpoisoned(&t.service).emit(Hook::Blocked, blamed as u64, held as u64);
        }
    }

    /// Records that a live thread adopted `n` orphaned nodes from a
    /// dead context (population unchanged — the nodes were already
    /// retired; only their custody moved).
    pub fn adopted(&self, n: usize) {
        if n > 0 {
            if let Some(t) = self.trace.get() {
                let now = self.retired_now.load(Ordering::Relaxed);
                lock_unpoisoned(&t.service).emit(Hook::Adopt, n as u64, now as u64);
            }
        }
    }

    /// Counts a retire; returns the new retired population (handy as
    /// an event payload).
    pub fn on_retire(&self) -> usize {
        // SAFETY(ordering): Relaxed — monotonic telemetry counters; nothing
        // synchronizes through them and snapshots tolerate slight skew.
        let now = self.retired_now.fetch_add(1, Ordering::Relaxed) + 1;
        // Conditional peak update: in steady state (population cycling
        // below a past high-water mark) this is one relaxed load, not an
        // RMW. `fetch_max` settles races when the peak is moving.
        if now > self.retired_peak.load(Ordering::Relaxed) {
            // SAFETY(ordering): Relaxed — fetch_max settles racing peaks; the
            // peak is telemetry, not a synchronization point.
            self.retired_peak.fetch_max(now, Ordering::Relaxed);
        }
        if let Some(t) = self.trace.get() {
            t.recorder.metrics().footprint_peak.record(now as u64);
        }
        now
    }

    pub fn on_reclaim(&self, n: usize) {
        if n > 0 {
            // SAFETY(ordering): Relaxed — telemetry counters, as in on_retire.
            self.retired_now.fetch_sub(n, Ordering::Relaxed);
            self.total_reclaimed.fetch_add(n as u64, Ordering::Relaxed);
            // No batch event here: each node already produced its own
            // per-address `Hook::Reclaim` in `reclaim_node` (VBR, which
            // bypasses `reclaim_node`, emits its own).
        }
    }

    /// Frees one retired node, recording its retire→reclaim latency in
    /// the attached histogram. Callers still tally the batch through
    /// [`StatCells::on_reclaim`].
    ///
    /// # Safety
    ///
    /// Same contract as [`Retired::free`].
    pub unsafe fn reclaim_node(&self, node: Retired) {
        if let Some(t) = self.trace.get() {
            let mut latency = 0;
            if node.retire_tick != 0 {
                latency = t.recorder.now().saturating_sub(node.retire_tick);
                t.recorder.metrics().reclaim_latency.record(latency);
            }
            // Per-node Reclaim event (`a` = address, `b` = latency in
            // trace ticks) — the flight recorder's `era-view` pairs it
            // with the matching Retire event to reconstruct the
            // retire→reclaim (or retire→orphaned→adopt→reclaim) chain
            // for any node address.
            lock_unpoisoned(&t.service).emit(Hook::Reclaim, node.ptr as u64, latency);
        }
        unsafe { node.free() }
    }

    #[must_use = "a stats snapshot is pure observation; discarding it loses the measurement"]
    pub fn snapshot(&self, era: u64) -> SmrStats {
        let retired_now = self.retired_now.load(Ordering::Relaxed);
        let total_reclaimed = self.total_reclaimed.load(Ordering::Relaxed);
        SmrStats {
            retired_now,
            retired_peak: self.retired_peak.load(Ordering::Relaxed),
            // Derived (see the struct invariant): exact when quiescent,
            // transiently off by in-flight retires otherwise — same as
            // any multi-word counter snapshot.
            total_retired: retired_now as u64 + total_reclaimed,
            total_reclaimed,
            era,
        }
    }
}

/// A snapshot of a scheme's footprint counters — the raw material of
/// the §5.1 robustness measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmrStats {
    /// Nodes retired and not yet reclaimed, right now.
    pub retired_now: usize,
    /// High-water mark of `retired_now` over the scheme's lifetime —
    /// the footprint figure the §5.1 robustness bounds are stated
    /// about.
    pub retired_peak: usize,
    /// Total retire calls so far.
    pub total_retired: u64,
    /// Total nodes reclaimed so far.
    pub total_reclaimed: u64,
    /// Current global era/epoch (0 for schemes without one).
    pub era: u64,
}

impl SmrStats {
    /// Accumulates another domain's snapshot into this one — the
    /// aggregation used when a service shards work across several
    /// independent reclaimer domains (era-kv).
    ///
    /// Counts (`retired_now`, `total_retired`, `total_reclaimed`) sum
    /// exactly. `retired_peak` is the subtle one: the true service-level
    /// peak is the peak of the *sum* over time, which per-domain
    /// snapshots cannot reconstruct (each domain peaked at its own
    /// moment). We take the **sum of peaks**, which is always ≥ the
    /// peak of sums — a conservative upper bound, never an
    /// understatement of footprint. Summing would otherwise silently
    /// double-count nothing, but *reporting max-of-peaks* (the naive
    /// alternative) would undercount by up to a factor of the shard
    /// count. `era` takes the max, since domains advance independently.
    pub fn merge(&mut self, other: &SmrStats) {
        self.retired_now += other.retired_now;
        self.retired_peak += other.retired_peak;
        self.total_retired += other.total_retired;
        self.total_reclaimed += other.total_reclaimed;
        self.era = self.era.max(other.era);
    }
}

impl fmt::Display for SmrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retired_now={} retired_peak={} total_retired={} total_reclaimed={} era={}",
            self.retired_now, self.retired_peak, self.total_retired, self.total_reclaimed, self.era
        )
    }
}

/// Registration failed: every thread slot is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterError {
    /// The scheme's configured capacity.
    pub capacity: usize,
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all {} thread slots are in use", self.capacity)
    }
}

impl std::error::Error for RegisterError {}

/// A pointer-based safe memory reclamation scheme.
///
/// The per-thread state lives in [`Smr::ThreadCtx`]; every method takes
/// the scheme (`&self`, shared between threads) and the calling thread's
/// context (`&mut`). Contexts release their slot and hand leftover
/// garbage back to the scheme when dropped; the scheme frees all
/// remaining garbage when *it* is dropped (at that point no thread can
/// hold references).
///
/// # Safety contract of `retire`
///
/// `retire` is `unsafe`: the caller promises the node is unreachable
/// from every entry point, will not be retired again, and that `drop_fn`
/// frees exactly the allocation behind `ptr`. This mirrors the paper's
/// §4.1 assumption that the plain implementation issues correct
/// `retire()` calls.
pub trait Smr: Send + Sync {
    /// Per-thread state.
    type ThreadCtx: Send;

    /// Registers the calling thread.
    ///
    /// # Errors
    ///
    /// [`RegisterError`] when the configured thread capacity is
    /// exhausted (the schemes are *transparent* up to their capacity:
    /// threads may come and go, slots are recycled).
    fn register(&self) -> Result<Self::ThreadCtx, RegisterError>;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Attaches a trace [`Recorder`]: subsequent hook calls emit
    /// events and feed the recorder's metrics. Must be called *before*
    /// [`Smr::register`] for registering threads to receive tracers.
    /// The default is a no-op (tracing stays off).
    fn attach_recorder(&self, recorder: &Recorder) {
        let _ = recorder;
    }

    /// Called on entry to every data-structure operation.
    fn begin_op(&self, ctx: &mut Self::ThreadCtx);

    /// Called before every data-structure operation returns.
    fn end_op(&self, ctx: &mut Self::ThreadCtx);

    /// Protected load of the link word `src`, using protection slot
    /// `slot` where the scheme protects (HP/HE publish-and-validate;
    /// epoch schemes are plain loads).
    ///
    /// Link words may carry low-bit tags (Harris marks); protection
    /// applies to the untagged address.
    fn load(&self, ctx: &mut Self::ThreadCtx, slot: usize, src: &AtomicUsize) -> usize {
        let _ = (ctx, slot);
        // SAFETY(ordering): SeqCst — and it must stay SeqCst even though
        // Acquire would suffice for *initialization* visibility. The
        // epoch/era soundness argument for retire stamps is an SC chain:
        //   reader link load ≺_S unlink CAS ≺_S retire-stamp load,
        // which forces the stamp to be ≥ the epoch any concurrent reader
        // announced before loading this link. Downgrading this load to
        // Acquire removes the first ≺_S edge and lets a stamp land one
        // epoch early, shrinking the grace period below two epochs. On
        // x86-TSO a SeqCst load compiles to a plain MOV, so this costs
        // nothing over Acquire.
        src.load(Ordering::SeqCst)
    }

    /// Whether this scheme's [`Smr::load`] protects by
    /// *publish-and-validate* (HP/HE/IBR): the caller must re-validate
    /// link words after a protected load before trusting the protection
    /// (Michael's traversal discipline), and `load` may spin.
    ///
    /// Schemes protected by operation brackets alone (EBR/QSBR/leak/NBR)
    /// return `false`, and structures may elide their per-step
    /// re-validation when traversing under them — a validated link is
    /// only a *protection* requirement, never a linearizability one
    /// (every mutation is a CAS that re-checks its expected word). The
    /// default matches the default (plain) `load`.
    fn requires_validation(&self) -> bool {
        false
    }

    /// Re-publishes, into `dst_slot`, the protection already
    /// established for `word` in `src_slot` — without a new
    /// validate/fence round trip. The canonical use is a traversal
    /// rotating `curr` into its `prev` slot: the node is already
    /// protected, so the transfer is a plain release store (HP/HE) or a
    /// no-op (interval/epoch schemes).
    ///
    /// Contract (callers): `word` was returned by [`Smr::load`] into
    /// `src_slot` during the current operation and that protection has
    /// not since been released or overwritten; and `dst_slot >
    /// src_slot`. The slot-order requirement is what makes the plain
    /// release store sound: reclamation scans read slots in ascending
    /// index order, so a scan that misses the (about-to-be-overwritten)
    /// source slot reads the destination slot *later* and — because the
    /// overwriting store is itself a release store, ordered after this
    /// transfer — must observe the transferred protection.
    fn protect_alias(
        &self,
        ctx: &mut Self::ThreadCtx,
        dst_slot: usize,
        src_slot: usize,
        word: usize,
    ) {
        let _ = (ctx, dst_slot, src_slot, word);
    }

    /// Initializes the scheme header of a freshly allocated node.
    fn init_header(&self, ctx: &mut Self::ThreadCtx, header: &SmrHeader) {
        let _ = (ctx, header);
    }

    /// Hands an unreachable node to the scheme.
    ///
    /// `header` may be null for schemes that ignore it (EBR/HP/leak);
    /// HE/IBR read the birth era from it.
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    ///
    /// # Safety
    /// `ptr` must be unlinked from every shared location, retired at most
    /// once, and `drop_fn` must free exactly the allocation behind it.
    unsafe fn retire(
        &self,
        ctx: &mut Self::ThreadCtx,
        ptr: *mut u8,
        header: *const SmrHeader,
        drop_fn: DropFn,
    );

    /// NBR hook: the thread enters (or restarts) a read-only phase.
    fn enter_read_phase(&self, ctx: &mut Self::ThreadCtx) {
        let _ = ctx;
    }

    /// NBR hook: poll for neutralization. `true` means the thread must
    /// drop every pointer it collected in the current read phase and
    /// restart it. Easy-integrated schemes never request a restart.
    fn needs_restart(&self, ctx: &mut Self::ThreadCtx) -> bool {
        let _ = ctx;
        false
    }

    /// NBR hook: publish a reservation for the (untagged) node address
    /// `word` in reservation slot `slot` ahead of a write phase.
    fn reserve(&self, ctx: &mut Self::ThreadCtx, slot: usize, word: usize) {
        let _ = (ctx, slot, word);
    }

    /// NBR hook: after publishing reservations, verify no neutralization
    /// intervened; `false` means restart the read phase (reservations
    /// are void). Easy schemes return `true`.
    fn commit_reservations(&self, ctx: &mut Self::ThreadCtx) -> bool {
        let _ = ctx;
        true
    }

    /// NBR hook: drop all reservations (end of write phase).
    fn clear_reservations(&self, ctx: &mut Self::ThreadCtx) {
        let _ = ctx;
    }

    /// Robustness-recovery hook: forcibly release whatever protection
    /// thread slot `slot` currently holds, so reclamation blocked on
    /// that slot can proceed (cooperative neutralization, NBR-style —
    /// but driven *externally* by a watchdog rather than by a signal).
    ///
    /// Returns `true` when the scheme supports neutralization and the
    /// slot was registered; schemes without the capability (HP-family,
    /// leak) return `false` and the watchdog must degrade some other
    /// way. After a successful call, the victim's next
    /// [`Smr::needs_restart`] poll returns `true` exactly once.
    ///
    /// # Safety
    ///
    /// The caller promises the victim thread follows the restart
    /// protocol: between operations it polls [`Smr::needs_restart`]
    /// and, on `true`, discards every pointer collected in the current
    /// protected region before touching shared memory again. Pointers
    /// held across a neutralization are dangling — dereferencing one
    /// is the exact use-after-free the scheme normally prevents.
    unsafe fn neutralize(&self, slot: usize) -> bool {
        let _ = slot;
        false
    }

    /// Announces that the calling thread holds **no** references into
    /// any protected structure right now. A no-op for every scheme
    /// except QSBR, whose grace periods cannot end without it.
    ///
    /// This is deliberately *not* part of the Def. 5.3 easy-integration
    /// surface: only the application can know its threads are quiescent
    /// (a data structure calling this on its own would be unsound for
    /// callers that hold iterators). Service layers such as era-kv call
    /// it at their operation boundaries, where the facade guarantees
    /// values are copied out — that call-site knowledge is precisely
    /// the integration burden QSBR trades for its low overhead.
    fn quiescent_point(&self, ctx: &mut Self::ThreadCtx) {
        let _ = ctx;
    }

    /// Footprint counters.
    #[must_use = "stats() is pure observation; discarding the snapshot loses the measurement"]
    fn stats(&self) -> SmrStats;

    /// Eagerly attempt reclamation on this thread's garbage (useful in
    /// tests and shutdown paths; never required for correctness).
    fn flush(&self, ctx: &mut Self::ThreadCtx) {
        let _ = ctx;
    }
}

/// Marker: the scheme's `load` is safe even when traversing *retired*
/// (marked, unlinked) nodes — the capability Harris's linked list
/// requires and HP/HE/IBR famously lack (Appendix E).
///
/// # Safety
///
/// Implementors promise that any pointer obtained through `load` between
/// `begin_op`/`enter_read_phase` and the corresponding
/// `end_op`/restart remains dereferenceable even if the node it names
/// was retired before or during the traversal.
///
/// # Safety
/// Implementors promise exactly that reachability guarantee; a scheme
/// that frees a retired node while any op can still hold a pointer to it
/// must not implement this trait.
pub unsafe trait SupportsUnlinkedTraversal: Smr {}

/// Marker: `begin_op`/`end_op` alone protect *every* access in between —
/// no per-pointer reservations, no restart polling (epoch-style
/// schemes: EBR and the leaking baseline).
///
/// Structures with many simultaneously-held pointers (the skip list,
/// whose hazard-pointer count would grow with the tower height — the
/// §5.1 discussion) demand this; integrating a reservation-based scheme
/// there is exactly the "non-trivial integration" the paper describes.
///
/// # Safety
///
/// Implementors promise that between `begin_op` and `end_op`, no node
/// that was reachable at any point since `begin_op` is reclaimed.
///
/// # Safety
/// The promise above is load-bearing: structures deref unprotected raw
/// pointers anywhere inside an op on the strength of this bound.
pub unsafe trait EpochProtected: SupportsUnlinkedTraversal {}

/// Lock-free slot registry: fixed capacity, acquire/release by CAS.
/// Flags are cache-padded: `is_in_use` sits on every epoch-advance and
/// scan path, and must not false-share with neighbouring slots'
/// registration churn.
#[derive(Debug)]
pub(crate) struct SlotRegistry {
    in_use: Box<[CachePadded<std::sync::atomic::AtomicBool>]>,
}

impl SlotRegistry {
    pub fn new(capacity: usize) -> Self {
        let v: Vec<CachePadded<std::sync::atomic::AtomicBool>> = (0..capacity)
            .map(|_| CachePadded::new(std::sync::atomic::AtomicBool::new(false)))
            .collect();
        SlotRegistry {
            in_use: v.into_boxed_slice(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.in_use.len()
    }

    pub fn acquire(&self) -> Result<usize, RegisterError> {
        for (i, slot) in self.in_use.iter().enumerate() {
            // SAFETY(ordering): SeqCst — slot acquisition is the hand-off point
            // for the previous owner's teardown stores (cleared hazards,
            // QUIESCENT announcements): it must be ordered after them in the
            // same total order reclaimers scan in, and acquire/release alone
            // would not order it against scans of *other* slots.
            if slot
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(i);
            }
        }
        Err(RegisterError {
            capacity: self.in_use.len(),
        })
    }

    pub fn release(&self, idx: usize) {
        // SAFETY(ordering): SeqCst — pairs with the SeqCst acquire CAS above:
        // the release must come after this thread's teardown stores in the
        // scan order, or a re-acquirer could inherit live-looking state.
        self.in_use[idx].store(false, Ordering::SeqCst);
    }

    pub fn is_in_use(&self, idx: usize) -> bool {
        self.in_use[idx].load(Ordering::SeqCst)
    }
}

/// Strips low-bit tags (Harris marks) off a link word.
#[inline]
pub fn untagged(word: usize) -> usize {
    word & !0b11
}

/// Whether the link word carries the deletion mark.
#[inline]
pub fn is_marked(word: usize) -> bool {
    word & 0b1 == 0b1
}

/// Sets the deletion mark on a link word.
#[inline]
pub fn with_mark(word: usize) -> usize {
    word | 0b1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_helpers() {
        let p = 0x1000usize;
        assert!(!is_marked(p));
        let m = with_mark(p);
        assert!(is_marked(m));
        assert_eq!(untagged(m), p);
        assert_eq!(untagged(p), p);
    }

    #[test]
    fn cache_padded_is_transparent_and_padded() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        let c = CachePadded::new(AtomicU64::new(7));
        assert_eq!(c.load(Ordering::Relaxed), 7); // Deref into the atomic
                                                  // SAFETY(ordering): Relaxed — single-threaded Deref smoke test.
        c.store(9, Ordering::Relaxed);
        assert_eq!(c.into_inner().into_inner(), 9);
        let mut m = CachePadded::new(5u32);
        *m = 6;
        assert_eq!(*m, 6);
        assert_eq!(CachePadded::from(3u8).into_inner(), 3);
    }

    #[test]
    fn stat_cells_total_is_derived_from_the_invariant() {
        // total_retired ≡ retired_now + total_reclaimed at every
        // quiescent observation point.
        let s = StatCells::default();
        for _ in 0..5 {
            s.on_retire();
        }
        s.on_reclaim(3);
        let snap = s.snapshot(0);
        assert_eq!(snap.retired_now, 2);
        assert_eq!(snap.total_reclaimed, 3);
        assert_eq!(snap.total_retired, 5);
        assert_eq!(snap.retired_peak, 5);
    }

    #[test]
    fn slot_registry_acquire_release() {
        let r = SlotRegistry::new(2);
        assert_eq!(r.capacity(), 2);
        let a = r.acquire().unwrap();
        let b = r.acquire().unwrap();
        assert_ne!(a, b);
        assert!(r.acquire().is_err());
        assert!(r.is_in_use(a));
        r.release(a);
        assert!(!r.is_in_use(a));
        let c = r.acquire().unwrap();
        assert_eq!(c, a);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn slot_registry_concurrent_uniqueness() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let r = SlotRegistry::new(64);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let idx = r.acquire().unwrap();
                        assert!(
                            seen.lock().unwrap().insert(idx),
                            "slot {idx} double-acquired"
                        );
                        seen.lock().unwrap().remove(&idx);
                        r.release(idx);
                    }
                });
            }
        });
    }

    #[test]
    fn stat_cells_roundtrip() {
        let s = StatCells::default();
        s.on_retire();
        s.on_retire();
        s.on_reclaim(1);
        s.on_reclaim(0);
        let snap = s.snapshot(7);
        assert_eq!(snap.retired_now, 1);
        assert_eq!(snap.retired_peak, 2, "peak must survive reclamation");
        assert_eq!(snap.total_retired, 2);
        assert_eq!(snap.total_reclaimed, 1);
        assert_eq!(snap.era, 7);
        assert!(snap.to_string().contains("retired_now=1"));
        assert!(snap.to_string().contains("retired_peak=2"));
    }

    #[test]
    fn stat_cells_trace_attachment() {
        let s = StatCells::default();
        assert_eq!(s.stamp(), 0, "unattached stamp is the sentinel 0");
        assert!(!s.tracer(0).is_enabled());

        if !cfg!(feature = "trace") {
            return; // tracing compiled out: nothing further to observe
        }
        let recorder = Recorder::new(4);
        s.attach(&recorder, SchemeId::HP);
        assert!(s.tracer(0).is_enabled());
        assert!(s.stamp() > 0);
        s.on_retire();
        s.blocked(2, 1);
        // Reclaim through the per-node path: the event carries the
        // node address (era-view chain reconstruction relies on it).
        /// # Safety
        ///
        /// Takes any pointer and ignores it; nothing to uphold.
        unsafe fn no_free(_p: *mut u8) {}
        let target = Box::into_raw(Box::new(0u8));
        // SAFETY: `target` is exclusively owned garbage; `no_free`
        // ignores it, and we re-box it below to avoid the leak.
        unsafe {
            s.reclaim_node(Retired {
                ptr: target,
                birth_era: 0,
                retire_era: 0,
                drop_fn: no_free,
                retire_tick: s.stamp(),
            });
        }
        // SAFETY: `no_free` did not touch the allocation.
        drop(unsafe { Box::from_raw(target) });
        s.on_reclaim(1);
        assert_eq!(recorder.metrics().footprint_peak.get(), 1);
        assert_eq!(recorder.metrics().blame_counts()[2], 1);
        let log = recorder.drain();
        assert!(log.with_hook(Hook::Blocked).count() == 1);
        let reclaims: Vec<_> = log.with_hook(Hook::Reclaim).collect();
        assert_eq!(reclaims.len(), 1, "one per-node reclaim event");
        assert_eq!(reclaims[0].a, target as u64, "event names the address");

        // Second attach is ignored, not an error: retires still feed the
        // first recorder (population is back to 1 after the reclaim).
        s.attach(&Recorder::new(1), SchemeId::EBR);
        s.on_retire();
        assert_eq!(s.snapshot(0).total_retired, 2);
        assert_eq!(recorder.metrics().footprint_peak.get(), 1);
    }

    #[test]
    fn stats_merge_sums_counts_and_peaks() {
        let mut a = SmrStats {
            retired_now: 3,
            retired_peak: 10,
            total_retired: 100,
            total_reclaimed: 97,
            era: 5,
        };
        let b = SmrStats {
            retired_now: 1,
            retired_peak: 7,
            total_retired: 40,
            total_reclaimed: 39,
            era: 9,
        };
        a.merge(&b);
        assert_eq!(a.retired_now, 4);
        // Sum-of-peaks: the conservative (never-understating) bound for
        // independently-peaking domains.
        assert_eq!(a.retired_peak, 17);
        assert_eq!(a.total_retired, 140);
        assert_eq!(a.total_reclaimed, 136);
        assert_eq!(a.era, 9, "domains advance independently; report max");

        // Identity: merging a default changes nothing.
        let before = a;
        a.merge(&SmrStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn register_error_display() {
        let e = RegisterError { capacity: 4 };
        assert_eq!(e.to_string(), "all 4 thread slots are in use");
    }
}
