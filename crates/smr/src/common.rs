//! The common surface of pointer-based reclamation schemes.
//!
//! [`Smr`]'s methods map one-to-one onto the insertion points allowed by
//! Definition 5.3 (easy integration) plus the extra hooks that the
//! *non-easy* schemes (NBR) require:
//!
//! | Method | Def. 5.3 call site |
//! |---|---|
//! | [`Smr::begin_op`] / [`Smr::end_op`] | operation boundaries |
//! | [`Smr::load`] | primitive (read) replacement |
//! | [`Smr::init_header`] | alloc replacement |
//! | [`Smr::retire`] | retire replacement |
//! | [`Smr::enter_read_phase`], [`Smr::needs_restart`], [`Smr::reserve`], [`Smr::commit_reservations`] | **arbitrary** code locations — using them is what makes an integration non-easy |

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Reclamation-scheme-owned header embedded in every node.
///
/// Condition 5 of Definition 5.3 allows a scheme to *add* fields to the
/// node layout. This is that field: data structures embed one
/// `SmrHeader` per node and hand it to [`Smr::init_header`] right after
/// allocation and to [`Smr::retire`] on retirement. Epoch-free schemes
/// (EBR, HP, leak) ignore it; HE/IBR store the node's birth era in it.
#[derive(Debug, Default)]
#[repr(C)]
pub struct SmrHeader {
    /// Era/epoch at allocation (HE/IBR); unused otherwise.
    pub birth_era: AtomicU64,
}

impl SmrHeader {
    /// A fresh header (birth era 0).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Destructor for a retired node: must free exactly the allocation that
/// produced the pointer.
pub type DropFn = unsafe fn(*mut u8);

/// A node awaiting reclamation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Retired {
    pub ptr: *mut u8,
    pub birth_era: u64,
    pub retire_era: u64,
    pub drop_fn: DropFn,
}

// Retired nodes are plain data; the schemes guarantee exclusive access.
unsafe impl Send for Retired {}

impl Retired {
    /// # Safety
    ///
    /// Caller promises `ptr` is exclusively owned garbage.
    pub unsafe fn free(self) {
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

/// Shared footprint counters every scheme maintains.
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub retired_now: AtomicUsize,
    pub total_retired: AtomicU64,
    pub total_reclaimed: AtomicU64,
}

impl StatCells {
    pub fn on_retire(&self) {
        self.retired_now.fetch_add(1, Ordering::Relaxed);
        self.total_retired.fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_reclaim(&self, n: usize) {
        if n > 0 {
            self.retired_now.fetch_sub(n, Ordering::Relaxed);
            self.total_reclaimed.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self, era: u64) -> SmrStats {
        SmrStats {
            retired_now: self.retired_now.load(Ordering::Relaxed),
            total_retired: self.total_retired.load(Ordering::Relaxed),
            total_reclaimed: self.total_reclaimed.load(Ordering::Relaxed),
            era,
        }
    }
}

/// A snapshot of a scheme's footprint counters — the raw material of
/// the §5.1 robustness measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmrStats {
    /// Nodes retired and not yet reclaimed, right now.
    pub retired_now: usize,
    /// Total retire calls so far.
    pub total_retired: u64,
    /// Total nodes reclaimed so far.
    pub total_reclaimed: u64,
    /// Current global era/epoch (0 for schemes without one).
    pub era: u64,
}

impl fmt::Display for SmrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retired_now={} total_retired={} total_reclaimed={} era={}",
            self.retired_now, self.total_retired, self.total_reclaimed, self.era
        )
    }
}

/// Registration failed: every thread slot is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterError {
    /// The scheme's configured capacity.
    pub capacity: usize,
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all {} thread slots are in use", self.capacity)
    }
}

impl std::error::Error for RegisterError {}

/// A pointer-based safe memory reclamation scheme.
///
/// The per-thread state lives in [`Smr::ThreadCtx`]; every method takes
/// the scheme (`&self`, shared between threads) and the calling thread's
/// context (`&mut`). Contexts release their slot and hand leftover
/// garbage back to the scheme when dropped; the scheme frees all
/// remaining garbage when *it* is dropped (at that point no thread can
/// hold references).
///
/// # Safety contract of `retire`
///
/// `retire` is `unsafe`: the caller promises the node is unreachable
/// from every entry point, will not be retired again, and that `drop_fn`
/// frees exactly the allocation behind `ptr`. This mirrors the paper's
/// §4.1 assumption that the plain implementation issues correct
/// `retire()` calls.
pub trait Smr: Send + Sync {
    /// Per-thread state.
    type ThreadCtx: Send;

    /// Registers the calling thread.
    ///
    /// # Errors
    ///
    /// [`RegisterError`] when the configured thread capacity is
    /// exhausted (the schemes are *transparent* up to their capacity:
    /// threads may come and go, slots are recycled).
    fn register(&self) -> Result<Self::ThreadCtx, RegisterError>;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Called on entry to every data-structure operation.
    fn begin_op(&self, ctx: &mut Self::ThreadCtx);

    /// Called before every data-structure operation returns.
    fn end_op(&self, ctx: &mut Self::ThreadCtx);

    /// Protected load of the link word `src`, using protection slot
    /// `slot` where the scheme protects (HP/HE publish-and-validate;
    /// epoch schemes are plain loads).
    ///
    /// Link words may carry low-bit tags (Harris marks); protection
    /// applies to the untagged address.
    fn load(&self, ctx: &mut Self::ThreadCtx, slot: usize, src: &AtomicUsize) -> usize {
        let _ = (ctx, slot);
        src.load(Ordering::SeqCst)
    }

    /// Initializes the scheme header of a freshly allocated node.
    fn init_header(&self, ctx: &mut Self::ThreadCtx, header: &SmrHeader) {
        let _ = (ctx, header);
    }

    /// Hands an unreachable node to the scheme.
    ///
    /// `header` may be null for schemes that ignore it (EBR/HP/leak);
    /// HE/IBR read the birth era from it.
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn retire(
        &self,
        ctx: &mut Self::ThreadCtx,
        ptr: *mut u8,
        header: *const SmrHeader,
        drop_fn: DropFn,
    );

    /// NBR hook: the thread enters (or restarts) a read-only phase.
    fn enter_read_phase(&self, ctx: &mut Self::ThreadCtx) {
        let _ = ctx;
    }

    /// NBR hook: poll for neutralization. `true` means the thread must
    /// drop every pointer it collected in the current read phase and
    /// restart it. Easy-integrated schemes never request a restart.
    fn needs_restart(&self, ctx: &mut Self::ThreadCtx) -> bool {
        let _ = ctx;
        false
    }

    /// NBR hook: publish a reservation for the (untagged) node address
    /// `word` in reservation slot `slot` ahead of a write phase.
    fn reserve(&self, ctx: &mut Self::ThreadCtx, slot: usize, word: usize) {
        let _ = (ctx, slot, word);
    }

    /// NBR hook: after publishing reservations, verify no neutralization
    /// intervened; `false` means restart the read phase (reservations
    /// are void). Easy schemes return `true`.
    fn commit_reservations(&self, ctx: &mut Self::ThreadCtx) -> bool {
        let _ = ctx;
        true
    }

    /// NBR hook: drop all reservations (end of write phase).
    fn clear_reservations(&self, ctx: &mut Self::ThreadCtx) {
        let _ = ctx;
    }

    /// Footprint counters.
    fn stats(&self) -> SmrStats;

    /// Eagerly attempt reclamation on this thread's garbage (useful in
    /// tests and shutdown paths; never required for correctness).
    fn flush(&self, ctx: &mut Self::ThreadCtx) {
        let _ = ctx;
    }
}

/// Marker: the scheme's `load` is safe even when traversing *retired*
/// (marked, unlinked) nodes — the capability Harris's linked list
/// requires and HP/HE/IBR famously lack (Appendix E).
///
/// # Safety
///
/// Implementors promise that any pointer obtained through `load` between
/// `begin_op`/`enter_read_phase` and the corresponding
/// `end_op`/restart remains dereferenceable even if the node it names
/// was retired before or during the traversal.
pub unsafe trait SupportsUnlinkedTraversal: Smr {}

/// Marker: `begin_op`/`end_op` alone protect *every* access in between —
/// no per-pointer reservations, no restart polling (epoch-style
/// schemes: EBR and the leaking baseline).
///
/// Structures with many simultaneously-held pointers (the skip list,
/// whose hazard-pointer count would grow with the tower height — the
/// §5.1 discussion) demand this; integrating a reservation-based scheme
/// there is exactly the "non-trivial integration" the paper describes.
///
/// # Safety
///
/// Implementors promise that between `begin_op` and `end_op`, no node
/// that was reachable at any point since `begin_op` is reclaimed.
pub unsafe trait EpochProtected: SupportsUnlinkedTraversal {}

/// Lock-free slot registry: fixed capacity, acquire/release by CAS.
#[derive(Debug)]
pub(crate) struct SlotRegistry {
    in_use: Box<[std::sync::atomic::AtomicBool]>,
}

impl SlotRegistry {
    pub fn new(capacity: usize) -> Self {
        let v: Vec<std::sync::atomic::AtomicBool> =
            (0..capacity).map(|_| std::sync::atomic::AtomicBool::new(false)).collect();
        SlotRegistry { in_use: v.into_boxed_slice() }
    }

    pub fn capacity(&self) -> usize {
        self.in_use.len()
    }

    pub fn acquire(&self) -> Result<usize, RegisterError> {
        for (i, slot) in self.in_use.iter().enumerate() {
            if slot
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(i);
            }
        }
        Err(RegisterError { capacity: self.in_use.len() })
    }

    pub fn release(&self, idx: usize) {
        self.in_use[idx].store(false, Ordering::SeqCst);
    }

    pub fn is_in_use(&self, idx: usize) -> bool {
        self.in_use[idx].load(Ordering::SeqCst)
    }
}

/// Strips low-bit tags (Harris marks) off a link word.
#[inline]
pub fn untagged(word: usize) -> usize {
    word & !0b11
}

/// Whether the link word carries the deletion mark.
#[inline]
pub fn is_marked(word: usize) -> bool {
    word & 0b1 == 0b1
}

/// Sets the deletion mark on a link word.
#[inline]
pub fn with_mark(word: usize) -> usize {
    word | 0b1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_helpers() {
        let p = 0x1000usize;
        assert!(!is_marked(p));
        let m = with_mark(p);
        assert!(is_marked(m));
        assert_eq!(untagged(m), p);
        assert_eq!(untagged(p), p);
    }

    #[test]
    fn slot_registry_acquire_release() {
        let r = SlotRegistry::new(2);
        assert_eq!(r.capacity(), 2);
        let a = r.acquire().unwrap();
        let b = r.acquire().unwrap();
        assert_ne!(a, b);
        assert!(r.acquire().is_err());
        assert!(r.is_in_use(a));
        r.release(a);
        assert!(!r.is_in_use(a));
        let c = r.acquire().unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn slot_registry_concurrent_uniqueness() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let r = SlotRegistry::new(64);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let idx = r.acquire().unwrap();
                        assert!(seen.lock().unwrap().insert(idx), "slot {idx} double-acquired");
                        seen.lock().unwrap().remove(&idx);
                        r.release(idx);
                    }
                });
            }
        });
    }

    #[test]
    fn stat_cells_roundtrip() {
        let s = StatCells::default();
        s.on_retire();
        s.on_retire();
        s.on_reclaim(1);
        s.on_reclaim(0);
        let snap = s.snapshot(7);
        assert_eq!(snap.retired_now, 1);
        assert_eq!(snap.total_retired, 2);
        assert_eq!(snap.total_reclaimed, 1);
        assert_eq!(snap.era, 7);
        assert!(snap.to_string().contains("retired_now=1"));
    }

    #[test]
    fn register_error_display() {
        let e = RegisterError { capacity: 4 };
        assert_eq!(e.to_string(), "all 4 thread slots are in use");
    }
}
