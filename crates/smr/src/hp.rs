//! Hazard pointers (HP) — Michael [32].
//!
//! Each thread owns `k` single-writer *hazard* slots. A protected load
//! publishes the target address in a slot and re-reads the source word;
//! if it changed, the protection may have raced a concurrent unlink and
//! the load retries. Retired nodes pile up in a small per-thread list;
//! when it exceeds a threshold the thread *scans* all hazard slots and
//! frees exactly the retired nodes no slot names.
//!
//! HP is the canonical **easy + robust** scheme: the retired population
//! is bounded by `threshold + capacity·k` regardless of stalls, but the
//! protect-validate discipline cannot follow a chain of *marked,
//! unlinked* nodes (a validated source pointer does not imply the
//! referenced node is reachable), so HP is **not applicable to Harris's
//! linked list** (Appendix E) — accordingly, `Hp` does *not* implement
//! [`SupportsUnlinkedTraversal`](crate::common::SupportsUnlinkedTraversal).

// ERA-CLASS: HP robust — per-slot hazards cap trapped memory at
// R + T·k no matter how long any reader stalls (Def. 4.2).

use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};

use crate::common::{
    lock_unpoisoned, try_lock_unpoisoned, untagged, CachePadded, DropFn, RegisterError, Retired,
    SlotRegistry, Smr, SmrHeader, SmrStats, StatCells,
};

#[derive(Debug)]
struct HpInner {
    /// `capacity × k` hazard slots; 0 = empty. Each slot is line-padded:
    /// a slot is written on every protected load by its single owner and
    /// read by every scanner — adjacent packed slots would false-share.
    hazards: Box<[CachePadded<AtomicUsize>]>,
    k: usize,
    registry: SlotRegistry,
    stats: StatCells,
    orphans: Mutex<Vec<Retired>>,
    scan_threshold: usize,
}

impl HpInner {
    /// Snapshot of the published hazards as a sorted `(address, owner)`
    /// list. Sorting once turns the per-retired-node membership test
    /// into a binary search: a scan costs `O((R + T·k)·log(T·k))`
    /// instead of the hash-map build + per-node probes it replaces.
    fn hazard_snapshot(&self) -> Vec<(usize, usize)> {
        // SAFETY(ordering) PAIRS(hp-hazard-dekker): the SeqCst fence
        // pairs with the fence in
        // `load` (protect-validate Dekker): the caller's unlinks are
        // ordered before this scan's hazard reads, so for any retired
        // node either its reader's validation already failed (it will
        // retry and re-publish) or the hazard is visible to this scan.
        // The slot loads are performed in ascending index order — the
        // `protect_alias` transfer argument relies on it (the source
        // slot's overwrite is a Release store sequenced after the
        // higher-indexed destination's store, so a scanner that sees
        // the source overwritten synchronizes-with it and must see the
        // destination).
        fence(Ordering::SeqCst);
        let mut snap = Vec::with_capacity(self.hazards.len());
        for (i, h) in self.hazards.iter().enumerate() {
            let v = h.load(Ordering::SeqCst);
            if v != 0 {
                snap.push((v, i / self.k));
            }
        }
        snap.sort_unstable();
        snap
    }

    /// Adopts orphaned garbage left behind by dead contexts into the
    /// scanning thread's list, so the hazard scan that follows frees
    /// whatever is unprotected instead of parking it until scheme drop.
    /// `try_lock`: if a peer is adopting concurrently the pool is in
    /// good hands and this round skips — adoption is a cold-path
    /// recovery duty, not a hot-path obligation.
    fn adopt_orphans(&self, garbage: &mut Vec<Retired>) {
        if let Some(mut orphans) = try_lock_unpoisoned(&self.orphans) {
            let n = orphans.len();
            if n > 0 {
                garbage.append(&mut orphans);
                drop(orphans);
                self.stats.adopted(n);
            }
        }
    }

    /// Frees every retired node not named by a hazard slot.
    fn scan(&self, garbage: &mut Vec<Retired>) {
        self.adopt_orphans(garbage);
        let hazards = self.hazard_snapshot();
        let before = garbage.len();
        let mut kept = Vec::with_capacity(hazards.len().min(before));
        for g in garbage.drain(..) {
            match hazards.binary_search_by(|&(a, _)| a.cmp(&(g.ptr as usize))) {
                Ok(i) => {
                    // Reclamation of this node is blocked by the owner's
                    // published hazard — HP's robustness means the blame
                    // list is also the bound on what survives.
                    self.stats.blocked(hazards[i].1, 1);
                    kept.push(g);
                }
                // SAFETY: no hazard slot holds g's address — after the SeqCst
                // scan, no reader can reach it (Michael's HP invariant).
                Err(_) => unsafe { self.stats.reclaim_node(g) },
            }
        }
        self.stats.on_reclaim(before - kept.len());
        *garbage = kept;
    }
}

impl Drop for HpInner {
    fn drop(&mut self) {
        let orphans = std::mem::take(&mut *lock_unpoisoned(&self.orphans));
        let n = orphans.len();
        for g in orphans {
            // SAFETY: orphans already survived a hazard scan after their owner
            // departed; nothing can reach them.
            unsafe { self.stats.reclaim_node(g) };
        }
        self.stats.on_reclaim(n);
    }
}

/// Hazard-pointer reclamation.
///
/// # Example
///
/// ```
/// use era_smr::{hp::Hp, Smr};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let smr = Hp::new(4, 3); // 4 threads × 3 hazard slots
/// let mut ctx = smr.register().unwrap();
/// let node = Box::into_raw(Box::new(5u64)) as usize;
/// let shared = AtomicUsize::new(node);
/// smr.begin_op(&mut ctx);
/// let p = smr.load(&mut ctx, 0, &shared); // protected
/// assert_eq!(p, node);
/// smr.end_op(&mut ctx);
/// # unsafe { drop(Box::from_raw(node as *mut u64)) };
/// ```
#[derive(Debug, Clone)]
pub struct Hp {
    inner: Arc<HpInner>,
}

/// Per-thread context for [`Hp`].
#[derive(Debug)]
#[must_use = "dropping a context releases its slot and orphans its unflushed garbage"]
pub struct HpCtx {
    inner: Arc<HpInner>,
    idx: usize,
    tracer: ThreadTracer,
    garbage: Vec<Retired>,
}

impl Drop for HpCtx {
    fn drop(&mut self) {
        for s in 0..self.inner.k {
            // SAFETY(ordering): Release — same argument as `end_op`.
            self.inner.hazards[self.idx * self.inner.k + s].store(0, Ordering::Release);
        }
        // Runs during unwinding too: poison-tolerant handoff, then an
        // unconditional slot release (see the EBR drop path).
        lock_unpoisoned(&self.inner.orphans).append(&mut self.garbage);
        self.inner.registry.release(self.idx);
    }
}

impl Hp {
    /// Default retired-list length triggering a scan.
    pub const DEFAULT_SCAN_THRESHOLD: usize = 64;

    /// Creates an HP instance: `max_threads` threads, `k` hazard slots
    /// each.
    pub fn new(max_threads: usize, k: usize) -> Self {
        Self::with_threshold(max_threads, k, Self::DEFAULT_SCAN_THRESHOLD)
    }

    /// Creates an HP instance with a custom scan threshold.
    pub fn with_threshold(max_threads: usize, k: usize, scan_threshold: usize) -> Self {
        assert!(k >= 1, "at least one hazard slot per thread");
        let hazards: Vec<CachePadded<AtomicUsize>> = (0..max_threads * k)
            .map(|_| CachePadded::new(AtomicUsize::new(0)))
            .collect();
        Hp {
            inner: Arc::new(HpInner {
                hazards: hazards.into_boxed_slice(),
                k,
                registry: SlotRegistry::new(max_threads),
                stats: StatCells::default(),
                orphans: Mutex::new(Vec::new()),
                scan_threshold: scan_threshold.max(1),
            }),
        }
    }

    /// Hazard slots per thread.
    pub fn slots_per_thread(&self) -> usize {
        self.inner.k
    }

    /// The worst-case retired-population bound: `threshold` per thread
    /// plus one node per hazard slot.
    pub fn robustness_bound(&self) -> usize {
        self.inner.scan_threshold * self.inner.registry.capacity() + self.inner.hazards.len()
    }
}

impl Smr for Hp {
    type ThreadCtx = HpCtx;

    fn register(&self) -> Result<HpCtx, RegisterError> {
        let idx = self.inner.registry.acquire()?;
        for s in 0..self.inner.k {
            // SAFETY(ordering): registration is cold; SeqCst keeps the
            // slot reset visible before any scan considers this thread.
            self.inner.hazards[idx * self.inner.k + s].store(0, Ordering::SeqCst);
        }
        Ok(HpCtx {
            inner: Arc::clone(&self.inner),
            idx,
            tracer: self.inner.stats.tracer(idx),
            garbage: Vec::new(),
        })
    }

    fn name(&self) -> &'static str {
        "HP"
    }

    fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.stats.attach(recorder, SchemeId::HP);
    }

    fn begin_op(&self, ctx: &mut HpCtx) {
        ctx.tracer.emit(Hook::BeginOp, 0, 0);
    }

    fn end_op(&self, ctx: &mut HpCtx) {
        for s in 0..self.inner.k {
            // SAFETY(ordering): Release (a plain store on x86, vs the
            // XCHG the old SeqCst store compiled to) orders every
            // dereference the operation made before the clear becomes
            // visible; a scanner's fence + slot load then observes
            // either the standing protection or the completed op.
            self.inner.hazards[ctx.idx * self.inner.k + s].store(0, Ordering::Release);
        }
        ctx.tracer.emit(Hook::EndOp, 0, 0);
    }

    fn load(&self, ctx: &mut HpCtx, slot: usize, src: &AtomicUsize) -> usize {
        assert!(slot < self.inner.k, "hazard slot out of range");
        let cell = &self.inner.hazards[ctx.idx * self.inner.k + slot];
        let mut cur = src.load(Ordering::SeqCst);
        loop {
            // SAFETY(ordering) PAIRS(hp-hazard-dekker): Release store +
            // SeqCst fence replaces
            // the old SeqCst store. The fence is the StoreLoad barrier
            // of the protect-validate Dekker (pairs with the fence in
            // `hazard_snapshot`): the publish is globally visible
            // before the validating re-read, so a scan either sees the
            // hazard or the unlink it raced is seen by the re-read and
            // we retry. Release (not Relaxed) additionally keeps this
            // store ordered after any earlier `protect_alias` transfer
            // out of this slot — scanners rely on that ordering.
            // SAFETY(ordering): Release store + the SeqCst fence below pair
            // with the scanner's SeqCst hazard read in `scan_and_reclaim`:
            // publish-then-revalidate must be totally ordered against
            // unlink-then-scan (classic HP store/load SC requirement).
            cell.store(untagged(cur), Ordering::Release);
            fence(Ordering::SeqCst);
            // SAFETY(ordering): SeqCst validating load (plain load on
            // TSO) — also anchors readers in the SeqCst total order the
            // retire-side reasoning uses.
            let again = src.load(Ordering::SeqCst);
            if again == cur {
                ctx.tracer.emit(Hook::Load, slot as u64, cur as u64);
                return cur;
            }
            cur = again;
        }
    }

    /// HP transfers protection between a thread's own slots without a
    /// validate cycle: the destination inherits the *established*
    /// protection of the source, so no fence and no re-read are needed.
    /// See [`Smr::protect_alias`] for the contract (in particular
    /// `dst_slot > src_slot`, which the ascending-index scan order in
    /// [`HpInner::hazard_snapshot`] turns into a visibility guarantee).
    fn protect_alias(&self, ctx: &mut HpCtx, dst_slot: usize, src_slot: usize, word: usize) {
        assert!(dst_slot < self.inner.k, "hazard slot out of range");
        debug_assert!(
            dst_slot > src_slot,
            "alias transfer must target a higher-indexed slot"
        );
        // SAFETY(ordering): Release store, no fence. Protection is
        // continuous: the source slot keeps naming `word` until its
        // next (Release) publish, which is sequenced after this store —
        // an ascending-order scanner that finds the source overwritten
        // synchronizes-with that overwrite and therefore sees `word`
        // already parked in the higher-indexed destination.
        self.inner.hazards[ctx.idx * self.inner.k + dst_slot]
            .store(untagged(word), Ordering::Release);
        ctx.tracer.emit(Hook::Load, dst_slot as u64, word as u64);
    }

    /// HP's protection is per-pointer, established only by a completed
    /// protect-validate cycle — traversals must revalidate.
    fn requires_validation(&self) -> bool {
        true
    }

    /// # Safety
    /// See [`Smr::retire`]: `ptr` must be unlinked, retired at most once,
    /// and `drop_fn` must be valid for it.
    unsafe fn retire(
        &self,
        ctx: &mut HpCtx,
        ptr: *mut u8,
        _header: *const SmrHeader,
        drop_fn: DropFn,
    ) {
        ctx.garbage.push(Retired {
            ptr,
            birth_era: 0,
            retire_era: 0,
            drop_fn,
            retire_tick: self.inner.stats.stamp(),
        });
        let held = self.inner.stats.on_retire();
        ctx.tracer.emit(Hook::Retire, ptr as u64, held as u64);
        if ctx.garbage.len() >= self.inner.scan_threshold {
            self.inner.scan(&mut ctx.garbage);
        }
    }

    fn stats(&self) -> SmrStats {
        self.inner.stats.snapshot(0)
    }

    fn flush(&self, ctx: &mut HpCtx) {
        self.inner.scan(&mut ctx.garbage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// # Safety
    /// `p` must be a leaked `Box<u64>` that nothing else can reach.
    unsafe fn free_u64(p: *mut u8) {
        // SAFETY: contract above.
        unsafe { drop(Box::from_raw(p as *mut u64)) }
    }

    fn new_node(v: u64) -> usize {
        Box::into_raw(Box::new(v)) as usize
    }

    #[test]
    fn protected_node_survives_scan() {
        let smr = Hp::with_threshold(2, 2, 1);
        let mut reader = smr.register().unwrap();
        let mut writer = smr.register().unwrap();

        let node = new_node(42);
        let shared = AtomicUsize::new(node);

        smr.begin_op(&mut reader);
        let p = smr.load(&mut reader, 0, &shared);
        assert_eq!(p, node);

        // Writer unlinks and retires; scans cannot free it (protected).
        // SAFETY(ordering): SeqCst unlink — same order the scheme's scan uses.
        shared.store(0, Ordering::SeqCst);
        // SAFETY: the store unlinked node; this is its unique retire.
        unsafe { smr.retire(&mut writer, node as *mut u8, std::ptr::null(), free_u64) };
        smr.flush(&mut writer);
        assert_eq!(smr.stats().retired_now, 1, "still protected");

        // Reader drops protection: now it goes.
        smr.end_op(&mut reader);
        smr.flush(&mut writer);
        assert_eq!(smr.stats().retired_now, 0);
        assert_eq!(smr.stats().total_reclaimed, 1);
    }

    #[test]
    fn bounded_footprint_under_stall() {
        // A stalled reader protects at most k nodes; everything else is
        // reclaimed — HP's robustness (contrast with EBR's test).
        let smr = Hp::with_threshold(2, 3, 4);
        let mut stalled = smr.register().unwrap();
        let shared = AtomicUsize::new(new_node(0));
        smr.begin_op(&mut stalled);
        let pinned = smr.load(&mut stalled, 0, &shared);
        // stalled never calls end_op

        let mut worker = smr.register().unwrap();
        // Unlink the pinned node and retire it.
        // SAFETY(ordering): SeqCst unlink; churn nodes below are unpublished,
        // each leaked Box retired exactly once.
        shared.store(0, Ordering::SeqCst);
        unsafe { smr.retire(&mut worker, pinned as *mut u8, std::ptr::null(), free_u64) };
        // Churn 1000 more nodes through.
        for i in 1..=1000u64 {
            let n = new_node(i);
            unsafe { smr.retire(&mut worker, n as *mut u8, std::ptr::null(), free_u64) };
        }
        smr.flush(&mut worker);
        let st = smr.stats();
        assert!(
            st.retired_now <= smr.robustness_bound(),
            "retired {} exceeds bound {}",
            st.retired_now,
            smr.robustness_bound()
        );
        assert_eq!(st.retired_now, 1, "only the pinned node survives");
        smr.end_op(&mut stalled);
        smr.flush(&mut worker);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn load_retries_on_concurrent_change() {
        // Single-threaded simulation of the validation path: the loop in
        // load() re-reads until stable, so a load from a stable word
        // returns it unchanged even with a tag.
        let smr = Hp::new(1, 1);
        let mut ctx = smr.register().unwrap();
        let node = new_node(1);
        let tagged = node | 1;
        let shared = AtomicUsize::new(tagged);
        let p = smr.load(&mut ctx, 0, &shared);
        assert_eq!(p, tagged, "tag preserved");
        // The hazard slot holds the *untagged* address.
        assert_eq!(
            smr.inner.hazards[0].load(Ordering::SeqCst),
            node,
            "hazard must strip tags"
        );
        // SAFETY: node was never retired; test owns it exclusively.
        unsafe { drop(Box::from_raw(node as *mut u64)) };
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_stress_no_double_free() {
        // 4 threads hammer one shared slot: replace the node, retire the
        // old one, while readers keep protected loads on it.
        let smr = Hp::with_threshold(8, 1, 8);
        let shared = AtomicUsize::new(new_node(0));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let smr = &smr;
                let shared = &shared;
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for i in 0..2_000u64 {
                        smr.begin_op(&mut ctx);
                        // SAFETY(ordering): SeqCst swap = unlink point, making
                        // this thread old's unique retirer.
                        let old = shared.swap(new_node(i), Ordering::SeqCst);
                        // SAFETY: old came out of the winning swap.
                        unsafe { smr.retire(&mut ctx, old as *mut u8, std::ptr::null(), free_u64) };
                        smr.end_op(&mut ctx);
                    }
                    smr.flush(&mut ctx);
                });
            }
            for _ in 0..2 {
                let smr = &smr;
                let shared = &shared;
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for _ in 0..2_000 {
                        smr.begin_op(&mut ctx);
                        let p = smr.load(&mut ctx, 0, shared);
                        // Dereference under protection: must not crash.
                        // SAFETY: smr.load validated the hazard for p.
                        let v = unsafe { *(p as *const u64) };
                        assert!(v < 2_000);
                        smr.end_op(&mut ctx);
                    }
                });
            }
        });
        // Free the final node.
        let last = shared.load(Ordering::SeqCst);
        // SAFETY: workers joined; last is exclusively ours.
        unsafe { drop(Box::from_raw(last as *mut u64)) };
        let st = smr.stats();
        assert_eq!(st.total_retired, 4_000);
    }

    #[test]
    fn registration_reuses_slots_and_clears_hazards() {
        let smr = Hp::new(1, 2);
        let mut c1 = smr.register().unwrap();
        let node = new_node(9);
        let shared = AtomicUsize::new(node);
        let _ = smr.load(&mut c1, 1, &shared);
        drop(c1); // must clear hazards
        let c2 = smr.register().unwrap();
        assert_eq!(smr.inner.hazards[1].load(Ordering::SeqCst), 0);
        drop(c2);
        // SAFETY: node was never retired; test owns it exclusively.
        unsafe { drop(Box::from_raw(node as *mut u64)) };
    }

    #[test]
    #[should_panic(expected = "hazard slot out of range")]
    fn out_of_range_slot_panics() {
        let smr = Hp::new(1, 1);
        let mut ctx = smr.register().unwrap();
        let shared = AtomicUsize::new(0);
        let _ = smr.load(&mut ctx, 1, &shared);
    }
}
