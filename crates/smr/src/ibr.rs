//! Interval-based reclamation (IBR) — Wen et al. [45], the 2GE
//! (two-global-epoch, tagged) variant.
//!
//! Each thread reserves an *interval* of eras `[lower, upper]` instead
//! of one era per pointer: `begin_op` sets both bounds to the current
//! era; every protected load extends `upper` to the current era and
//! validates. A retired node is freed when its `[birth, retire]`
//! lifetime intersects no reserved interval.
//!
//! IBR is easy to integrate (one reservation per thread, no per-pointer
//! bookkeeping) and **weakly robust**: a stalled thread pins every node
//! whose lifetime intersects its reserved interval, which is bounded by
//! the number of nodes live during those eras (linear in
//! `max_active · N`) plus the bounded allocations per era — Definition
//! 5.2 but not 5.1 in adversarial executions. Like HP/HE it cannot
//! traverse retired chains, so no
//! [`SupportsUnlinkedTraversal`](crate::common::SupportsUnlinkedTraversal).

// ERA-CLASS: IBR robust — interval reservations keep trapped memory
// proportional to the nodes whose lifetimes overlap in-flight
// intervals, however long a reader stalls (Def. 4.2).

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};

use crate::common::{
    lock_unpoisoned, try_lock_unpoisoned, CachePadded, DropFn, RegisterError, Retired,
    SlotRegistry, Smr, SmrHeader, SmrStats, StatCells,
};

/// Interval bound meaning "no reservation".
const NONE: u64 = u64::MAX;

/// One thread's reserved era interval. Both bounds share a padded line:
/// they are always written together by the single owning thread.
#[derive(Debug)]
struct Interval {
    lower: AtomicU64,
    upper: AtomicU64,
}

#[derive(Debug)]
struct IbrInner {
    era: CachePadded<AtomicU64>,
    /// Per-thread interval reservations, one padded line per thread.
    intervals: Box<[CachePadded<Interval>]>,
    registry: SlotRegistry,
    stats: StatCells,
    orphans: Mutex<Vec<Retired>>,
    scan_threshold: usize,
    era_frequency: u64,
}

impl IbrInner {
    /// Adopts orphaned garbage from dead contexts (see the HP variant):
    /// the interval-intersection test applies to orphans unchanged.
    fn adopt_orphans(&self, garbage: &mut Vec<Retired>) {
        if let Some(mut orphans) = try_lock_unpoisoned(&self.orphans) {
            let n = orphans.len();
            if n > 0 {
                garbage.append(&mut orphans);
                drop(orphans);
                self.stats.adopted(n);
            }
        }
    }

    fn scan(&self, garbage: &mut Vec<Retired>) {
        self.adopt_orphans(garbage);
        // SAFETY(ordering) PAIRS(ibr-interval-dekker): the SeqCst fence
        // pairs with the fences in
        // `begin_op`/`load` (publish-validate Dekker): a reader whose
        // reservation this snapshot misses must see, after its own
        // fence, the era advance that made its node retirable, and
        // retries. A torn (lower, upper) pair is benign: `upper = NONE`
        // reads as an unbounded interval (conservative keep), and
        // `lower = NONE` only appears when the owner is outside any
        // operation.
        fence(Ordering::SeqCst);
        let intervals: Vec<(u64, u64)> = self
            .intervals
            .iter()
            .map(|iv| {
                (
                    iv.lower.load(Ordering::SeqCst),
                    iv.upper.load(Ordering::SeqCst),
                )
            })
            .collect();
        let before = garbage.len();
        let mut kept = Vec::new();
        'outer: for g in garbage.drain(..) {
            for (i, &(lo, hi)) in intervals.iter().enumerate() {
                if lo == NONE {
                    continue;
                }
                // Lifetimes/intervals intersect iff birth ≤ hi ∧ lo ≤ retire.
                if g.birth_era <= hi && lo <= g.retire_era {
                    self.stats.blocked(i, 1);
                    kept.push(g);
                    continue 'outer;
                }
            }
            unsafe { self.stats.reclaim_node(g) };
        }
        self.stats.on_reclaim(before - kept.len());
        *garbage = kept;
    }
}

impl Drop for IbrInner {
    fn drop(&mut self) {
        let orphans = std::mem::take(&mut *lock_unpoisoned(&self.orphans));
        let n = orphans.len();
        for g in orphans {
            // SAFETY: orphans already survived a full reservation-interval scan
            // after their owner departed; nothing can reach them.
            unsafe { self.stats.reclaim_node(g) };
        }
        self.stats.on_reclaim(n);
    }
}

/// Interval-based reclamation (2GE variant).
///
/// # Example
///
/// ```
/// use era_smr::{ibr::Ibr, Smr};
///
/// let smr = Ibr::new(4);
/// let mut ctx = smr.register().unwrap();
/// smr.begin_op(&mut ctx); // reserves [era, era]
/// smr.end_op(&mut ctx);   // clears the reservation
/// ```
#[derive(Debug, Clone)]
pub struct Ibr {
    inner: Arc<IbrInner>,
}

/// Per-thread context for [`Ibr`].
#[derive(Debug)]
#[must_use = "dropping a context releases its slot and orphans its unflushed garbage"]
pub struct IbrCtx {
    inner: Arc<IbrInner>,
    idx: usize,
    tracer: ThreadTracer,
    garbage: Vec<Retired>,
    allocs: u64,
    /// Private mirror of this thread's published upper bound (the
    /// interval is single-writer, so the mirror is exact). Lets `load`
    /// skip the publish + fence when the standing interval already
    /// covers the current era.
    upper_mirror: u64,
}

impl Drop for IbrCtx {
    fn drop(&mut self) {
        // SAFETY(ordering): Release — orders the thread's last accesses
        // before the reservation clear.
        self.inner.intervals[self.idx]
            .lower
            .store(NONE, Ordering::Release);
        self.inner.intervals[self.idx]
            .upper
            .store(NONE, Ordering::Release);
        // Runs during unwinding too: poison-tolerant handoff, then an
        // unconditional slot release (see the EBR drop path).
        lock_unpoisoned(&self.inner.orphans).append(&mut self.garbage);
        self.inner.registry.release(self.idx);
    }
}

impl Ibr {
    /// Default retired-list length triggering a scan.
    pub const DEFAULT_SCAN_THRESHOLD: usize = 64;
    /// Default allocations per era.
    pub const DEFAULT_ERA_FREQUENCY: u64 = 32;

    /// Creates an IBR instance for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_params(
            max_threads,
            Self::DEFAULT_SCAN_THRESHOLD,
            Self::DEFAULT_ERA_FREQUENCY,
        )
    }

    /// Creates an IBR instance with custom scan threshold and era
    /// frequency (allocations per era advance).
    pub fn with_params(max_threads: usize, scan_threshold: usize, era_frequency: u64) -> Self {
        let intervals: Vec<CachePadded<Interval>> = (0..max_threads)
            .map(|_| {
                CachePadded::new(Interval {
                    lower: AtomicU64::new(NONE),
                    upper: AtomicU64::new(NONE),
                })
            })
            .collect();
        Ibr {
            inner: Arc::new(IbrInner {
                era: CachePadded::new(AtomicU64::new(1)),
                intervals: intervals.into_boxed_slice(),
                registry: SlotRegistry::new(max_threads),
                stats: StatCells::default(),
                orphans: Mutex::new(Vec::new()),
                scan_threshold: scan_threshold.max(1),
                era_frequency: era_frequency.max(1),
            }),
        }
    }

    /// Current global era.
    pub fn era(&self) -> u64 {
        self.inner.era.load(Ordering::SeqCst)
    }
}

impl Smr for Ibr {
    type ThreadCtx = IbrCtx;

    fn register(&self) -> Result<IbrCtx, RegisterError> {
        let idx = self.inner.registry.acquire()?;
        // SAFETY(ordering): registration is cold; SeqCst keeps the slot
        // reset visible before any scan considers this thread.
        self.inner.intervals[idx]
            .lower
            .store(NONE, Ordering::SeqCst);
        self.inner.intervals[idx]
            .upper
            .store(NONE, Ordering::SeqCst);
        Ok(IbrCtx {
            inner: Arc::clone(&self.inner),
            idx,
            tracer: self.inner.stats.tracer(idx),
            garbage: Vec::new(),
            allocs: 0,
            upper_mirror: NONE,
        })
    }

    fn name(&self) -> &'static str {
        "IBR"
    }

    fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.stats.attach(recorder, SchemeId::IBR);
    }

    fn begin_op(&self, ctx: &mut IbrCtx) {
        let e = self.inner.era.load(Ordering::SeqCst);
        let iv = &self.inner.intervals[ctx.idx];
        // SAFETY(ordering) PAIRS(ibr-interval-dekker): two Relaxed stores +
        // one SeqCst fence
        // replace the two SeqCst stores (two XCHG on x86) the old code
        // issued. The fence is the StoreLoad barrier of the
        // publish-validate Dekker (pairs with the fence in `scan`): the
        // reservation is globally visible before any of the operation's
        // protected reads.
        iv.lower.store(e, Ordering::Relaxed);
        iv.upper.store(e, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        ctx.upper_mirror = e;
        ctx.tracer.emit(Hook::BeginOp, e, 0);
    }

    fn end_op(&self, ctx: &mut IbrCtx) {
        let iv = &self.inner.intervals[ctx.idx];
        // SAFETY(ordering): Release (plain stores on x86) orders the
        // operation's dereferences before the clear. Clearing `lower`
        // first is deliberate: a scanner that reads the pair torn sees
        // (NONE, old) and skips us — correct, the operation is over.
        iv.lower.store(NONE, Ordering::Release);
        iv.upper.store(NONE, Ordering::Release);
        ctx.upper_mirror = NONE;
        ctx.tracer.emit(Hook::EndOp, 0, 0);
    }

    fn load(&self, ctx: &mut IbrCtx, _slot: usize, src: &AtomicUsize) -> usize {
        let iv = &self.inner.intervals[ctx.idx];
        let mut e = self.inner.era.load(Ordering::SeqCst);
        // Fast path: the standing interval (published with a fence by
        // `begin_op` or an earlier slow-path load; the mirror is exact
        // because the interval is single-writer) already covers the
        // current era — no store, no fence.
        // SAFETY(ordering): the two SeqCst loads cannot reorder: if a
        // node born in era `e + 1` was published before our `src` read,
        // the inserter's era read precedes its publish in the SeqCst
        // order, so the era re-read observes the advance and we fall
        // through to the slow path (our interval does not cover the new
        // node's birth era).
        if ctx.upper_mirror != NONE && ctx.upper_mirror >= e {
            let p = src.load(Ordering::SeqCst);
            if self.inner.era.load(Ordering::SeqCst) == e {
                ctx.tracer.emit(Hook::Load, 0, p as u64);
                return p;
            }
            e = self.inner.era.load(Ordering::SeqCst);
        }
        loop {
            // Extend the reservation to cover era `e` *before* using
            // the pointer, then validate the clock did not move.
            // SAFETY(ordering) PAIRS(ibr-interval-dekker): Release store +
            // SeqCst fence (pairs
            // with the fence in `scan`) replaces the old SeqCst store;
            // the validating loads are SeqCst (plain loads on TSO).
            iv.upper.store(e, Ordering::Release);
            fence(Ordering::SeqCst);
            let p = src.load(Ordering::SeqCst);
            let now = self.inner.era.load(Ordering::SeqCst);
            if now == e {
                ctx.upper_mirror = e;
                ctx.tracer.emit(Hook::Load, 0, p as u64);
                return p;
            }
            e = now;
        }
    }

    /// IBR protection is interval-based and established only by a
    /// completed publish-validate cycle — traversals must revalidate.
    fn requires_validation(&self) -> bool {
        true
    }

    fn init_header(&self, ctx: &mut IbrCtx, header: &SmrHeader) {
        let e = self.inner.era.load(Ordering::SeqCst);
        // SAFETY(ordering): SeqCst — the birth stamp and the era bump below
        // pair with readers' SeqCst era reservations and retire's SeqCst
        // retire stamp: IBR's interval overlap test assumes one total order
        // over era movement and stamps.
        header.birth_era.store(e, Ordering::SeqCst);
        ctx.allocs += 1;
        if ctx.allocs.is_multiple_of(self.inner.era_frequency) {
            let new = self.inner.era.fetch_add(1, Ordering::SeqCst) + 1;
            ctx.tracer.emit(Hook::Advance, new, 0);
        }
    }

    /// # Safety
    /// See [`Smr::retire`]: `ptr` must be unlinked, retired at most once,
    /// and `drop_fn` must be valid for it.
    unsafe fn retire(
        &self,
        ctx: &mut IbrCtx,
        ptr: *mut u8,
        header: *const SmrHeader,
        drop_fn: DropFn,
    ) {
        let birth = if header.is_null() {
            0
        } else {
            // SAFETY: caller contract (`# Safety` above) — header outlives retire.
            unsafe { (*header).birth_era.load(Ordering::SeqCst) }
        };
        // SAFETY(ordering): SeqCst retire stamp (plain load on TSO) —
        // must not be satisfied early, or a reader's validated era
        // could fall outside the recorded `[birth, retire]` lifetime.
        let retire_era = self.inner.era.load(Ordering::SeqCst);
        ctx.garbage.push(Retired {
            ptr,
            birth_era: birth,
            retire_era,
            drop_fn,
            retire_tick: self.inner.stats.stamp(),
        });
        let held = self.inner.stats.on_retire();
        ctx.tracer.emit(Hook::Retire, ptr as u64, held as u64);
        if ctx.garbage.len() >= self.inner.scan_threshold {
            self.inner.scan(&mut ctx.garbage);
        }
    }

    fn stats(&self) -> SmrStats {
        self.inner
            .stats
            .snapshot(self.inner.era.load(Ordering::SeqCst))
    }

    fn flush(&self, ctx: &mut IbrCtx) {
        self.inner.scan(&mut ctx.garbage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// # Safety
    /// `p` must be a leaked `Box<(SmrHeader, u64)>` nothing else reaches.
    unsafe fn free_node(p: *mut u8) {
        // SAFETY: contract above.
        unsafe { drop(Box::from_raw(p as *mut (SmrHeader, u64))) }
    }

    fn alloc_node(smr: &Ibr, ctx: &mut IbrCtx, v: u64) -> *mut (SmrHeader, u64) {
        let node = Box::into_raw(Box::new((SmrHeader::new(), v)));
        // SAFETY: node was just leaked and is still exclusively ours.
        smr.init_header(ctx, unsafe { &(*node).0 });
        node
    }

    fn retire_node(smr: &Ibr, ctx: &mut IbrCtx, node: *mut (SmrHeader, u64)) {
        // SAFETY: callers pass a node they just unlinked (or never published);
        // each node is retired exactly once.
        unsafe { smr.retire(ctx, node as *mut u8, &(*node).0, free_node) };
    }

    #[test]
    fn interval_reservation_protects_overlap() {
        let smr = Ibr::with_params(2, 1, 1);
        let mut reader = smr.register().unwrap();
        let mut writer = smr.register().unwrap();

        let node = alloc_node(&smr, &mut writer, 7);
        let shared = AtomicUsize::new(node as usize);

        smr.begin_op(&mut reader);
        let p = smr.load(&mut reader, 0, &shared);
        assert_eq!(p, node as usize);

        // SAFETY(ordering): SeqCst unlink, same order as the scheme's stamps.
        shared.store(0, Ordering::SeqCst);
        retire_node(&smr, &mut writer, node);
        smr.flush(&mut writer);
        assert_eq!(
            smr.stats().retired_now,
            1,
            "lifetime intersects the interval"
        );

        smr.end_op(&mut reader);
        smr.flush(&mut writer);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn stalled_interval_pins_only_its_cohort() {
        let smr = Ibr::with_params(2, 1, 1);
        let mut stalled = smr.register().unwrap();
        let mut worker = smr.register().unwrap();

        let pinned = alloc_node(&smr, &mut worker, 0);
        let shared = AtomicUsize::new(pinned as usize);
        smr.begin_op(&mut stalled);
        let _ = smr.load(&mut stalled, 0, &shared);
        // stalled never ends its op: interval [E, E'] frozen.

        // SAFETY(ordering): SeqCst unlink, same order as the scheme's stamps.
        shared.store(0, Ordering::SeqCst);
        retire_node(&smr, &mut worker, pinned);
        // Churn nodes born strictly later (era_frequency=1 advances fast).
        for i in 1..=200u64 {
            let n = alloc_node(&smr, &mut worker, i);
            retire_node(&smr, &mut worker, n);
        }
        smr.flush(&mut worker);
        let st = smr.stats();
        assert!(
            st.retired_now <= 3,
            "stalled interval must pin only the old cohort: {st}"
        );
        smr.end_op(&mut stalled);
        smr.flush(&mut worker);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn growing_cohort_in_one_interval_accumulates() {
        // The weak-robustness witness: nodes born & retired *inside* the
        // stalled interval all stay (bounded by live-in-interval, which
        // is what Definition 5.2 allows).
        let smr = Ibr::with_params(2, 1, u64::MAX); // era never advances via allocs
        let mut stalled = smr.register().unwrap();
        let mut worker = smr.register().unwrap();

        let n0 = alloc_node(&smr, &mut worker, 0);
        let shared = AtomicUsize::new(n0 as usize);
        smr.begin_op(&mut stalled);
        let _ = smr.load(&mut stalled, 0, &shared);

        // SAFETY(ordering): SeqCst unlink, same order as the scheme's stamps.
        shared.store(0, Ordering::SeqCst);
        retire_node(&smr, &mut worker, n0);
        for i in 1..=100u64 {
            let n = alloc_node(&smr, &mut worker, i);
            retire_node(&smr, &mut worker, n);
        }
        smr.flush(&mut worker);
        // Era frozen: every node's lifetime is [E, E] = the interval.
        assert_eq!(smr.stats().retired_now, 101);
        smr.end_op(&mut stalled);
        smr.flush(&mut worker);
        assert_eq!(smr.stats().retired_now, 0);
    }

    #[test]
    fn begin_op_resets_interval() {
        let smr = Ibr::with_params(1, 64, 1);
        let mut ctx = smr.register().unwrap();
        smr.begin_op(&mut ctx);
        let e1 = smr.inner.intervals[0].lower.load(Ordering::SeqCst);
        smr.end_op(&mut ctx);
        assert_eq!(smr.inner.intervals[0].lower.load(Ordering::SeqCst), NONE);
        // Advance the era, begin again: fresh interval.
        let mut tmp = Vec::new();
        for i in 0..8 {
            tmp.push(alloc_node(&smr, &mut ctx, i));
        }
        smr.begin_op(&mut ctx);
        let e2 = smr.inner.intervals[0].lower.load(Ordering::SeqCst);
        assert!(e2 > e1);
        smr.end_op(&mut ctx);
        for n in tmp {
            // SAFETY: nodes were never retired or shared; plain cleanup.
            unsafe { drop(Box::from_raw(n)) };
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_stress() {
        let smr = Ibr::new(8);
        let shared = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (smr, shared) = (&smr, &shared);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for i in 0..1_000u64 {
                        smr.begin_op(&mut ctx);
                        let n = alloc_node(smr, &mut ctx, i);
                        // SAFETY(ordering): SeqCst swap = unlink point, making
                        // this thread old's unique retirer.
                        let old = shared.swap(n as usize, Ordering::SeqCst);
                        if old != 0 {
                            let node = old as *mut (SmrHeader, u64);
                            retire_node(smr, &mut ctx, node);
                        }
                        smr.end_op(&mut ctx);
                    }
                    smr.flush(&mut ctx);
                });
            }
            for _ in 0..2 {
                let (smr, shared) = (&smr, &shared);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for _ in 0..1_000 {
                        smr.begin_op(&mut ctx);
                        let p = smr.load(&mut ctx, 0, shared);
                        if p != 0 {
                            // SAFETY: the op's era reservation covers p.
                            let v = unsafe { (*(p as *const (SmrHeader, u64))).1 };
                            assert!(v < 1_000);
                        }
                        smr.end_op(&mut ctx);
                    }
                });
            }
        });
        let last = shared.load(Ordering::SeqCst);
        if last != 0 {
            // SAFETY: workers joined; the final node is exclusively ours.
            unsafe { drop(Box::from_raw(last as *mut (SmrHeader, u64))) };
        }
    }
}
