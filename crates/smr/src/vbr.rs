//! Version-based reclamation (VBR) — Sheffi, Herlihy & Petrank [37],
//! arena variant.
//!
//! VBR is fully optimistic: nodes are reclaimed (returned to a
//! *type-preserving* allocator) the moment they are retired, and readers
//! cope by validating per-node **version numbers** — a read that raced a
//! reclamation observes a version change, discards the value (exactly
//! Condition 3 of Definition 4.2), and rolls back to a checkpoint. The
//! paper's VBR relies on a hardware wide-CAS to pair every mutable field
//! with a version tag.
//!
//! ## Substitution (no 128-bit CAS on stable Rust)
//!
//! Instead of `(pointer, version)` double-words, this arena hands out
//! 64-bit **handles** `(slot index, version)` and stores, in every
//! mutable cell, a 16-bit tag derived from the owning slot's version
//! next to a 48-bit payload. A stale CAS cannot take effect on a reused
//! slot because reuse bumps the version and therefore the tag, so the
//! expected value can no longer match (tags wrap at 2¹⁶ slot reuses —
//! astronomically unlikely to collide in one pinned handle's window, and
//! the exact analogue of VBR's bounded version counters). DESIGN.md
//! documents this substitution.
//!
//! VBR's ERA profile: **robust** (the retired population is identically
//! zero — reclamation is immediate) and **widely applicable** (reads of
//! reclaimed memory are validated, never trusted), but **not easy**: the
//! rollback on [`Stale`] is a control-flow change (Definition 5.3,
//! Condition 4) and handles/checkpoints must be threaded through the
//! data-structure code by hand.
//!
//! # Example
//!
//! ```
//! use era_smr::vbr::{Arena, Stale};
//!
//! let arena: Arena<2> = Arena::new(16); // 16 slots × 2 cells
//! let h = arena.alloc().expect("arena has room");
//! arena.write(h, 0, 42).unwrap();
//! assert_eq!(arena.read(h, 0), Ok(42));
//! arena.retire(h).unwrap();             // immediate reclamation
//! assert_eq!(arena.read(h, 0), Err(Stale)); // stale handle detected
//! ```

// ERA-CLASS: VBR robust — version validation lets reclamation proceed
// immediately, so stalled readers trap nothing; informational only, as
// VBR is arena-based and does not implement the `Smr` trait.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use era_obs::{Hook, Recorder, SchemeId};

use crate::common::{SmrStats, StatCells};

/// Number of payload bits per cell (the rest is the version tag).
pub const PAYLOAD_BITS: u32 = 48;
/// Maximum storable payload value.
pub const MAX_PAYLOAD: u64 = (1 << PAYLOAD_BITS) - 1;

const TAG_SHIFT: u32 = PAYLOAD_BITS;
const TAG_MASK: u64 = 0xFFFF;

/// Free-list sentinel index.
const NIL: u32 = u32::MAX;

/// A versioned reference to an arena slot.
///
/// Handles are plain data: copying one never extends a node's lifetime.
/// A handle whose slot has since been retired (or reused) is *stale*;
/// every arena operation detects staleness and returns [`Stale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[must_use = "a Handle is the only proof of the checkout version; dropping it unchecked loses the ABA guard"]
pub struct Handle {
    /// Slot index.
    pub idx: u32,
    /// Version the slot had when this handle was created (odd = live).
    pub ver: u64,
}

impl Handle {
    /// Packs the handle into a cell payload: `idx` (20 bits) ·
    /// low 27 bits of `ver` · `mark` bit.
    ///
    /// # Panics
    ///
    /// Panics if `idx` needs more than 20 bits.
    pub fn pack(self, mark: bool) -> u64 {
        assert!(self.idx < (1 << 20), "arena too large for packed handles");
        ((self.idx as u64) << 28) | ((self.ver & 0x7FF_FFFF) << 1) | u64::from(mark)
    }

    /// Unpacks a payload produced by [`Handle::pack`]; returns the
    /// handle (with truncated version) and the mark bit.
    pub fn unpack(payload: u64) -> (Handle, bool) {
        let idx = (payload >> 28) as u32;
        let ver = (payload >> 1) & 0x7FF_FFFF;
        let mark = payload & 1 == 1;
        (Handle { idx, ver }, mark)
    }

    /// Whether `self.ver` matches a (possibly truncated) packed version.
    fn ver_matches(self, truncated: u64) -> bool {
        (self.ver & 0x7FF_FFFF) == (truncated & 0x7FF_FFFF)
    }
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}v{}", self.idx, self.ver)
    }
}

/// The handle's slot was retired (and possibly reused) since the handle
/// was created: the caller must discard everything derived from it and
/// roll back to its checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stale;

impl fmt::Display for Stale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stale versioned handle")
    }
}

impl std::error::Error for Stale {}

/// The arena has no free slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaFull;

impl fmt::Display for ArenaFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arena out of slots")
    }
}

impl std::error::Error for ArenaFull {}

#[derive(Debug)]
struct Slot<const C: usize> {
    /// Even = free, odd = live. Bumped on every alloc and retire.
    ver: AtomicU64,
    cells: [AtomicU64; C],
    next_free: AtomicU64,
}

/// A type-preserving versioned arena with `C` mutable cells per slot.
///
/// All memory is allocated up front and only ever recycled within the
/// arena, so reads of *reclaimed* slots stay inside program space
/// (Condition 1 of Definition 4.2) — they are unsafe accesses the
/// version validation renders harmless.
#[derive(Debug)]
pub struct Arena<const C: usize> {
    slots: Box<[Slot<C>]>,
    /// Free list head: `idx(32) | aba_counter(32)`.
    free_head: AtomicU64,
    stats: StatCells,
    live: std::sync::atomic::AtomicUsize,
}

impl<const C: usize> Arena<C> {
    /// Creates an arena with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds the 20-bit packed-handle limit.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity < (1 << 20), "arena too large for packed handles");
        let slots: Vec<Slot<C>> = (0..capacity)
            .map(|i| Slot {
                ver: AtomicU64::new(0),
                cells: std::array::from_fn(|_| AtomicU64::new(0)),
                next_free: AtomicU64::new(if i + 1 < capacity {
                    (i + 1) as u64
                } else {
                    NIL as u64
                }),
            })
            .collect();
        Arena {
            slots: slots.into_boxed_slice(),
            free_head: AtomicU64::new(if capacity == 0 { pack_head(NIL, 0) } else { 0 }),
            stats: StatCells::default(),
            live: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Attaches an [`era_obs::Recorder`]: from now on allocations and
    /// retire-is-reclaim events are traced (on the arena's service
    /// tracer — VBR has no per-thread contexts) and footprint counters
    /// feed the recorder's metrics. First attachment wins.
    pub fn attach_recorder(&self, recorder: &Recorder) {
        self.stats.attach(recorder, SchemeId::VBR);
    }

    /// Number of live (allocated, unretired) slots.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    fn tag_of(ver: u64) -> u64 {
        ver & TAG_MASK
    }

    /// Allocates a slot; all cells are zeroed (with the new version's
    /// tag).
    ///
    /// # Errors
    ///
    /// [`ArenaFull`] when no free slot remains.
    pub fn alloc(&self) -> Result<Handle, ArenaFull> {
        loop {
            let head = self.free_head.load(Ordering::SeqCst);
            let (idx, counter) = unpack_head(head);
            if idx == NIL {
                return Err(ArenaFull);
            }
            let next = self.slots[idx as usize].next_free.load(Ordering::SeqCst) as u32;
            // SAFETY(ordering): SeqCst — the free-list pop CAS pairs with the
            // SeqCst push CAS in `retire`: the counter-packed head is VBR's
            // ABA guard and needs one total order over pops and pushes.
            if self
                .free_head
                .compare_exchange(
                    head,
                    pack_head(next, counter.wrapping_add(1)),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                continue;
            }
            let slot = &self.slots[idx as usize];
            // Exclusive ownership of the popped slot: bump even → odd.
            // SAFETY(ordering): SeqCst — the version bump pairs with readers'
            // SeqCst version checks in read/write/cas: a stale handle must
            // observe the bump no later than any re-tagged cell value.
            let ver = slot.ver.fetch_add(1, Ordering::SeqCst) + 1;
            debug_assert!(ver % 2 == 1, "allocated slot version must be odd");
            let tag = Self::tag_of(ver) << TAG_SHIFT;
            for cell in &slot.cells {
                // SAFETY(ordering): SeqCst — re-tagging pairs with readers'
                // SeqCst cell loads: a reader holding a stale handle must see
                // either the old tag (and fail validation) or the new one.
                cell.store(tag, Ordering::SeqCst);
            }
            // SAFETY(ordering): Relaxed — live is a telemetry gauge only.
            self.live.fetch_add(1, Ordering::Relaxed);
            self.stats.event(Hook::Alloc, idx as u64, ver);
            return Ok(Handle { idx, ver });
        }
    }

    /// Retires the slot and immediately recycles it.
    ///
    /// This is VBR's defining move: retire *is* reclaim, so the retired
    /// population is identically zero. Concurrent holders of the handle
    /// observe [`Stale`] from then on.
    ///
    /// # Errors
    ///
    /// [`Stale`] if the handle is not the slot's current live version
    /// (double retire, or retire of a reused slot).
    pub fn retire(&self, h: Handle) -> Result<(), Stale> {
        let slot = &self.slots[h.idx as usize];
        // Odd (live, ours) → even (free): only one retirer can win.
        // SAFETY(ordering): SeqCst — pairs with the allocation-side version
        // bump and readers' version checks (same total order as alloc).
        slot.ver
            .compare_exchange(h.ver, h.ver + 1, Ordering::SeqCst, Ordering::SeqCst)
            .map_err(|_| Stale)?;
        let held = self.stats.on_retire();
        self.stats.event(Hook::Retire, h.idx as u64, held as u64);
        // SAFETY(ordering): Relaxed — live is a telemetry gauge only.
        self.live.fetch_sub(1, Ordering::Relaxed);
        // Push back on the free list.
        loop {
            let head = self.free_head.load(Ordering::SeqCst);
            let (old_idx, counter) = unpack_head(head);
            // SAFETY(ordering): SeqCst — link-then-publish pairs with the pop
            // CAS in `alloc`; the counter bump in the head CAS is the ABA
            // guard, so both sides stay in one total order.
            slot.next_free.store(old_idx as u64, Ordering::SeqCst);
            if self
                .free_head
                .compare_exchange(
                    head,
                    pack_head(h.idx, counter.wrapping_add(1)),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break;
            }
        }
        self.stats.on_reclaim(1);
        // Retire *is* reclaim for VBR: the per-node Reclaim event (`a`
        // = slot index, `b` = latency 0) mirrors what `reclaim_node`
        // emits for the deferred schemes, keeping `era-view` chains
        // uniform across the matrix.
        self.stats.event(Hook::Reclaim, h.idx as u64, 0);
        Ok(())
    }

    /// Validated read of cell `cell`.
    ///
    /// # Errors
    ///
    /// [`Stale`] when the slot's version no longer matches the handle
    /// (before or after the read — the racing value is discarded, per
    /// Condition 3 of Definition 4.2).
    pub fn read(&self, h: Handle, cell: usize) -> Result<u64, Stale> {
        let slot = &self.slots[h.idx as usize];
        if slot.ver.load(Ordering::SeqCst) != h.ver {
            return Err(Stale);
        }
        let raw = slot.cells[cell].load(Ordering::SeqCst);
        if slot.ver.load(Ordering::SeqCst) != h.ver {
            return Err(Stale);
        }
        debug_assert_eq!(raw >> TAG_SHIFT, Self::tag_of(h.ver));
        Ok(raw & MAX_PAYLOAD)
    }

    /// Unconditional store to cell `cell` (intended for initializing a
    /// node before it is shared).
    ///
    /// # Errors
    ///
    /// [`Stale`] when the handle is stale.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds [`MAX_PAYLOAD`].
    pub fn write(&self, h: Handle, cell: usize, value: u64) -> Result<(), Stale> {
        assert!(value <= MAX_PAYLOAD, "payload exceeds 48 bits");
        let slot = &self.slots[h.idx as usize];
        if slot.ver.load(Ordering::SeqCst) != h.ver {
            return Err(Stale);
        }
        let tagged = (Self::tag_of(h.ver) << TAG_SHIFT) | value;
        // SAFETY(ordering): SeqCst — the tagged write must be ordered against
        // the version re-check below and a concurrent retirer's version bump:
        // writing into a recycled slot must be detectable (VBR's rollback).
        slot.cells[cell].store(tagged, Ordering::SeqCst);
        if slot.ver.load(Ordering::SeqCst) != h.ver {
            // The slot was retired concurrently; the store may have
            // landed in a reused slot only if the version (hence tag)
            // matched, which the retire bump prevents. Report staleness.
            return Err(Stale);
        }
        Ok(())
    }

    /// Compare-and-swap on cell `cell`.
    ///
    /// Returns `Ok(true)` on success, `Ok(false)` on value mismatch.
    /// The expected value is tagged with the handle's version, so a CAS
    /// through a stale handle can never mutate a reused slot: the tag no
    /// longer matches — the paper's "update via an invalid pointer is
    /// guaranteed to fail" (§4.3).
    ///
    /// # Errors
    ///
    /// [`Stale`] when the slot's version no longer matches the handle.
    ///
    /// # Panics
    ///
    /// Panics if `expected` or `new` exceed [`MAX_PAYLOAD`].
    pub fn cas(&self, h: Handle, cell: usize, expected: u64, new: u64) -> Result<bool, Stale> {
        assert!(
            expected <= MAX_PAYLOAD && new <= MAX_PAYLOAD,
            "payload exceeds 48 bits"
        );
        let slot = &self.slots[h.idx as usize];
        if slot.ver.load(Ordering::SeqCst) != h.ver {
            return Err(Stale);
        }
        let tag = Self::tag_of(h.ver) << TAG_SHIFT;
        // SAFETY(ordering): SeqCst — tag-validating CAS pairs with alloc's
        // re-tagging stores and the retirer's version bump, as in `write`.
        match slot.cells[cell].compare_exchange(
            tag | expected,
            tag | new,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => Ok(true),
            Err(_) => {
                if slot.ver.load(Ordering::SeqCst) != h.ver {
                    Err(Stale)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Re-validates a handle (a VBR checkpoint primitive).
    pub fn validate(&self, h: Handle) -> Result<(), Stale> {
        if self.slots[h.idx as usize].ver.load(Ordering::SeqCst) == h.ver {
            Ok(())
        } else {
            Err(Stale)
        }
    }

    /// Rebuilds a full handle from a packed payload reference.
    ///
    /// # Errors
    ///
    /// [`Stale`] when the referenced slot's current version does not
    /// match the packed (truncated) version or the slot is not live.
    pub fn upgrade(&self, payload: u64) -> Result<(Handle, bool), Stale> {
        let (h, mark) = Handle::unpack(payload);
        let ver = self.slots[h.idx as usize].ver.load(Ordering::SeqCst);
        if ver % 2 == 1 && h.ver_matches(ver) {
            Ok((Handle { idx: h.idx, ver }, mark))
        } else {
            Err(Stale)
        }
    }

    /// Footprint counters. `retired_now` is always 0: retire is reclaim.
    pub fn stats(&self) -> SmrStats {
        self.stats.snapshot(0)
    }
}

fn pack_head(idx: u32, counter: u32) -> u64 {
    ((idx as u64) << 32) | counter as u64
}

fn unpack_head(head: u64) -> (u32, u32) {
    ((head >> 32) as u32, head as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_retire_cycle() {
        let arena: Arena<2> = Arena::new(4);
        let h = arena.alloc().unwrap();
        arena.write(h, 0, 7).unwrap();
        arena.write(h, 1, 9).unwrap();
        assert_eq!(arena.read(h, 0), Ok(7));
        assert_eq!(arena.read(h, 1), Ok(9));
        assert_eq!(arena.live(), 1);
        arena.retire(h).unwrap();
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.read(h, 0), Err(Stale));
        assert_eq!(arena.stats().retired_now, 0, "retire is reclaim");
        assert_eq!(arena.stats().total_reclaimed, 1);
    }

    #[test]
    fn double_retire_detected() {
        let arena: Arena<1> = Arena::new(2);
        let h = arena.alloc().unwrap();
        arena.retire(h).unwrap();
        assert_eq!(arena.retire(h), Err(Stale));
    }

    #[test]
    fn reuse_gives_fresh_version_and_clean_cells() {
        let arena: Arena<1> = Arena::new(1);
        let h1 = arena.alloc().unwrap();
        arena.write(h1, 0, 123).unwrap();
        arena.retire(h1).unwrap();
        let h2 = arena.alloc().unwrap();
        assert_eq!(h1.idx, h2.idx, "single slot must be reused");
        assert!(h2.ver > h1.ver);
        assert_eq!(arena.read(h2, 0), Ok(0), "cells are re-initialized");
        assert_eq!(arena.read(h1, 0), Err(Stale), "old handle is dead");
    }

    #[test]
    fn stale_cas_cannot_mutate_reused_slot() {
        // The ABA scenario VBR must defeat.
        let arena: Arena<1> = Arena::new(1);
        let h1 = arena.alloc().unwrap();
        arena.write(h1, 0, 5).unwrap();
        arena.retire(h1).unwrap();
        let h2 = arena.alloc().unwrap();
        arena.write(h2, 0, 5).unwrap(); // same *payload* as before
                                        // A thread still holding h1 attempts CAS(5 → 6):
        assert_eq!(arena.cas(h1, 0, 5, 6), Err(Stale));
        // The live node is untouched:
        assert_eq!(arena.read(h2, 0), Ok(5));
    }

    #[test]
    fn cas_success_and_value_mismatch() {
        let arena: Arena<1> = Arena::new(1);
        let h = arena.alloc().unwrap();
        arena.write(h, 0, 1).unwrap();
        assert_eq!(arena.cas(h, 0, 1, 2), Ok(true));
        assert_eq!(arena.cas(h, 0, 1, 3), Ok(false));
        assert_eq!(arena.read(h, 0), Ok(2));
    }

    #[test]
    fn arena_full() {
        let arena: Arena<1> = Arena::new(2);
        let a = arena.alloc().unwrap();
        let _b = arena.alloc().unwrap();
        assert_eq!(arena.alloc(), Err(ArenaFull));
        arena.retire(a).unwrap();
        assert!(arena.alloc().is_ok());
    }

    #[test]
    fn handle_pack_unpack_roundtrip() {
        let h = Handle {
            idx: 1023,
            ver: 0x0123_4567 & 0x7FF_FFFF,
        };
        for mark in [false, true] {
            let p = h.pack(mark);
            assert!(p <= MAX_PAYLOAD);
            let (h2, m2) = Handle::unpack(p);
            assert_eq!(h2.idx, h.idx);
            assert_eq!(h2.ver, h.ver & 0x7FF_FFFF);
            assert_eq!(m2, mark);
        }
    }

    #[test]
    fn upgrade_validates_liveness_and_version() {
        let arena: Arena<2> = Arena::new(4);
        let target = arena.alloc().unwrap();
        let payload = target.pack(false);
        let (up, mark) = arena.upgrade(payload).unwrap();
        assert_eq!(up, target);
        assert!(!mark);
        arena.retire(target).unwrap();
        assert_eq!(arena.upgrade(payload), Err(Stale));
    }

    #[test]
    fn validate_checkpoint() {
        let arena: Arena<1> = Arena::new(1);
        let h = arena.alloc().unwrap();
        assert!(arena.validate(h).is_ok());
        arena.retire(h).unwrap();
        assert_eq!(arena.validate(h), Err(Stale));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_alloc_retire_churn() {
        let arena: Arena<2> = Arena::new(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let arena = &arena;
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        match arena.alloc() {
                            Ok(h) => {
                                arena.write(h, 0, (t * 10_000 + i) & MAX_PAYLOAD).unwrap();
                                // Reads through our own live handle succeed.
                                assert!(arena.read(h, 0).is_ok());
                                arena.retire(h).unwrap();
                            }
                            Err(ArenaFull) => std::thread::yield_now(),
                        }
                    }
                });
            }
        });
        assert_eq!(arena.live(), 0);
        let st = arena.stats();
        assert_eq!(st.total_retired, st.total_reclaimed);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_readers_see_stale_not_garbage() {
        // Readers hammer a handle while the owner retires/reallocs: every
        // read either returns a value written under that version or Stale.
        let arena: Arena<1> = Arena::new(1);
        let h0 = arena.alloc().unwrap();
        arena.write(h0, 0, 11).unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let (arena_ref, stop_ref) = (&arena, &stop);
            s.spawn(move || {
                while !stop_ref.load(Ordering::SeqCst) {
                    if let Ok(v) = arena_ref.read(h0, 0) {
                        assert_eq!(v, 11, "only version-h0 values are visible")
                    }
                }
            });
            let mut h = h0;
            for round in 0..2_000u64 {
                arena.retire(h).unwrap();
                h = arena.alloc().unwrap();
                arena.write(h, 0, round & MAX_PAYLOAD).unwrap();
            }
            // SAFETY(ordering): SeqCst — test shutdown flag, strongest for clarity.
            stop.store(true, Ordering::SeqCst);
        });
    }
}
