//@ expect-clean
// ERA-CLASS: Slotted robust — per-slot reservations cap trapped
// memory regardless of reader stalls.
//
// The compliant R9 shape: the header names the class, and the file
// exhibits the structural witness a robust claim requires — a
// threshold knob gating a bounded scan over the retired set.

struct Slotted {
    inner: InnerScheme,
    scan_threshold: usize,
}

impl Smr for Slotted {
    fn begin_op(&self) {
        self.inner.begin_op();
    }
    fn retire(&self, p: usize) {
        self.inner.retire(p);
    }
}

fn scan_retired(bag: &mut RetireBag, scan_threshold: usize) {
    if bag.len() < scan_threshold {
        return;
    }
    bag.reclaim_unreserved();
}
