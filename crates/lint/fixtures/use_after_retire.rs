//@ expect: R7-use-after-retire
// R7 in its two flavors: touching a value after it flowed into
// `retire`, and dereferencing after the protecting guard was
// explicitly dropped. Both are the life-cycle's terminal states —
// nothing downstream of them may observe the pointee.

fn remove_head(list: &List, ctx: &mut OpCtx) -> u64 {
    let p = list.smr.load(ctx, 0, &list.head);
    // SAFETY: `p` was unlinked by the caller; retire consumes it and
    // reads inside the argument list happen before the handoff.
    unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, dealloc) };
    // SAFETY: wrong — `p` is queued for reclamation; this read races
    // the reclaimer.
    let k = unsafe { (*p).key };
    return k;
}

fn read_after_unpin(list: &List) -> u64 {
    let mut g = list.smr.register().unwrap();
    let p = list.smr.load(&mut g, 0, &list.head);
    drop(g);
    // SAFETY: wrong — the guard is gone; the protection ended at the
    // explicit drop above.
    let k = unsafe { (*p).key };
    return k;
}
