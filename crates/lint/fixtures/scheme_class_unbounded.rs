//@ expect: R9-scheme-obligation
// ERA-CLASS: Epochoid non-robust — one stalled reader pins its epoch
// and trapped memory grows without limit.
//
// The declared class contradicts the API below: a non-robust scheme
// advertising a trapped-memory bound is the ERA theorem violated in
// the signature — callers will budget against a promise the scheme
// cannot keep.

struct Epochoid {
    inner: InnerScheme,
}

impl Smr for Epochoid {
    fn begin_op(&self) {
        self.inner.begin_op();
    }
    fn retire(&self, p: usize) {
        self.inner.retire(p);
    }
}

fn robustness_bound(threads: usize, batch: usize) -> usize {
    return threads * batch;
}
