//@ expect-clean
// The compliant shapes for R6: derefs stay inside the guard's scope,
// and when a pointer must leave the function, its guard travels with
// it (the pair keeps the protection region alive at the call site).

fn read_key(list: &List) -> u64 {
    let mut g = list.smr.register().unwrap();
    let p = list.smr.load(&mut g, 0, &list.head);
    // SAFETY: `p` was protected through `g` on the line above and `g`
    // lives to the end of this function.
    let k = unsafe { (*p).key };
    return k;
}

fn pin_head(list: &List) -> (PinnedSlot, usize) {
    let mut g = list.smr.register().unwrap();
    let p = list.smr.load(&mut g, 0, &list.head);
    // The guard escapes *with* the pointer: protection transfers to
    // the caller instead of ending here.
    return (g, p);
}

fn ambient_protection(list: &List, ctx: &mut OpCtx) -> usize {
    // `ctx` is caller-owned; its protection outlives this frame by
    // construction, so returning the pointer is fine.
    let p = list.smr.load(ctx, 0, &list.head);
    return p;
}
