//@ expect: R8-fence-pairing
// R8's failure modes: a pairing tag with a single endpoint (its
// partner was deleted in a refactor, or the annotation rotted), and a
// tag whose annotation floats free of any fence or atomic call.

use std::sync::atomic::{fence, AtomicUsize, Ordering};

fn publish(flag: &AtomicUsize) {
    // SAFETY(ordering) PAIRS(lost-dekker): Relaxed store + SeqCst
    // fence publish the flag; the partner fence used to live in the
    // scan path but was removed.
    flag.store(1, Ordering::Relaxed);
    fence(Ordering::SeqCst);
}

fn unrelated_filler_a() -> usize {
    let x = 1;
    let y = x + 1;
    let z = y + 1;
    return z;
}

fn unrelated_filler_b() -> usize {
    let x = 2;
    let y = x + 2;
    let z = y + 2;
    return z;
}

fn unrelated_filler_c() -> usize {
    let x = 3;
    let y = x + 3;
    let z = y + 3;
    return z;
}

// SAFETY(ordering) PAIRS(floating-note): this annotation sits on no
// fence and no atomic call — the sync site it once described is gone.
