//@ expect-clean
// The compliant R8 shape: both halves of a Dekker handshake carry the
// same PAIRS tag, and each annotation sits on a real sync site.

use std::sync::atomic::{fence, AtomicUsize, Ordering};

fn announce(slot: &AtomicUsize) {
    // SAFETY(ordering) PAIRS(demo-dekker): Relaxed store + SeqCst
    // fence make the announcement globally visible before any later
    // read; pairs with the fence in `scan`.
    slot.store(1, Ordering::Relaxed);
    fence(Ordering::SeqCst);
}

fn scan(slot: &AtomicUsize) -> usize {
    // SAFETY(ordering) PAIRS(demo-dekker): the SeqCst fence pairs with
    // the fence in `announce` — one of the two threads must see the
    // other's write (Dekker).
    fence(Ordering::SeqCst);
    return slot.load(Ordering::SeqCst);
}
