//@ expect: R6-guard-escape
// R6 both ways a guard can be outlived: a protected pointer returned
// without its guard, and a pointer dereferenced after the protecting
// guard's scope closed. Protection is a *region*, not a property of
// the pointer value — once `g` dies, `p` is a bare address the
// reclaimer is free to invalidate.

fn escape_by_return(list: &List) -> *mut Node {
    let mut g = list.smr.register().unwrap();
    let p = list.smr.load(&mut g, 0, &list.head);
    // `g` dies at the brace below; the caller receives a pointer whose
    // protection has already ended.
    return p as *mut Node;
}

fn escape_by_scope(list: &List) -> u64 {
    let p;
    {
        let mut g = list.smr.register().unwrap();
        p = list.smr.load(&mut g, 0, &list.head);
    }
    // SAFETY: wrong — `g` closed with its block, so nothing protects
    // this read from a concurrent reclaimer.
    let k = unsafe { (*p).key };
    return k;
}
