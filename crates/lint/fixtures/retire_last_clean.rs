//@ expect-clean
// The compliant shapes for R7: `retire` is the *last* use of the
// pointer (reads inside its own argument list included), and a
// reassignment after retire starts a fresh life-cycle.

fn remove_head(list: &List, ctx: &mut OpCtx) {
    let p = list.smr.load(ctx, 0, &list.head);
    // SAFETY: the header read sits inside retire's argument list —
    // it happens before the handoff, so it is a pre-retire use.
    unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, dealloc) };
}

fn drain_two(list: &List, ctx: &mut OpCtx) -> u64 {
    let mut p = list.smr.load(ctx, 0, &list.head);
    // SAFETY: first node retired; `p` is rebound to a freshly
    // protected load before any further use.
    unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, dealloc) };
    p = list.smr.load(ctx, 0, &list.head);
    // SAFETY: `p` is the second node, protected by `ctx` on the line
    // above — the earlier retire does not taint it.
    let k = unsafe { (*p).key };
    return k;
}
