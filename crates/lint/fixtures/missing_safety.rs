//@ expect: R1-safety-comment
// A bare unsafe block with no justification anywhere nearby: the
// reviewer has nothing to review.
fn reinterpret(x: u32) -> f32 {
    unsafe { core::mem::transmute::<u32, f32>(x) }
}
