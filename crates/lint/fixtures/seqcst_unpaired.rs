//@ expect: R2-ordering-justification
// In era-smr every atomic write must carry an ordering note — a new
// SeqCst site must name its fence-pairing partner, or it is either
// dead weight or an unexamined assumption.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn announce(slot: &AtomicUsize, epoch: usize) {
    slot.store(epoch, Ordering::SeqCst);
}
