//@ expect: R5-guard-must-use
/// A per-thread pinned context whose silent drop would release its
/// slot and orphan its garbage — the caller must be warned when they
/// ignore one.
pub struct ForgottenCtx {
    slot: usize,
}
