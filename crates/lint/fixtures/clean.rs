//@ expect-clean
//! Every rule's compliant shape in one file: the patterns `era-lint
//! check` expects to see across the workspace.
// ERA-CLASS: Fixture non-robust — a demonstration scheme with no
// reclamation bound to claim (R9's header obligation, satisfied).
use std::sync::atomic::{AtomicUsize, Ordering};

/// A pinned per-thread context (R5: guards are `#[must_use]`).
#[must_use = "dropping a context releases its slot and orphans its garbage"]
pub struct GoodCtx {
    slot: usize,
}

/// R2: every justified atomic write names its ordering argument.
pub fn publish(flag: &AtomicUsize) {
    // SAFETY(ordering): Relaxed is enough — this flag is a monotonic
    // hint, re-read under the scan's SeqCst load; pairs with the
    // begin_op fence.
    flag.store(1, Ordering::Relaxed);
}

/// R1 + R3: the deref is justified *and* dominated by `begin_op`.
fn traverse(list: &List, ctx: &mut GoodCtx) -> i64 {
    list.smr.begin_op(ctx);
    let node = list.head;
    // SAFETY: protected by begin_op above; the node stays live until
    // end_op per the scheme's epoch guarantee.
    unsafe { (*node).key }
}

/// R4: the impl emits BeginOp and Retire…
impl Smr for Good {
    fn begin_op(&self, ctx: &mut GoodCtx) {
        self.tracer.emit(Hook::BeginOp, 0, 0);
    }

    /// Hands a node to the scheme.
    ///
    /// # Safety
    ///
    /// Caller promises `ptr` is unreachable and not yet retired.
    unsafe fn retire(&self, ptr: *mut u8) {
        self.tracer.emit(Hook::Retire, ptr as u64, 0);
    }
}

/// …and the reclaim path tallies through on_reclaim.
fn tally(stats: &Stats) {
    stats.on_reclaim(1);
}
