//@ expect: R2-ordering-justification
// A relaxed RMW with no ordering justification: exactly the kind of
// site PR 3's fence discipline exists to keep honest.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) {
    counter.fetch_add(1, Ordering::Relaxed);
}
