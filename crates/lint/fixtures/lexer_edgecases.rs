//@ expect-clean
// Lexer stress: every construct that once confused line-oriented
// scanning. Raw strings containing comment markers, nested block
// comments, `//` inside string literals, and lifetimes next to char
// literals. Nothing here is an atomic, a deref, or an Smr impl —
// a correct lexer reports zero findings.

fn raw_strings() -> &'static str {
    let a = r"no // comment in here";
    let b = r#"still code: /* not a comment */ "#;
    let c = "slashes // inside a plain string";
    let d = "escaped quote \" then // more";
    if a.len() + c.len() + d.len() > 0 {
        return b;
    }
    return a;
}

/* a block comment
   /* with a nested block comment inside it */
   still inside the outer comment: unsafe { (*p).key } is not code
*/
fn after_nested_comment(x: usize) -> usize {
    let tick = 'a';
    let tricky = '\'';
    if tick == tricky {
        return x;
    }
    return x + 1;
}

fn lifetimes<'a>(s: &'a str) -> &'a str {
    return s;
}
