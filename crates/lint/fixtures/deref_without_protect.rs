//@ expect: R3-protect-before-deref
// The Def. 4.2 Condition 1 violation, statically: a node pointer is
// dereferenced with no dominating protect/begin_op call in the same
// function, and no // LINT: waiver saying whose protection applies.
struct Node {
    key: i64,
}

fn peek(node: *const Node) -> i64 {
    // SAFETY: the author claims the node is alive — but nothing in
    // this function protects it.
    unsafe { (*node).key }
}
