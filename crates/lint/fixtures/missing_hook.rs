//@ expect: R4-hook-coverage
// ERA-CLASS: Quiet non-robust — header present so only the hook gap
// below fires.
// An Smr impl that emits no era-obs hooks and never tallies a reclaim:
// observability coverage silently rots for every consumer.
struct Quiet;

impl Smr for Quiet {
    fn begin_op(&self) {}
    fn end_op(&self) {}
}
