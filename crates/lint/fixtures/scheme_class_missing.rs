//@ expect: R9-scheme-obligation
// An `impl Smr` whose file never declares its ERA class: the
// robustness matrix cannot place the scheme, so R9 demands the
// machine-readable `// ERA-CLASS:` header.

struct Forwarding {
    inner: InnerScheme,
}

impl Smr for Forwarding {
    fn begin_op(&self) {
        self.inner.begin_op();
    }
    fn end_op(&self) {
        self.inner.end_op();
    }
    fn retire(&self, p: usize) {
        self.inner.retire(p);
    }
}
