//! SARIF 2.1.0 emitter + shape check.
//!
//! GitHub code scanning ingests SARIF, so CI uploads the workspace
//! lint report in this format and findings surface as PR annotations.
//! Hand-rolled like every other serializer in the repo (era-bench's
//! `RunRecord`, era-obs's dump headers): one canonical `runs[0]` with
//! the full rule catalog in `tool.driver.rules` and one `result` per
//! [`LintRecord`].
//!
//! Level mapping: `deny → error`, `allow → warning`, `waived → note` +
//! a `suppressions` entry of kind `external` (the baseline file is the
//! external mechanism), which is how SARIF consumers are told "known,
//! justified, not a regression".
//!
//! [`shape_check`] is a miniature JSON parser (again in-house — the
//! container has no serde) that validates the emitted document against
//! the 2.1 shape CI relies on: `version`, `runs[].tool.driver.name`,
//! `runs[].results[].ruleId/message.text/locations[].physicalLocation`
//! with an `artifactLocation.uri` and a positive `region.startLine`.
//! The emitter runs it on its own output before returning, so a shape
//! regression fails loudly at emit time, not at upload time.

use std::fmt::Write as _;

use crate::report::{esc, LintRecord};
use crate::rules::Rule;

/// Renders records as a complete SARIF 2.1.0 document (pretty-printed,
/// trailing newline). Panics if the emitted document fails its own
/// [`shape_check`] — that is a bug in this module, never input-driven.
pub fn to_sarif(records: &[LintRecord]) -> String {
    let mut s = String::with_capacity(4096 + records.len() * 256);
    s.push_str("{\n");
    s.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"era-lint\",\n");
    let _ = writeln!(
        s,
        "          \"version\": \"{}\",",
        esc(env!("CARGO_PKG_VERSION"))
    );
    s.push_str("          \"informationUri\": \"https://github.com/era-smr/era\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        let _ = write!(
            s,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(rule.id()),
            esc(rule.describe())
        );
        s.push_str(if i + 1 < Rule::ALL.len() { ",\n" } else { "\n" });
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let level = match r.level {
            "deny" => "error",
            "waived" => "note",
            _ => "warning",
        };
        s.push_str("        {\n");
        let _ = writeln!(s, "          \"ruleId\": \"{}\",", esc(r.rule));
        let _ = writeln!(s, "          \"level\": \"{level}\",");
        let _ = writeln!(
            s,
            "          \"message\": {{\"text\": \"{}\"}},",
            esc(&r.message)
        );
        if r.level == "waived" {
            s.push_str("          \"suppressions\": [{\"kind\": \"external\"}],\n");
        }
        s.push_str("          \"locations\": [\n            {\n");
        s.push_str("              \"physicalLocation\": {\n");
        let _ = writeln!(
            s,
            "                \"artifactLocation\": {{\"uri\": \"{}\"}},",
            esc(&r.path)
        );
        let _ = writeln!(
            s,
            "                \"region\": {{\"startLine\": {}}}",
            r.line.max(1)
        );
        s.push_str("              }\n            }\n          ]\n        }");
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    if let Err(e) = shape_check(&s) {
        panic!("era-lint emitted malformed SARIF: {e}");
    }
    s
}

/// Validates `text` against the SARIF 2.1 shape this repo relies on.
///
/// Checks: well-formed JSON; `version == "2.1.0"`; `runs` is a
/// non-empty array; each run has `tool.driver.name` and a `results`
/// array; each result has a string `ruleId`, a `message.text`, and at
/// least one location with `physicalLocation.artifactLocation.uri` and
/// an integer `region.startLine >= 1`.
pub fn shape_check(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        return Err("version must be the string \"2.1.0\"".into());
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("runs must be an array")?;
    if runs.is_empty() {
        return Err("runs must be non-empty".into());
    }
    for (ri, run) in runs.iter().enumerate() {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or_else(|| format!("runs[{ri}] missing tool.driver"))?;
        if driver.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("runs[{ri}].tool.driver.name must be a string"));
        }
        let results = run
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("runs[{ri}].results must be an array"))?;
        for (i, res) in results.iter().enumerate() {
            let at = || format!("runs[{ri}].results[{i}]");
            if res.get("ruleId").and_then(Json::as_str).is_none() {
                return Err(format!("{} missing string ruleId", at()));
            }
            if res
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str)
                .is_none()
            {
                return Err(format!("{} missing message.text", at()));
            }
            let locs = res
                .get("locations")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("{} missing locations array", at()))?;
            if locs.is_empty() {
                return Err(format!("{} has no locations", at()));
            }
            for loc in locs {
                let phys = loc
                    .get("physicalLocation")
                    .ok_or_else(|| format!("{} location missing physicalLocation", at()))?;
                if phys
                    .get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .and_then(Json::as_str)
                    .is_none()
                {
                    return Err(format!("{} missing artifactLocation.uri", at()));
                }
                match phys
                    .get("region")
                    .and_then(|r| r.get("startLine"))
                    .and_then(Json::as_num)
                {
                    Some(n) if n >= 1.0 => {}
                    _ => return Err(format!("{} region.startLine must be >= 1", at())),
                }
            }
        }
    }
    Ok(())
}

/// Minimal JSON value for the shape check. Object keys keep last-wins
/// semantics; numbers are f64 (ample for line numbers).
enum Json {
    Null,
    // The shape check never reads the bool's value, but the parser
    // must still accept the type.
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut i = 0;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at offset {i}"));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(kvs) => kvs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(b'"') => parse_string(b, i).map(Json::Str),
        Some(b't') => parse_lit(b, i, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_lit(b, i, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_lit(b, i, "null").map(|_| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        _ => Err(format!("unexpected byte at offset {i}", i = *i)),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {i}", i = *i))
    }
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len()
        && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    let mut out = String::new();
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *i += 1;
            }
            c => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&b[*i..]).map_err(|_| "bad utf-8")?;
                let ch = s.chars().next().ok_or("truncated string")?;
                out.push(ch);
                *i += ch.len_utf8();
                let _ = c;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_array(b: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // '['
    let mut out = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Json::Array(out));
    }
    loop {
        out.push(parse_value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Json::Array(out));
            }
            _ => return Err(format!("expected , or ] at offset {i}", i = *i)),
        }
    }
}

fn parse_object(b: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // '{'
    let mut out = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Json::Object(out));
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected key string at offset {i}", i = *i));
        }
        let key = parse_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected : at offset {i}", i = *i));
        }
        *i += 1;
        let val = parse_value(b, i)?;
        out.push((key, val));
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Json::Object(out));
            }
            _ => return Err(format!("expected , or }} at offset {i}", i = *i)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rule: &'static str, level: &'static str, line: usize) -> LintRecord {
        LintRecord {
            rule,
            level,
            path: "crates/x/src/a.rs".into(),
            line,
            message: format!("msg for {rule}"),
        }
    }

    #[test]
    fn empty_report_is_valid_sarif() {
        let s = to_sarif(&[]);
        assert!(shape_check(&s).is_ok());
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn levels_map_and_waived_is_suppressed() {
        let s = to_sarif(&[
            rec("R1-safety-comment", "deny", 3),
            rec("R3-protect-before-deref", "allow", 9),
            rec("R7-use-after-retire", "waived", 12),
        ]);
        assert!(shape_check(&s).is_ok());
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"level\": \"warning\""));
        assert!(s.contains("\"level\": \"note\""));
        assert_eq!(s.matches("\"suppressions\"").count(), 1);
    }

    #[test]
    fn shape_check_rejects_missing_pieces() {
        assert!(shape_check("{").is_err());
        assert!(shape_check("{\"version\": \"2.0.0\", \"runs\": []}").is_err());
        assert!(shape_check("{\"version\": \"2.1.0\", \"runs\": []}").is_err());
        // A run whose result lacks locations.
        let bad =
            "{\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": {\"name\": \"x\"}}, \
                   \"results\": [{\"ruleId\": \"r\", \"message\": {\"text\": \"m\"}}]}]}";
        let err = shape_check(bad).unwrap_err();
        assert!(err.contains("locations"), "{err}");
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let doc = Json::parse("{\"a\": [1, {\"b\": \"x\\n\\u0041\"}, true, null]}").unwrap();
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x\nA"));
        assert!(Json::parse("{\"a\": 1,}").is_err(), "trailing comma");
        assert!(Json::parse("[1 2]").is_err());
    }
}
