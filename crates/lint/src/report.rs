//! Findings reports: JSON-lines [`LintRecord`]s (the same style as
//! era-bench's `RunRecord` and era-chaos's `ChaosRunRecord` — one
//! hand-rolled JSON object per line, keys always present, no
//! serialization dependency) and the human table.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Finding, Rule};

/// One finding, ready to serialize as a JSON line.
///
/// # Record format
///
/// | key | type | meaning |
/// |---|---|---|
/// | `rule` | string | Stable rule id (`R1-safety-comment`, …). |
/// | `level` | string | `"deny"` (counts toward the exit code), `"allow"` (reported only), or `"waived"` (matched an unexpired baseline waiver). |
/// | `path` | string | Workspace-relative file path. |
/// | `line` | int | 1-based source line. |
/// | `message` | string | Human-readable explanation. |
#[derive(Debug, Clone)]
pub struct LintRecord {
    /// Stable rule id.
    pub rule: &'static str,
    /// `"deny"`, `"allow"`, or `"waived"`.
    pub level: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl LintRecord {
    /// Builds a record from a finding and its effective level.
    pub fn new(f: &Finding, denied: bool) -> LintRecord {
        LintRecord {
            rule: f.rule.id(),
            level: if denied { "deny" } else { "allow" },
            path: f.path.clone(),
            line: f.line,
            message: f.message.clone(),
        }
    }

    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push('{');
        let _ = write!(s, "\"rule\":\"{}\"", esc(self.rule));
        let _ = write!(s, ",\"level\":\"{}\"", esc(self.level));
        let _ = write!(s, ",\"path\":\"{}\"", esc(&self.path));
        let _ = write!(s, ",\"line\":{}", self.line);
        let _ = write!(s, ",\"message\":\"{}\"", esc(&self.message));
        s.push('}');
        s
    }
}

/// JSON string escaping, shared with the SARIF emitter.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the human table: findings grouped by rule, then a summary
/// line. Returns the empty string when there is nothing to say.
pub fn render_table(records: &[LintRecord], files_scanned: usize) -> String {
    let mut out = String::new();
    let mut by_rule: BTreeMap<&str, Vec<&LintRecord>> = BTreeMap::new();
    for r in records {
        by_rule.entry(r.rule).or_default().push(r);
    }
    for rule in Rule::ALL {
        let Some(rs) = by_rule.get(rule.id()) else {
            continue;
        };
        let _ = writeln!(
            out,
            "{} — {} ({} finding(s))",
            rule.id(),
            rule.describe(),
            rs.len()
        );
        for r in rs {
            let _ = writeln!(out, "  [{}] {}:{}  {}", r.level, r.path, r.line, r.message);
        }
    }
    let denied = records.iter().filter(|r| r.level == "deny").count();
    let waived = records.iter().filter(|r| r.level == "waived").count();
    let allowed = records.len() - denied - waived;
    let _ = writeln!(
        out,
        "era-lint: {} finding(s) ({} denied, {} allowed, {} waived) across {} file(s) scanned",
        records.len(),
        denied,
        allowed,
        waived,
        files_scanned
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape_and_escaping() {
        let r = LintRecord {
            rule: "R1-safety-comment",
            level: "deny",
            path: "crates/x/src/a.rs".into(),
            line: 7,
            message: "quote \" and back\\slash".into(),
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"R1-safety-comment\""));
        assert!(j.contains("\"line\":7"));
        assert!(j.contains("quote \\\" and back\\\\slash"));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn table_groups_and_summarizes() {
        let recs = vec![
            LintRecord {
                rule: "R1-safety-comment",
                level: "deny",
                path: "a.rs".into(),
                line: 1,
                message: "m".into(),
            },
            LintRecord {
                rule: "R5-guard-must-use",
                level: "allow",
                path: "b.rs".into(),
                line: 2,
                message: "n".into(),
            },
        ];
        let t = render_table(&recs, 3);
        assert!(t.contains("R1-safety-comment"));
        assert!(t.contains("[allow] b.rs:2"));
        assert!(t.contains("2 finding(s) (1 denied, 1 allowed, 0 waived) across 3 file(s)"));
    }
}
