//! # era-lint — workspace SMR-protocol static analyzer
//!
//! The ERA theorem's premise is that reclamation-protocol misuse is
//! subtle and adversarial (Figure 1): the mistakes that matter — a
//! deref outside a protected region, a relaxed store whose fence
//! pairing quietly rotted, an `unsafe` block whose justification lives
//! only in a reviewer's head — are exactly the ones runtime oracles
//! catch *after* the fact. This crate checks them **before execution**,
//! in the spirit of RCU's sparse-based address-space checker: the
//! repo's written discipline (SAFETY comments, `SAFETY(ordering)`
//! justifications, protect-before-deref in `era-ds`, the era-obs hook
//! set, `#[must_use]` guards) becomes machine-checked facts.
//!
//! The five rules are documented on [`Rule`] and mapped onto the
//! paper's definitions in DESIGN §3.10 (including the known
//! false-negative envelope of the syntactic dominance check — this is
//! a linter, not a verifier). The workspace builds offline, so the
//! analyzer parses Rust with its own minimal lexer ([`lexer`]) rather
//! than `syn`; rules operate on token patterns plus the comment
//! stream, which is where the checked discipline actually lives.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p era-lint -- check .                 # whole workspace, all rules denied
//! cargo run -p era-lint -- check . --allow R3      # R3 reported but not fatal
//! cargo run -p era-lint -- check . --report lint.jsonl
//! cargo run -p era-lint -- fixtures crates/lint/fixtures
//! cargo run -p era-lint -- rules
//! ```
//!
//! Exit codes: `0` clean, `1` denied findings (or fixture
//! expectations unmet), `2` usage/IO error.
//!
//! The golden-fixture tree (`crates/lint/fixtures/`) holds known-bad
//! snippets, each asserted — by `era-lint fixtures` in CI and by the
//! crate's tests — to trip exactly its rule, plus a clean fixture; the
//! workspace self-check test asserts `check .` stays at zero findings
//! on `main`.

pub mod baseline;
pub mod flow;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sarif;

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

pub use model::SourceFile;
pub use report::{render_table, LintRecord};
pub use rules::{check_file, check_unit, Finding, Rule, Scope};

/// Directory names never descended into: build output, VCS state,
/// vendored shims (third-party stand-ins with their own conventions)
/// and the intentionally-rule-breaking fixture tree.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "shims", "fixtures", "node_modules"];

/// Check configuration: which rules are denied (fatal) vs. allowed
/// (reported only). Rules absent from both sets default to denied.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Rules downgraded to warnings.
    pub allow: BTreeSet<Rule>,
    /// Rules explicitly denied (overrides `allow` when in both).
    pub deny: BTreeSet<Rule>,
}

impl LintConfig {
    /// Whether findings of `rule` count toward the failing exit code.
    pub fn is_denied(&self, rule: Rule) -> bool {
        self.deny.contains(&rule) || !self.allow.contains(&rule)
    }
}

/// Outcome of a tree check.
#[derive(Debug)]
pub struct CheckReport {
    /// All findings as records (denied, allowed and waived).
    pub records: Vec<LintRecord>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Baseline hygiene notes (expired or unused waivers) — worth
    /// printing, never fatal.
    pub baseline_notes: Vec<String>,
}

impl CheckReport {
    /// Count of findings at deny level (waived findings don't count).
    pub fn denied(&self) -> usize {
        self.records.iter().filter(|r| r.level == "deny").count()
    }
}

/// Recursively collects `.rs` files under `root`, skipping
/// [`SKIP_DIRS`]. A `root` that is itself a file is returned as-is.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if root.is_file() {
        out.push(root.to_path_buf());
        return Ok(out);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Path label used in findings: relative to `root` when possible,
/// with forward slashes.
fn label_for(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// The default baseline location, relative to the checked root.
pub const DEFAULT_BASELINE: &str = "crates/lint/waivers.txt";

/// Checks every `.rs` file under `root` with path-scoped rules,
/// applying the default baseline (`crates/lint/waivers.txt` under
/// `root`) when it exists.
pub fn check_tree(root: &Path, cfg: &LintConfig) -> std::io::Result<CheckReport> {
    let bpath = root.join(DEFAULT_BASELINE);
    let base = if bpath.is_file() {
        Some(
            baseline::load(&bpath)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
        )
    } else {
        None
    };
    check_tree_with(root, cfg, base.as_ref())
}

/// [`check_tree`] with an explicit (or no) baseline. All files are
/// parsed up front and checked as **one unit**, so the cross-file
/// rules (R8 fence-pairing, R9 scheme obligations vs. the scenarios
/// invariant table) see the whole workspace at once.
pub fn check_tree_with(
    root: &Path,
    cfg: &LintConfig,
    base: Option<&baseline::Baseline>,
) -> std::io::Result<CheckReport> {
    let files = collect_rs_files(root)?;
    let mut parsed = Vec::with_capacity(files.len());
    for path in &files {
        let text = fs::read_to_string(path)?;
        parsed.push(SourceFile::parse(&label_for(root, path), &text));
    }
    let mut records = Vec::new();
    for f in check_unit(&parsed, Scope::Auto) {
        let denied = cfg.is_denied(f.rule);
        records.push(LintRecord::new(&f, denied));
    }
    let mut baseline_notes = Vec::new();
    if let Some(base) = base {
        let out = base.apply(&mut records, baseline::today_utc());
        for e in out.expired {
            baseline_notes.push(format!("expired waiver (its finding resurfaces): {e}"));
        }
        for u in out.unused {
            baseline_notes.push(format!("unused waiver (delete it): {u}"));
        }
    }
    Ok(CheckReport {
        records,
        files_scanned: files.len(),
        baseline_notes,
    })
}

/// One fixture's verdict from [`run_fixtures`].
#[derive(Debug)]
pub struct FixtureResult {
    /// Fixture file name.
    pub name: String,
    /// `None` = behaved as declared; `Some(why)` = mismatch.
    pub error: Option<String>,
}

/// Runs the golden-fixture harness over `dir`.
///
/// Each fixture declares its expectations in header comments:
/// `//@ expect: <rule-id>` (may repeat) or `//@ expect-clean`. A
/// fixture passes when every expected rule fires at least once and
/// **no other rule fires at all** — "trips exactly its rule". All
/// rules run un-scoped ([`Scope::All`]), since fixtures live outside
/// the scoped source trees.
pub fn run_fixtures(dir: &Path) -> std::io::Result<Vec<FixtureResult>> {
    let mut out = Vec::new();
    let mut files = collect_rs_files_unfiltered(dir)?;
    files.sort();
    for path in files {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = fs::read_to_string(&path)?;
        let mut expect: BTreeSet<Rule> = BTreeSet::new();
        let mut expect_clean = false;
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("//@ expect:") {
                match Rule::parse(rest) {
                    Some(r) => {
                        expect.insert(r);
                    }
                    None => {
                        out.push(FixtureResult {
                            name: name.clone(),
                            error: Some(format!("unknown rule in expectation: {}", rest.trim())),
                        });
                    }
                }
            } else if line.starts_with("//@ expect-clean") {
                expect_clean = true;
            }
        }
        if expect.is_empty() && !expect_clean {
            out.push(FixtureResult {
                name,
                error: Some("fixture declares no //@ expect: or //@ expect-clean header".into()),
            });
            continue;
        }
        let file = SourceFile::parse(&name, &text);
        let findings = check_file(&file, Scope::All);
        let fired: BTreeSet<Rule> = findings.iter().map(|f| f.rule).collect();
        let error = if expect_clean && !fired.is_empty() {
            Some(format!("expected clean, but fired: {}", ids(&fired)))
        } else if !expect_clean && fired != expect {
            Some(format!(
                "expected exactly {{{}}}, but fired {{{}}}",
                ids(&expect),
                ids(&fired)
            ))
        } else {
            None
        };
        out.push(FixtureResult { name, error });
    }
    Ok(out)
}

fn ids(rules: &BTreeSet<Rule>) -> String {
    rules.iter().map(|r| r.id()).collect::<Vec<_>>().join(", ")
}

/// Like [`collect_rs_files`] but without the `fixtures` skip — used to
/// scan the fixture tree itself.
fn collect_rs_files_unfiltered(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_file() && path.to_string_lossy().ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_to_deny() {
        let cfg = LintConfig::default();
        assert!(cfg.is_denied(Rule::SafetyComment));
        let mut cfg = LintConfig::default();
        cfg.allow.insert(Rule::ProtectBeforeDeref);
        assert!(!cfg.is_denied(Rule::ProtectBeforeDeref));
        assert!(cfg.is_denied(Rule::HookCoverage));
        cfg.deny.insert(Rule::ProtectBeforeDeref);
        assert!(cfg.is_denied(Rule::ProtectBeforeDeref), "deny wins");
    }
}
