//! era-lint CLI: `check`, `fixtures`, `rules`.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use era_lint::{
    baseline, check_tree_with, render_table, run_fixtures, sarif, LintConfig, Rule,
    DEFAULT_BASELINE,
};

fn usage() -> ExitCode {
    eprintln!(
        "era-lint — workspace SMR-protocol static analyzer\n\
         \n\
         USAGE:\n\
         \x20 era-lint check [PATH] [--allow RULE]... [--deny RULE]... [--report FILE]\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 [--sarif-out FILE] [--baseline FILE] [--no-baseline] [--quiet]\n\
         \x20 era-lint fixtures [DIR]\n\
         \x20 era-lint rules\n\
         \n\
         RULE accepts R1..R9 or a rule id (see `era-lint rules`).\n\
         The baseline defaults to <PATH>/crates/lint/waivers.txt when present.\n\
         Exit codes: 0 clean, 1 findings/expectation failures, 2 usage or IO error."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("fixtures") => cmd_fixtures(&args[1..]),
        Some("rules") => {
            for r in Rule::ALL {
                println!("{:28} {}", r.id(), r.describe());
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn parse_rule_arg(flag: &str, value: Option<&String>) -> Result<Rule, ExitCode> {
    let Some(v) = value else {
        eprintln!("era-lint: {flag} needs a rule argument");
        return Err(ExitCode::from(2));
    };
    Rule::parse(v).ok_or_else(|| {
        eprintln!("era-lint: unknown rule {v:?} (see `era-lint rules`)");
        ExitCode::from(2)
    })
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut cfg = LintConfig::default();
    let mut report_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--allow" => match parse_rule_arg("--allow", args.get(i + 1)) {
                Ok(r) => {
                    cfg.allow.insert(r);
                    i += 1;
                }
                Err(e) => return e,
            },
            "--deny" => match parse_rule_arg("--deny", args.get(i + 1)) {
                Ok(r) => {
                    cfg.deny.insert(r);
                    i += 1;
                }
                Err(e) => return e,
            },
            "--report" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("era-lint: --report needs a path");
                    return ExitCode::from(2);
                };
                report_path = Some(PathBuf::from(p));
                i += 1;
            }
            "--sarif-out" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("era-lint: --sarif-out needs a path");
                    return ExitCode::from(2);
                };
                sarif_path = Some(PathBuf::from(p));
                i += 1;
            }
            "--baseline" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("era-lint: --baseline needs a path");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(p));
                i += 1;
            }
            "--no-baseline" => no_baseline = true,
            "--quiet" => quiet = true,
            flag if flag.starts_with('-') => {
                eprintln!("era-lint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
        i += 1;
    }
    // Resolve the baseline: explicit path > default location > none.
    // A malformed baseline is a hard error — a waiver file that cannot
    // be fully trusted suppresses nothing.
    let base = if no_baseline {
        None
    } else {
        let path = baseline_path
            .clone()
            .or_else(|| Some(root.join(DEFAULT_BASELINE)).filter(|p| p.is_file()));
        match path {
            Some(p) => match baseline::load(&p) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("era-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            None => None,
        }
    };
    let report = match check_tree_with(&root, &cfg, base.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("era-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = report_path {
        let mut body = String::new();
        for r in &report.records {
            body.push_str(&r.to_json());
            body.push('\n');
        }
        if let Err(e) = std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes()))
        {
            eprintln!("era-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = sarif_path {
        let doc = sarif::to_sarif(&report.records);
        if let Err(e) = std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes())) {
            eprintln!("era-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", render_table(&report.records, report.files_scanned));
        for note in &report.baseline_notes {
            println!("era-lint: note: {note}");
        }
    }
    if report.denied() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_fixtures(args: &[String]) -> ExitCode {
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("crates/lint/fixtures"));
    let results = match run_fixtures(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("era-lint: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    if results.is_empty() {
        eprintln!("era-lint: no fixtures found under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failed = 0usize;
    for r in &results {
        match &r.error {
            None => println!("ok   {}", r.name),
            Some(why) => {
                failed += 1;
                println!("FAIL {} — {}", r.name, why);
            }
        }
    }
    println!(
        "era-lint fixtures: {}/{} behaved as declared",
        results.len() - failed,
        results.len()
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
