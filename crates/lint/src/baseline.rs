//! Waiver baseline: the checked-in list of known, justified findings.
//!
//! `era-lint check` fails CI on any denied finding, so intentional
//! rule departures need a durable, reviewable escape hatch — not a
//! rule downgrade (which would silence *future* regressions too), but
//! a per-site waiver that names the rule, the file, a one-line
//! justification, and an expiry date after which the finding
//! resurfaces. The format is line-oriented and diff-friendly:
//!
//! ```text
//! # comments and blank lines are ignored
//! R8-fence-pairing | crates/smr/src/foo.rs | partner lives in asm, linter can't see it | expires=2026-12-31
//! ```
//!
//! Fields are `|`-separated: rule id, workspace-relative path,
//! justification (must be non-empty — an unexplained waiver is a
//! parse error), and `expires=YYYY-MM-DD`. A waiver suppresses any
//! finding of that rule in that file (level `deny → waived`) through
//! its expiry date inclusive. Expired waivers are inert — the finding
//! comes back — and are reported so the baseline gets pruned. Unused
//! waivers are reported too, so the file can only shrink toward the
//! truth.

use std::fs;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::report::LintRecord;

/// One parsed waiver line.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id the waiver applies to (e.g. `R8-fence-pairing`).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// One-line justification (non-empty by construction).
    pub note: String,
    /// Expiry date `(year, month, day)`; valid through this date
    /// inclusive.
    pub expires: (i64, u32, u32),
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All waivers, in file order.
    pub waivers: Vec<Waiver>,
}

/// Outcome of applying a baseline to a record set.
#[derive(Debug, Default)]
pub struct ApplyOutcome {
    /// Findings downgraded to `waived`.
    pub waived: usize,
    /// Waivers past their expiry date (the findings, if any, stayed
    /// denied). `(rule, path, expiry)` triples.
    pub expired: Vec<String>,
    /// Unexpired waivers that matched nothing — candidates for
    /// deletion.
    pub unused: Vec<String>,
}

/// Parses a baseline file's text. Any malformed line is an error
/// naming its line number — a baseline that cannot be fully trusted
/// suppresses nothing.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut waivers = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let parts: Vec<&str> = line.split('|').map(str::trim).collect();
        if parts.len() != 4 {
            return Err(format!(
                "baseline line {lineno}: expected 4 `|`-separated fields \
                 (rule | path | justification | expires=YYYY-MM-DD), got {}",
                parts.len()
            ));
        }
        let (rule, path, note, exp) = (parts[0], parts[1], parts[2], parts[3]);
        if rule.is_empty() || path.is_empty() {
            return Err(format!("baseline line {lineno}: empty rule or path"));
        }
        if note.is_empty() {
            return Err(format!(
                "baseline line {lineno}: justification is required — every waiver says why"
            ));
        }
        let date = exp.strip_prefix("expires=").ok_or_else(|| {
            format!("baseline line {lineno}: fourth field must be expires=YYYY-MM-DD")
        })?;
        let expires = parse_date(date).ok_or_else(|| {
            format!("baseline line {lineno}: bad date `{date}` (want YYYY-MM-DD)")
        })?;
        waivers.push(Waiver {
            rule: rule.to_string(),
            path: path.to_string(),
            note: note.to_string(),
            expires,
        });
    }
    Ok(Baseline { waivers })
}

/// Loads and parses a baseline file from disk.
pub fn load(path: &Path) -> Result<Baseline, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text)
}

impl Baseline {
    /// Downgrades matching denied findings to `waived` and reports
    /// expired/unused waivers. `today` is `(year, month, day)` UTC —
    /// see [`today_utc`].
    pub fn apply(&self, records: &mut [LintRecord], today: (i64, u32, u32)) -> ApplyOutcome {
        let mut out = ApplyOutcome::default();
        for w in &self.waivers {
            let live = w.expires >= today;
            let mut matched = false;
            for r in records.iter_mut() {
                if r.rule == w.rule && r.path == w.path {
                    matched = true;
                    if live && r.level == "deny" {
                        r.level = "waived";
                        out.waived += 1;
                    }
                }
            }
            let tag = format!(
                "{} | {} | {} | expires={:04}-{:02}-{:02}",
                w.rule, w.path, w.note, w.expires.0, w.expires.1, w.expires.2
            );
            if !live {
                out.expired.push(tag);
            } else if !matched {
                out.unused.push(tag);
            }
        }
        out
    }
}

fn parse_date(s: &str) -> Option<(i64, u32, u32)> {
    let mut it = s.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some((y, m, d))
}

/// Today's UTC civil date from the system clock (no chrono in the
/// container; Hinnant's `civil_from_days`).
pub fn today_utc() -> (i64, u32, u32) {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    civil_from_days(secs.div_euclid(86_400))
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rule: &'static str, path: &str, level: &'static str) -> LintRecord {
        LintRecord {
            rule,
            level,
            path: path.into(),
            line: 1,
            message: "m".into(),
        }
    }

    #[test]
    fn parses_and_waives() {
        let b = parse(
            "# header comment\n\
             R8-fence-pairing | crates/a.rs | partner is in generated code | expires=2099-01-01\n",
        )
        .unwrap();
        let mut recs = vec![
            rec("R8-fence-pairing", "crates/a.rs", "deny"),
            rec("R8-fence-pairing", "crates/b.rs", "deny"),
        ];
        let out = b.apply(&mut recs, (2026, 8, 7));
        assert_eq!(out.waived, 1);
        assert_eq!(recs[0].level, "waived");
        assert_eq!(recs[1].level, "deny");
        assert!(out.expired.is_empty() && out.unused.is_empty());
    }

    #[test]
    fn expired_waiver_is_inert_and_reported() {
        let b = parse("R1-safety-comment | a.rs | old excuse | expires=2020-01-01\n").unwrap();
        let mut recs = vec![rec("R1-safety-comment", "a.rs", "deny")];
        let out = b.apply(&mut recs, (2026, 8, 7));
        assert_eq!(recs[0].level, "deny", "expired waiver must not suppress");
        assert_eq!(out.expired.len(), 1);
        assert_eq!(out.waived, 0);
    }

    #[test]
    fn expiry_date_is_inclusive() {
        let b = parse("R1-safety-comment | a.rs | reason | expires=2026-08-07\n").unwrap();
        let mut recs = vec![rec("R1-safety-comment", "a.rs", "deny")];
        let out = b.apply(&mut recs, (2026, 8, 7));
        assert_eq!(out.waived, 1);
    }

    #[test]
    fn unused_waivers_are_reported() {
        let b = parse("R2-ordering-justified | ghost.rs | ok | expires=2099-01-01\n").unwrap();
        let mut recs = vec![];
        let out = b.apply(&mut recs, (2026, 8, 7));
        assert_eq!(out.unused.len(), 1);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("just some text\n").is_err());
        assert!(
            parse("R1 | a.rs | | expires=2099-01-01\n").is_err(),
            "empty note"
        );
        assert!(
            parse("R1 | a.rs | why | 2099-01-01\n").is_err(),
            "missing expires="
        );
        assert!(
            parse("R1 | a.rs | why | expires=2099-13-01\n").is_err(),
            "bad month"
        );
    }

    #[test]
    fn civil_date_conversion() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // 2026-08-07 is 20_672 days after the epoch.
        assert_eq!(civil_from_days(20_672), (2026, 8, 7));
    }
}
