//! The pointer life-cycle dataflow pass (rules R6/R7).
//!
//! Meyer & Wolff's pointer life-cycle types observation, reduced to a
//! linter: each local raw pointer moves through a small state machine —
//! `unprotected → protected(guard) → deref-ok → retired` — and the SMR
//! discipline is exactly the claim that derefs happen only in the
//! `protected` window and nothing touches a value after it flows into
//! `retire`. This pass walks each function's token tree
//! ([`crate::parser`]) with a scope stack (the CFG-lite model: blocks
//! are scopes, statements are `;`-separated leaf runs, branches are
//! walked in source order) and tracks:
//!
//! * **guards** — locals bound from a `register()` call. A guard dies
//!   at its scope's closing brace or at an explicit `drop(guard)`.
//! * **protected pointers** — locals bound from `load(guard, …)`,
//!   `protect(…)`, `try_protect(…)` or `protect_alias(…)`. Each
//!   remembers which *local* guard (if any) protects it; pointers
//!   protected through a caller-owned context (`ctx` parameters) are
//!   "ambient" and exempt from escape checks — their guard outlives
//!   this function by construction.
//! * **retired pointers** — tracked locals that flowed into a
//!   `retire(…)` argument list. The state flips *after* the call's
//!   argument group is walked, so `retire(ctx, p as *mut u8,
//!   &(*p).header, …)` does not self-report.
//!
//! Detected misuses:
//!
//! * deref (`&*p`, `&mut *p`, `(*p).f`, statement-position `*p`) of a
//!   retired pointer, or re-protecting one — **R7 use-after-retire**;
//! * deref after the protecting guard was `drop`ped — **R7**;
//! * deref after the protecting guard's scope closed, or `return`ing a
//!   pointer whose local guard does not escape with it — **R6
//!   guard-escape**.
//!
//! Known false-negative envelope (documented in DESIGN §3.14): one
//! forward pass, so loop-carried orders (`retire` at the bottom
//! reaching a deref at the top of the next iteration) and trailing-
//! expression returns are not seen; stores of protected pointers into
//! longer-lived structures are not tracked. Branches are walked in
//! source order, so a retire in an early `match` arm conservatively
//! poisons later arms — in practice retires sit at the end of their
//! arm and real code stays quiet (the workspace runs at zero
//! findings).

use std::collections::{BTreeSet, HashMap};

use crate::lexer::{Tok, TokKind};
use crate::parser::{parse_range, Group, Tree};

/// Which rule a flow issue belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// R6: a protected pointer outlived its guard's scope.
    GuardEscape,
    /// R7: a value was derefed or re-protected after retire/guard-drop.
    UseAfterRetire,
}

/// One issue from the life-cycle pass.
#[derive(Debug)]
pub struct FlowIssue {
    /// Rule bucket.
    pub kind: FlowKind,
    /// 1-based line of the offending use.
    pub line: usize,
    /// Human-readable explanation (names the local and the event that
    /// invalidated it).
    pub message: String,
}

/// Calls that bind a guard when they appear in a `let` initializer.
const GUARD_FNS: [&str; 1] = ["register"];

/// Calls that put a pointer into the protected state.
const PROTECT_FNS: [&str; 4] = ["load", "protect", "try_protect", "protect_alias"];

/// How a guard became unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardEnd {
    Dropped,
    ScopeEnd,
}

#[derive(Debug, Clone)]
enum Binding {
    Guard,
    Ptr(PtrState),
    Other,
}

#[derive(Debug, Clone, Default)]
struct PtrState {
    /// Name of the protecting *local* guard; `None` = ambient
    /// (caller-owned context parameter).
    guard: Option<String>,
    /// Set when the protecting guard died: (line, how).
    guard_end: Option<(usize, GuardEnd)>,
    /// Set when the pointer flowed into `retire`: line of the call.
    retired: Option<usize>,
}

struct Analyzer<'a> {
    toks: &'a [Tok],
    scopes: Vec<HashMap<String, Binding>>,
    issues: Vec<FlowIssue>,
    /// (local name, issue discriminant) pairs already reported — one
    /// finding per local per failure mode keeps reports readable.
    reported: BTreeSet<(String, u8)>,
}

/// Runs the life-cycle pass over one function body (inclusive token
/// range covering the braces).
pub fn analyze_body(toks: &[Tok], body: (usize, usize)) -> Vec<FlowIssue> {
    let trees = parse_range(toks, body.0, body.1);
    let mut a = Analyzer {
        toks,
        scopes: Vec::new(),
        issues: Vec::new(),
        reported: BTreeSet::new(),
    };
    a.walk_seq(&trees);
    a.issues
}

impl<'a> Analyzer<'a> {
    fn tok(&self, tree: &Tree) -> Option<&'a Tok> {
        tree.leaf().map(|i| &self.toks[i])
    }

    fn lookup(&mut self, name: &str) -> Option<&mut Binding> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    fn bind(&mut self, name: &str, b: Binding) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), b);
        }
    }

    fn report(&mut self, name: &str, disc: u8, kind: FlowKind, line: usize, message: String) {
        if self.reported.insert((name.to_string(), disc)) {
            self.issues.push(FlowIssue {
                kind,
                line,
                message,
            });
        }
    }

    /// Marks every tracked pointer protected by `guard` as orphaned.
    fn end_guard(&mut self, guard: &str, line: usize, how: GuardEnd) {
        for scope in &mut self.scopes {
            for b in scope.values_mut() {
                if let Binding::Ptr(p) = b {
                    if p.guard.as_deref() == Some(guard) && p.guard_end.is_none() {
                        p.guard_end = Some((line, how));
                    }
                }
            }
        }
    }

    /// Walks a `{}` group as a scope.
    fn walk_block(&mut self, g: &Group) {
        self.scopes.push(HashMap::new());
        self.walk_seq(&g.children);
        let popped = self.scopes.pop().unwrap_or_default();
        let close_line = self.toks[g.close.min(self.toks.len() - 1)].line;
        for (name, b) in popped {
            if matches!(b, Binding::Guard) {
                self.end_guard(&name, close_line, GuardEnd::ScopeEnd);
            }
        }
    }

    /// The statement/expression walker: one pass over a sibling
    /// sequence, recognizing `let`, assignments, `return`, the
    /// retire/protect/drop call families, deref patterns, and nested
    /// groups.
    fn walk_seq(&mut self, trees: &[Tree]) {
        let mut i = 0;
        while i < trees.len() {
            // Nested `fn` items are analyzed as their own FnSpans —
            // skip them here so their issues are not double-reported.
            if self.tok(&trees[i]).is_some_and(|t| t.is_ident("fn")) {
                i = self.skip_fn_item(trees, i);
                continue;
            }
            if self.tok(&trees[i]).is_some_and(|t| t.is_ident("let")) {
                i = self.handle_let(trees, i);
                continue;
            }
            if self.tok(&trees[i]).is_some_and(|t| t.is_ident("return")) {
                i = self.handle_return(trees, i);
                continue;
            }
            if let Some(ni) = self.try_assignment(trees, i) {
                i = ni;
                continue;
            }
            i = self.walk_one(trees, i);
        }
    }

    /// Walks a single tree (plus any sibling lookahead its pattern
    /// needs); returns the next index.
    fn walk_one(&mut self, trees: &[Tree], i: usize) -> usize {
        if let Some(t) = self.tok(&trees[i]) {
            // retire(…): walk args first (uses inside the call are
            // pre-retire), then flip tracked args to retired.
            if t.is_ident("retire") {
                if let Some(g) = trees.get(i + 1).and_then(|x| x.group()) {
                    if g.delim == '(' {
                        let line = t.line;
                        self.walk_seq(&g.children);
                        self.retire_args(g, line);
                        return i + 2;
                    }
                }
            }
            // protect-family call: re-protecting a retired value is R7.
            if PROTECT_FNS.contains(&t.text.as_str()) {
                if let Some(g) = trees.get(i + 1).and_then(|x| x.group()) {
                    if g.delim == '(' {
                        let line = t.line;
                        self.walk_seq(&g.children);
                        self.check_reprotect(g, line);
                        return i + 2;
                    }
                }
            }
            // drop(x): kills a guard (orphaning its pointers) or
            // forgets a pointer.
            if t.is_ident("drop") {
                if let Some(g) = trees.get(i + 1).and_then(|x| x.group()) {
                    if g.delim == '(' {
                        let line = t.line;
                        if let Some(name) = first_ident(g, self.toks) {
                            match self.lookup(&name) {
                                Some(Binding::Guard) => {
                                    self.end_guard(&name, line, GuardEnd::Dropped)
                                }
                                Some(b @ Binding::Ptr(_)) => *b = Binding::Other,
                                _ => {}
                            }
                        }
                        return i + 2;
                    }
                }
            }
            // Deref patterns over a tracked local.
            if t.is_punct('&') {
                let mut j = i + 1;
                if self.tok_at(trees, j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if self.tok_at(trees, j).is_some_and(|t| t.is_punct('*')) {
                    if let Some(name) = self.ident_at(trees, j + 1) {
                        let line = self.tok(&trees[j]).map_or(t.line, |t| t.line);
                        self.check_deref(&name, line);
                    }
                }
            } else if t.is_punct('*') {
                // Statement-position deref (`*p = v`, `f(*p)`): only
                // when nothing multiplication-shaped precedes.
                let prefix_ok = i == 0
                    || self
                        .tok(&trees[i - 1])
                        .is_some_and(|p| p.kind == TokKind::Punct && !")]".contains(&p.text));
                if prefix_ok {
                    if let Some(name) = self.ident_at(trees, i + 1) {
                        self.check_deref(&name, t.line);
                    }
                }
            }
            return i + 1;
        }
        // A group: `{}` is a scope; `()`/`[]` are transparent. `(*p).f`
        // arrives here as a group whose first children are `*`, `p`.
        if let Some(g) = trees[i].group() {
            if g.delim == '{' {
                self.walk_block(g);
            } else {
                self.walk_seq(&g.children);
            }
        }
        i + 1
    }

    fn tok_at(&self, trees: &[Tree], i: usize) -> Option<&'a Tok> {
        trees.get(i).and_then(|t| self.tok(t))
    }

    fn ident_at(&self, trees: &[Tree], i: usize) -> Option<String> {
        let t = self.tok_at(trees, i)?;
        (t.kind == TokKind::Ident).then(|| t.text.clone())
    }

    /// Skips a nested `fn` item: consumes up to and including its body
    /// group (or the `;` of a bodyless declaration).
    fn skip_fn_item(&mut self, trees: &[Tree], mut i: usize) -> usize {
        i += 1;
        while i < trees.len() {
            if let Some(t) = self.tok(&trees[i]) {
                if t.is_punct(';') {
                    return i + 1;
                }
            }
            if let Some(g) = trees[i].group() {
                if g.delim == '{' {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }

    /// Handles `let [mut] NAME … = RHS ;`. Returns the index past the
    /// statement.
    fn handle_let(&mut self, trees: &[Tree], i: usize) -> usize {
        let end = self.stmt_end(trees, i);
        let mut j = i + 1;
        if self.tok_at(trees, j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let name = self.ident_at(trees, j);
        // First `=` leaf at this level separates pattern from RHS.
        let eq = (j..end).find(|&k| {
            self.tok_at(trees, k).is_some_and(|t| t.is_punct('='))
                && !self.tok_at(trees, k + 1).is_some_and(|t| t.is_punct('='))
        });
        if let Some(eq) = eq {
            let rhs = &trees[eq + 1..end];
            self.walk_seq(rhs);
            if let Some(name) = name {
                let b = self.classify_rhs(rhs);
                self.bind(&name, b);
            }
        } else if let Some(name) = name {
            // `let p;` — bound, classified by its first assignment.
            self.bind(&name, Binding::Other);
        }
        end + 1
    }

    /// Recognizes `NAME = RHS ;` reassignment of a tracked local.
    /// Returns the next index when it consumed a statement.
    fn try_assignment(&mut self, trees: &[Tree], i: usize) -> Option<usize> {
        let name = self.ident_at(trees, i)?;
        self.lookup(&name)?;
        let eq = self.tok_at(trees, i + 1)?;
        if !eq.is_punct('=') || self.tok_at(trees, i + 2).is_some_and(|t| t.is_punct('=')) {
            return None;
        }
        let end = self.stmt_end(trees, i);
        let rhs = &trees[i + 2..end];
        self.walk_seq(rhs);
        let b = self.classify_rhs(rhs);
        if let Some(slot) = self.lookup(&name) {
            *slot = b;
        }
        Some(end + 1)
    }

    /// Handles `return EXPR ;`: a returned pointer whose *local* guard
    /// stays behind escapes its protection (R6) — unless the guard is
    /// returned alongside it.
    fn handle_return(&mut self, trees: &[Tree], i: usize) -> usize {
        let end = self.stmt_end(trees, i);
        let expr = &trees[i + 1..end];
        self.walk_seq(expr);
        let mut names = Vec::new();
        collect_idents(expr, self.toks, &mut names);
        let returned: BTreeSet<&str> = names.iter().map(String::as_str).collect();
        let line = self.tok(&trees[i]).map_or(0, |t| t.line);
        let mut findings = Vec::new();
        for name in &names {
            if let Some(Binding::Ptr(p)) = self.lookup(name) {
                if p.retired.is_none() {
                    if let Some(g) = p.guard.clone() {
                        if !returned.contains(g.as_str()) {
                            findings.push((name.clone(), g));
                        }
                    }
                }
            }
        }
        for (name, g) in findings {
            self.report(
                &name,
                0,
                FlowKind::GuardEscape,
                line,
                format!(
                    "`{name}` is protected by local guard `{g}` but is returned without it — \
                     the protection ends at this function's exit"
                ),
            );
        }
        end + 1
    }

    /// Index of the `;` ending the statement starting at `i` (or the
    /// sequence end).
    fn stmt_end(&self, trees: &[Tree], i: usize) -> usize {
        (i..trees.len())
            .find(|&k| self.tok_at(trees, k).is_some_and(|t| t.is_punct(';')))
            .unwrap_or(trees.len())
    }

    /// Classifies a `let`/assignment RHS into a binding.
    fn classify_rhs(&mut self, rhs: &[Tree]) -> Binding {
        // Alias of a tracked local: `let q = p;`
        if rhs.len() == 1 {
            if let Some(name) = self.ident_at(rhs, 0) {
                if let Some(b) = self.lookup(&name) {
                    return b.clone();
                }
            }
        }
        // First guard- or protect-establishing call anywhere in the RHS.
        if let Some(binding) = self.find_call_classification(rhs) {
            return binding;
        }
        Binding::Other
    }

    fn find_call_classification(&mut self, trees: &[Tree]) -> Option<Binding> {
        let mut i = 0;
        while i < trees.len() {
            if let Some(t) = self.tok(&trees[i]) {
                if let Some(g) = trees.get(i + 1).and_then(|x| x.group()) {
                    if g.delim == '(' {
                        if GUARD_FNS.contains(&t.text.as_str()) {
                            return Some(Binding::Guard);
                        }
                        if PROTECT_FNS.contains(&t.text.as_str()) {
                            let guard = first_ident(g, self.toks)
                                .filter(|n| matches!(self.lookup(n), Some(Binding::Guard)));
                            return Some(Binding::Ptr(PtrState {
                                guard,
                                ..PtrState::default()
                            }));
                        }
                    }
                }
            }
            if let Some(g) = trees[i].group() {
                if let Some(b) = self.find_call_classification(&g.children) {
                    return Some(b);
                }
            }
            i += 1;
        }
        None
    }

    /// Flips every tracked pointer named in a `retire(…)` argument
    /// list to the retired state.
    fn retire_args(&mut self, g: &Group, line: usize) {
        let mut names = Vec::new();
        collect_idents(&g.children, self.toks, &mut names);
        for name in names {
            if let Some(Binding::Ptr(p)) = self.lookup(&name) {
                if p.retired.is_none() {
                    p.retired = Some(line);
                }
            }
        }
    }

    /// R7: re-protecting a retired value.
    fn check_reprotect(&mut self, g: &Group, line: usize) {
        let mut names = Vec::new();
        collect_idents(&g.children, self.toks, &mut names);
        let mut findings = Vec::new();
        for name in names {
            if let Some(Binding::Ptr(p)) = self.lookup(&name) {
                if let Some(rl) = p.retired {
                    findings.push((name, rl));
                }
            }
        }
        for (name, rl) in findings {
            self.report(
                &name,
                1,
                FlowKind::UseAfterRetire,
                line,
                format!(
                    "`{name}` flowed into retire on line {rl} and is re-protected here — \
                     a reclaimed node can be re-published"
                ),
            );
        }
    }

    /// Checks a deref of `name` against its life-cycle state.
    fn check_deref(&mut self, name: &str, line: usize) {
        let Some(Binding::Ptr(p)) = self.lookup(name).map(|b| &*b) else {
            return;
        };
        let p = p.clone();
        if let Some(rl) = p.retired {
            self.report(
                name,
                2,
                FlowKind::UseAfterRetire,
                line,
                format!(
                    "`{name}` flowed into retire on line {rl} and is dereferenced here — \
                     use-after-retire"
                ),
            );
            return;
        }
        match p.guard_end {
            Some((gl, GuardEnd::Dropped)) => {
                let g = p.guard.as_deref().unwrap_or("?");
                self.report(
                    name,
                    3,
                    FlowKind::UseAfterRetire,
                    line,
                    format!(
                        "`{name}` is dereferenced after its guard `{g}` was dropped on line {gl} — \
                         the protection is gone"
                    ),
                );
            }
            Some((gl, GuardEnd::ScopeEnd)) => {
                let g = p.guard.as_deref().unwrap_or("?");
                self.report(
                    name,
                    4,
                    FlowKind::GuardEscape,
                    line,
                    format!(
                        "`{name}` outlived its guard `{g}` (scope closed on line {gl}) and is \
                         dereferenced here — guard-escape"
                    ),
                );
            }
            None => {}
        }
    }
}

/// First identifier inside a group, skipping `&`/`mut` — the receiver
/// position of `load(&mut guard, …)`.
fn first_ident(g: &Group, toks: &[Tok]) -> Option<String> {
    for tree in &g.children {
        if let Some(i) = tree.leaf() {
            let t = &toks[i];
            if t.kind == TokKind::Ident && t.text != "mut" {
                return Some(t.text.clone());
            }
            if t.kind == TokKind::Ident || t.is_punct('&') {
                continue;
            }
            return None;
        }
        return None;
    }
    None
}

/// Collects every identifier leaf, recursively.
fn collect_idents(trees: &[Tree], toks: &[Tok], out: &mut Vec<String>) {
    for tree in trees {
        match tree {
            Tree::Leaf(i) => {
                let t = &toks[*i];
                if t.kind == TokKind::Ident {
                    out.push(t.text.clone());
                }
            }
            Tree::Group(g) => collect_idents(&g.children, toks, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<FlowIssue> {
        let l = lex(src);
        let open = l.toks.iter().position(|t| t.is_punct('{')).unwrap();
        analyze_body(&l.toks, (open, l.toks.len() - 1))
    }

    fn kinds(issues: &[FlowIssue]) -> Vec<FlowKind> {
        issues.iter().map(|i| i.kind).collect()
    }

    #[test]
    fn protected_deref_in_scope_is_clean() {
        let src = "fn f(list: &L) { let mut g = list.smr.register().unwrap(); \
                   let p = list.smr.load(&mut g, 0, &list.head); \
                   let k = unsafe { (*p).key }; }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn deref_after_guard_scope_is_guard_escape() {
        let src = "fn f(list: &L) { let p; { let mut g = list.smr.register().unwrap(); \
                   p = list.smr.load(&mut g, 0, &list.head); } \
                   let k = unsafe { (*p).key }; }";
        let issues = run(src);
        assert_eq!(kinds(&issues), vec![FlowKind::GuardEscape], "{issues:?}");
    }

    #[test]
    fn return_of_guarded_ptr_is_guard_escape() {
        let src = "fn f(list: &L) -> *mut N { let mut g = list.smr.register().unwrap(); \
                   let p = list.smr.load(&mut g, 0, &list.head); \
                   return p as *mut N; }";
        assert_eq!(kinds(&run(src)), vec![FlowKind::GuardEscape]);
    }

    #[test]
    fn returning_guard_and_ptr_together_is_clean() {
        let src = "fn f(list: &L) -> (G, usize) { let mut g = list.smr.register().unwrap(); \
                   let p = list.smr.load(&mut g, 0, &list.head); \
                   return (g, p); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn deref_after_retire_is_use_after_retire() {
        let src = "fn f(list: &L, ctx: &mut C) { \
                   let p = list.smr.load(ctx, 0, &list.head); \
                   unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, D) }; \
                   let k = unsafe { (*p).key }; }";
        let issues = run(src);
        assert_eq!(kinds(&issues), vec![FlowKind::UseAfterRetire], "{issues:?}");
    }

    #[test]
    fn deref_inside_retire_args_is_clean() {
        let src = "fn f(list: &L, ctx: &mut C) { \
                   let p = list.smr.load(ctx, 0, &list.head); \
                   unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, D) }; }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn deref_after_guard_drop_is_use_after_retire() {
        let src = "fn f(list: &L) { let mut g = list.smr.register().unwrap(); \
                   let p = list.smr.load(&mut g, 0, &list.head); \
                   drop(g); \
                   let k = unsafe { (*p).key }; }";
        assert_eq!(kinds(&run(src)), vec![FlowKind::UseAfterRetire]);
    }

    #[test]
    fn reprotect_after_retire_fires() {
        let src = "fn f(list: &L, ctx: &mut C) { \
                   let p = list.smr.load(ctx, 0, &list.head); \
                   unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, D) }; \
                   list.smr.protect(ctx, 1, p); }";
        assert_eq!(kinds(&run(src)), vec![FlowKind::UseAfterRetire]);
    }

    #[test]
    fn reassignment_resets_the_state() {
        let src = "fn f(list: &L, ctx: &mut C) { \
                   let mut p = list.smr.load(ctx, 0, &list.head); \
                   unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, D) }; \
                   p = list.smr.load(ctx, 0, &list.head); \
                   let k = unsafe { (*p).key }; }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn ambient_ctx_protection_never_escapes() {
        // `ctx` is a parameter — the caller owns the guard, so scope
        // reasoning inside this fn cannot end it.
        let src = "fn f(list: &L, ctx: &mut C) -> usize { \
                   let p = list.smr.load(ctx, 0, &list.head); \
                   return p; }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn multiplication_is_not_a_deref() {
        let src = "fn f(list: &L, ctx: &mut C) { \
                   let p = list.smr.load(ctx, 0, &list.head); \
                   unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, D) }; \
                   let area = w * p; }";
        // `w * p` is arithmetic on the *value*, suspicious but not a
        // deref — the pass stays quiet rather than guessing.
        assert!(run(src).is_empty());
    }

    #[test]
    fn alias_carries_the_state() {
        let src = "fn f(list: &L, ctx: &mut C) { \
                   let p = list.smr.load(ctx, 0, &list.head); \
                   let q = p; \
                   unsafe { list.smr.retire(ctx, q as *mut u8, &(*q).header, D) }; \
                   let k = unsafe { (*q).key }; }";
        assert_eq!(kinds(&run(src)), vec![FlowKind::UseAfterRetire]);
    }
}
