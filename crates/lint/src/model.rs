//! Structural view of one source file: function spans, `impl Smr`
//! blocks and struct declarations, recovered from the token stream by
//! brace matching — the minimum structure the rules need to reason
//! about dominance ("earlier in the same function") and coverage
//! ("somewhere in this impl block").

use crate::lexer::{lex, Lexed, Tok, TokKind};

/// One `fn` item (or closure-free method) with its body token span.
#[derive(Debug)]
pub struct FnSpan {
    /// Function name (`"fn"` token's following identifier).
    pub name: String,
    /// Line of the `fn` keyword.
    pub sig_line: usize,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Token range of the body, `[open_brace, close_brace]` inclusive.
    pub body: (usize, usize),
    /// The doc comment block above the signature contains `# Safety`.
    pub doc_has_safety: bool,
    /// A `// LINT:` waiver appears inside the body or directly above
    /// the signature.
    pub has_lint_waiver: bool,
}

/// One `impl Smr for …` block.
#[derive(Debug)]
pub struct ImplSmrSpan {
    /// The implementing type's name (best-effort: first identifier
    /// after `for`).
    pub self_ty: String,
    /// Line of the `impl` keyword.
    pub line: usize,
    /// Token range of the impl body, inclusive braces.
    pub body: (usize, usize),
}

/// One `struct` declaration.
#[derive(Debug)]
pub struct StructDecl {
    /// Struct name.
    pub name: String,
    /// Line of the `struct` keyword.
    pub line: usize,
    /// Public (`pub struct`).
    pub is_pub: bool,
    /// `#[must_use]` (with or without a message) among its attributes.
    pub has_must_use: bool,
}

/// Fully analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path label used in findings.
    pub path: String,
    /// Raw source lines (0-indexed storage; line N is `lines[N-1]`).
    pub lines: Vec<String>,
    /// Token/comment streams.
    pub lexed: Lexed,
    /// Function spans, in source order (outer before inner).
    pub fns: Vec<FnSpan>,
    /// `impl Smr for` blocks.
    pub impl_smrs: Vec<ImplSmrSpan>,
    /// Struct declarations.
    pub structs: Vec<StructDecl>,
}

impl SourceFile {
    /// Parses `text` into the structural model.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let fns = find_fns(&lexed, &lines);
        let impl_smrs = find_impl_smrs(&lexed.toks);
        let structs = find_structs(&lexed.toks, &lines);
        SourceFile {
            path: path.to_string(),
            lines,
            lexed,
            fns,
            impl_smrs,
            structs,
        }
    }

    /// The innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= idx && idx <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// Comment text on `line` (empty when none).
    pub fn comment_on(&self, line: usize) -> &str {
        self.lexed.comment_on(line)
    }

    /// Whether any comment in `[line-window, line]` (clamped) contains
    /// `needle`.
    pub fn comment_in_window(&self, line: usize, window: usize, needle: &str) -> bool {
        let lo = line.saturating_sub(window).max(1);
        (lo..=line).any(|l| self.comment_on(l).contains(needle))
    }

    /// Whether the doc/attribute block directly above `line` contains a
    /// `# Safety` heading — covers declarations that have no [`FnSpan`]
    /// (bodyless trait methods, `unsafe trait`s, fn-pointer type
    /// aliases).
    pub fn doc_above_has_safety(&self, line: usize) -> bool {
        doc_block_above(&self.lines, line).0
    }
}

/// Index of the matching close brace for the open brace at `open`
/// (both in `toks`); `None` when unbalanced.
fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Scans the doc/attribute block directly above `sig_line` for a
/// `# Safety` heading, and for a `// LINT:` waiver on the line above.
fn doc_block_above(lines: &[String], sig_line: usize) -> (bool, bool) {
    let mut has_safety = false;
    let mut has_waiver = false;
    let mut l = sig_line.saturating_sub(1); // 1-based line above the signature
    while l >= 1 {
        let s = lines[l - 1].trim_start();
        if s.starts_with("///")
            || s.starts_with("//!")
            || s.starts_with("#[")
            || s.starts_with("//")
        {
            if s.contains("# Safety") {
                has_safety = true;
            }
            if s.contains("LINT:") {
                has_waiver = true;
            }
            l -= 1;
        } else {
            break;
        }
    }
    (has_safety, has_waiver)
}

fn find_fns(lexed: &Lexed, lines: &[String]) -> Vec<FnSpan> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let sig_line = toks[i].line;
            // `unsafe fn` / `pub unsafe fn` / `pub(crate) const unsafe fn`
            let is_unsafe = toks[..i]
                .iter()
                .rev()
                .take(6)
                .take_while(|t| t.kind == TokKind::Ident || t.is_punct('(') || t.is_punct(')'))
                .any(|t| t.is_ident("unsafe"));
            // Find the body: first `{` before a `;` at bracket depth 0
            // (trait methods without bodies end in `;`).
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                } else if t.is_punct('(') || t.is_punct('[') {
                    paren += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    paren -= 1;
                } else if t.is_punct(';') && paren <= 0 {
                    break; // bodyless declaration
                } else if t.is_punct('{') && paren <= 0 && angle <= 0 {
                    body = match_brace(toks, j).map(|close| (j, close));
                    break;
                }
                j += 1;
            }
            if let Some(body) = body {
                let (doc_has_safety, waiver_above) = doc_block_above(lines, sig_line);
                let body_waiver = (toks[body.0].line..=toks[body.1].line)
                    .any(|l| lexed.comment_on(l).contains("LINT:"));
                out.push(FnSpan {
                    name,
                    sig_line,
                    is_unsafe,
                    body,
                    doc_has_safety,
                    has_lint_waiver: waiver_above || body_waiver,
                });
            }
        }
        i += 1;
    }
    out
}

fn find_impl_smrs(toks: &[Tok]) -> Vec<ImplSmrSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            // Walk to the opening `{`, remembering whether the trait
            // path's last segment before `for` is exactly `Smr`.
            let mut j = i + 1;
            let mut last_ident = String::new();
            let mut trait_is_smr = false;
            let mut self_ty = String::new();
            let mut saw_for = false;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                let t = &toks[j];
                if t.is_ident("for") {
                    trait_is_smr = last_ident == "Smr";
                    saw_for = true;
                } else if t.kind == TokKind::Ident {
                    if saw_for && self_ty.is_empty() {
                        self_ty = t.text.clone();
                    }
                    last_ident = t.text.clone();
                }
                j += 1;
            }
            if trait_is_smr && j < toks.len() && toks[j].is_punct('{') {
                if let Some(close) = match_brace(toks, j) {
                    out.push(ImplSmrSpan {
                        self_ty,
                        line: toks[i].line,
                        body: (j, close),
                    });
                    i = j; // fns inside still get scanned by find_fns
                }
            }
        }
        i += 1;
    }
    out
}

fn find_structs(toks: &[Tok], lines: &[String]) -> Vec<StructDecl> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("struct") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            let is_pub = toks[..i]
                .iter()
                .rev()
                .take(5)
                .take_while(|t| t.kind == TokKind::Ident || t.is_punct('(') || t.is_punct(')'))
                .any(|t| t.is_ident("pub"));
            // Attributes sit on the lines above (and possibly the same
            // line): scan the contiguous attr/doc block.
            let mut has_must_use = lines
                .get(line - 1)
                .is_some_and(|l| l.contains("#[must_use"));
            let mut l = line.saturating_sub(1);
            while l >= 1 {
                let s = lines[l - 1].trim_start();
                if s.starts_with("#[") || s.starts_with("///") || s.starts_with("//") {
                    if s.contains("#[must_use") {
                        has_must_use = true;
                    }
                    l -= 1;
                } else {
                    break;
                }
            }
            out.push(StructDecl {
                name,
                line,
                is_pub,
                has_must_use,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_and_unsafe_flag() {
        let src = "pub unsafe fn f() { inner(); }\nfn g() -> u32 { 0 }\ntrait T { fn h(); }\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.fns.len(), 2, "bodyless h is skipped");
        assert!(f.fns[0].is_unsafe);
        assert_eq!(f.fns[0].name, "f");
        assert!(!f.fns[1].is_unsafe);
    }

    #[test]
    fn doc_safety_is_detected() {
        let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller promises.\npub unsafe fn f() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.fns[0].doc_has_safety);
    }

    #[test]
    fn impl_smr_detection() {
        let src = "impl<S: Smr> Smr for Chaos<S> { fn x() {} }\nimpl Smr for Ebr { }\nimpl Ebr { }\nimpl Display for Ebr {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.impl_smrs.len(), 2);
        assert_eq!(f.impl_smrs[0].self_ty, "Chaos");
        assert_eq!(f.impl_smrs[1].self_ty, "Ebr");
    }

    #[test]
    fn struct_must_use_attr() {
        let src = "#[must_use = \"drop releases the slot\"]\npub struct ACtx {}\nstruct Plain;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.structs[0].has_must_use);
        assert!(f.structs[0].is_pub);
        assert!(!f.structs[1].has_must_use);
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() { fn inner() { deref(); } }\n";
        let f = SourceFile::parse("t.rs", src);
        let idx = f
            .lexed
            .toks
            .iter()
            .position(|t| t.is_ident("deref"))
            .unwrap();
        assert_eq!(f.enclosing_fn(idx).unwrap().name, "inner");
    }

    #[test]
    fn generic_fn_body_found_despite_angle_brackets() {
        let src = "fn f<T: Ord>(x: T) -> Vec<T> where T: Clone { vec![x] }\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.fns.len(), 1);
    }
}
