//! The five era-lint rules.
//!
//! Each rule turns one piece of the repo's reviewed-by-convention
//! discipline into a machine-checked fact. They are *syntactic*
//! approximations — see DESIGN §3.10 for the mapping onto the paper's
//! definitions and the known false-negative envelope.

use crate::lexer::TokKind;
use crate::model::SourceFile;

/// How many lines above a site a justifying comment may sit.
const WINDOW: usize = 8;

/// The rules, in stable report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// R1: every `unsafe` site carries a `SAFETY` comment.
    SafetyComment,
    /// R2: atomic writes carry a `SAFETY(ordering)` justification
    /// (non-SeqCst everywhere; *all* writes inside `crates/smr`, where
    /// a SeqCst site must name its fence-pairing partner).
    OrderingJustification,
    /// R3: raw derefs in `crates/ds` are dominated by a protect call.
    ProtectBeforeDeref,
    /// R4: every `impl Smr` emits (or delegates) the era-obs hook set.
    HookCoverage,
    /// R5: guard types (`*Ctx`, `*Handle`, `*Guard`) are `#[must_use]`.
    GuardMustUse,
}

impl Rule {
    /// All rules, report order.
    pub const ALL: [Rule; 5] = [
        Rule::SafetyComment,
        Rule::OrderingJustification,
        Rule::ProtectBeforeDeref,
        Rule::HookCoverage,
        Rule::GuardMustUse,
    ];

    /// Stable identifier (used in reports, fixtures and CLI flags).
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "R1-safety-comment",
            Rule::OrderingJustification => "R2-ordering-justification",
            Rule::ProtectBeforeDeref => "R3-protect-before-deref",
            Rule::HookCoverage => "R4-hook-coverage",
            Rule::GuardMustUse => "R5-guard-must-use",
        }
    }

    /// One-line description for `era-lint rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::SafetyComment => {
                "every `unsafe` block/fn/impl carries a // SAFETY: comment (or a # Safety doc)"
            }
            Rule::OrderingJustification => {
                "atomic stores/RMWs carry SAFETY(ordering): non-SeqCst everywhere; all writes in crates/smr"
            }
            Rule::ProtectBeforeDeref => {
                "in crates/ds, raw derefs are dominated by protect/begin_op (waive with // LINT: op-scoped)"
            }
            Rule::HookCoverage => {
                "every `impl Smr` emits or delegates the BeginOp/Retire/reclaim hook set"
            }
            Rule::GuardMustUse => "guard types (*Ctx, *Handle, *Guard) are #[must_use]",
        }
    }

    /// Parses `"R1"`, `"r3"`, `"R2-ordering-justification"` or the
    /// bare slug.
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim().to_ascii_lowercase();
        Rule::ALL.iter().copied().find(|r| {
            let id = r.id().to_ascii_lowercase();
            id == s || id.starts_with(&format!("{s}-")) || id[3..] == s
        })
    }
}

/// Rule scoping: `Auto` derives each rule's applicability from the
/// file's workspace path; `All` applies every rule (used by the
/// fixture harness, whose files live outside the scoped trees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Path-based applicability (workspace checks).
    Auto,
    /// Every rule applies (fixtures).
    All,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

/// Runs every rule against one parsed file.
pub fn check_file(file: &SourceFile, scope: Scope) -> Vec<Finding> {
    let mut out = Vec::new();
    r1_safety_comment(file, &mut out);
    r2_ordering(file, scope, &mut out);
    if scope == Scope::All || file.path.contains("crates/ds/") {
        r3_protect_before_deref(file, &mut out);
    }
    r4_hook_coverage(file, &mut out);
    r5_guard_must_use(file, &mut out);
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

fn finding(file: &SourceFile, rule: Rule, line: usize, message: impl Into<String>) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line,
        message: message.into(),
    }
}

/// R1 — every `unsafe` token is justified by a `SAFETY` comment within
/// [`WINDOW`] lines above, a `# Safety` doc section on the enclosing
/// (or declared) fn, or a fn-level `SAFETY` comment earlier in the same
/// body (one argument may cover a whole traversal).
fn r1_safety_comment(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let line = t.line;
        if file.comment_in_window(line, WINDOW, "SAFETY") {
            continue;
        }
        // `unsafe fn` / `unsafe impl` / `unsafe trait` declarations:
        // a `# Safety` doc section is the canonical justification.
        let next_decl = toks[i + 1..]
            .iter()
            .take(3)
            .find(|n| n.is_ident("fn") || n.is_ident("impl") || n.is_ident("trait"));
        if let Some(decl) = next_decl {
            // Bodyless declarations (trait methods, `unsafe trait`s,
            // fn-pointer type aliases) have no `FnSpan`; their `# Safety`
            // doc block is read straight off the lines above.
            if file.doc_above_has_safety(line) {
                continue;
            }
            if decl.is_ident("fn") {
                if file
                    .fns
                    .iter()
                    .any(|f| f.is_unsafe && f.sig_line.abs_diff(line) <= 1 && f.doc_has_safety)
                {
                    continue;
                }
                out.push(finding(
                    file,
                    Rule::SafetyComment,
                    line,
                    "`unsafe fn` without a `# Safety` doc section or // SAFETY: comment",
                ));
            } else {
                out.push(finding(
                    file,
                    Rule::SafetyComment,
                    line,
                    "`unsafe impl`/`unsafe trait` without a // SAFETY: comment or # Safety doc",
                ));
            }
            continue;
        }
        // Unsafe block: enclosing-fn-level coverage.
        if let Some(f) = file.enclosing_fn(i) {
            if f.doc_has_safety {
                continue;
            }
            let body_start = toks[f.body.0].line;
            if (body_start..=line).any(|l| file.comment_on(l).contains("SAFETY")) {
                continue;
            }
        }
        out.push(finding(
            file,
            Rule::SafetyComment,
            line,
            "`unsafe` block without a // SAFETY: comment (within 8 lines, or fn-level)",
        ));
    }
}

/// Atomic write methods R2 inspects.
const WRITE_METHODS: [&str; 13] = [
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
];

/// R2 — atomic store/RMW sites. A call is "atomic" when its argument
/// list names `Ordering::…`; sites passing orderings through variables
/// are invisible (documented false negative).
fn r2_ordering(file: &SourceFile, scope: Scope, out: &mut Vec<Finding>) {
    let toks = &file.lexed.toks;
    let smr_scoped = scope == Scope::All || file.path.contains("crates/smr/");
    for i in 0..toks.len() {
        if !(toks[i].is_punct('.')
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && WRITE_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct('('))
        {
            continue;
        }
        // Scan the argument list for Ordering::X tokens.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut orderings: Vec<&str> = Vec::new();
        let mut end_line = toks[i].line;
        while j < toks.len() {
            let t = &toks[j];
            end_line = t.line;
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("Ordering")
                && j + 3 < toks.len()
                && toks[j + 1].is_punct(':')
                && toks[j + 2].is_punct(':')
                && toks[j + 3].kind == TokKind::Ident
            {
                orderings.push(toks[j + 3].text.as_str());
            }
            j += 1;
        }
        if orderings.is_empty() {
            continue; // not an atomic call (or indirect orderings)
        }
        let site_line = toks[i].line;
        let lo = site_line.saturating_sub(WINDOW).max(1);
        let justified = (lo..=end_line).any(|l| file.comment_on(l).contains("SAFETY(ordering)"));
        if justified {
            continue;
        }
        let method = toks[i + 1].text.as_str();
        if orderings.iter().any(|o| *o != "SeqCst") {
            out.push(finding(
                file,
                Rule::OrderingJustification,
                site_line,
                format!(
                    "non-SeqCst atomic `{method}` ({}) without a SAFETY(ordering) justification",
                    orderings.join("/")
                ),
            ));
        } else if smr_scoped {
            out.push(finding(
                file,
                Rule::OrderingJustification,
                site_line,
                format!(
                    "SeqCst atomic `{method}` in era-smr without a SAFETY(ordering) note naming \
                     its fence-pairing partner"
                ),
            ));
        }
    }
}

/// Calls that establish protection for subsequent derefs.
fn is_protect_call(file: &SourceFile, idx: usize) -> bool {
    let toks = &file.lexed.toks;
    let t = &toks[idx];
    if t.kind != TokKind::Ident {
        return false;
    }
    match t.text.as_str() {
        "begin_op" | "enter_read_phase" | "protect_alias" | "protect" | "try_protect" => {
            idx + 1 < toks.len() && toks[idx + 1].is_punct('(')
        }
        // `smr.load(ctx, …)` — the protected load; distinguished from
        // plain atomic loads by its `ctx` first argument.
        "load" => {
            idx + 2 < toks.len() && toks[idx + 1].is_punct('(') && toks[idx + 2].is_ident("ctx")
        }
        _ => false,
    }
}

/// Raw-deref token patterns: `&*p`, `&mut *p`, `(*p).field`.
fn deref_at(file: &SourceFile, idx: usize) -> bool {
    let toks = &file.lexed.toks;
    let star_ident = |k: usize| {
        k + 1 < toks.len() && toks[k].is_punct('*') && toks[k + 1].kind == TokKind::Ident
    };
    if toks[idx].is_punct('&') {
        if star_ident(idx + 1) {
            return true; // &*p
        }
        if idx + 1 < toks.len() && toks[idx + 1].is_ident("mut") && star_ident(idx + 2) {
            return true; // &mut *p
        }
    }
    // (*p).field
    toks[idx].is_punct('(')
        && star_ident(idx + 1)
        && idx + 3 < toks.len()
        && toks[idx + 3].is_punct(')')
        && idx + 4 < toks.len()
        && toks[idx + 4].is_punct('.')
}

/// R3 — within each safe fn in `crates/ds`, the first raw deref must
/// come after a protect-establishing call. `unsafe fn`s are exempt
/// (their contract is the caller's, stated under R1); `// LINT:`
/// waivers exempt the fn (op-scoped protection established by the
/// caller, quiescent snapshots, exclusive `Drop` access).
fn r3_protect_before_deref(file: &SourceFile, out: &mut Vec<Finding>) {
    for f in &file.fns {
        if f.is_unsafe || f.has_lint_waiver {
            continue;
        }
        let (lo, hi) = f.body;
        let dominator = (lo..=hi).find(|&i| is_protect_call(file, i));
        for i in lo..=hi {
            if deref_at(file, i) {
                if dominator.is_none_or(|d| d > i) {
                    out.push(finding(
                        file,
                        Rule::ProtectBeforeDeref,
                        file.lexed.toks[i].line,
                        format!(
                            "raw deref in `{}` not dominated by protect/begin_op \
                             (waive with // LINT: op-scoped if protection is the caller's)",
                            f.name
                        ),
                    ));
                }
                break; // one finding per fn keeps the report readable
            }
        }
    }
}

/// R4 — each `impl Smr for T` must emit `Hook::BeginOp` and
/// `Hook::Retire` (or delegate `begin_op`/`retire` to an inner scheme)
/// and its file must tally reclamation through `on_reclaim` (or the
/// impl delegates retire, inheriting the inner scheme's tally).
fn r4_hook_coverage(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.toks;
    let file_has_on_reclaim = toks.iter().any(|t| t.is_ident("on_reclaim"));
    for im in &file.impl_smrs {
        let (lo, hi) = im.body;
        let slice = &toks[lo..=hi];
        let hook = |name: &str| {
            slice
                .windows(4)
                .any(|w| w[0].is_ident("Hook") && w[3].is_ident(name))
        };
        let delegates = |method: &str| {
            slice
                .windows(2)
                .any(|w| w[0].is_punct('.') && w[1].is_ident(method))
        };
        if !(hook("BeginOp") || delegates("begin_op")) {
            out.push(finding(
                file,
                Rule::HookCoverage,
                im.line,
                format!(
                    "`impl Smr for {}` neither emits Hook::BeginOp nor delegates begin_op",
                    im.self_ty
                ),
            ));
        }
        if !(hook("Retire") || delegates("retire")) {
            out.push(finding(
                file,
                Rule::HookCoverage,
                im.line,
                format!(
                    "`impl Smr for {}` neither emits Hook::Retire nor delegates retire",
                    im.self_ty
                ),
            ));
        }
        if !(file_has_on_reclaim || delegates("retire")) {
            out.push(finding(
                file,
                Rule::HookCoverage,
                im.line,
                format!(
                    "`impl Smr for {}`: no on_reclaim tally anywhere in this file \
                     (reclaim events would not reach era-obs)",
                    im.self_ty
                ),
            ));
        }
    }
}

/// R5 — public guard types must be `#[must_use]`: silently dropping a
/// `Ctx` releases its slot and orphans its garbage; dropping a pinned
/// handle voids its protection.
fn r5_guard_must_use(file: &SourceFile, out: &mut Vec<Finding>) {
    for s in &file.structs {
        let guardish =
            s.name.ends_with("Ctx") || s.name.ends_with("Handle") || s.name.ends_with("Guard");
        if guardish && s.is_pub && !s.has_must_use {
            out.push(finding(
                file,
                Rule::GuardMustUse,
                s.line,
                format!("guard type `{}` is not #[must_use]", s.name),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check_file(&SourceFile::parse(path, src), Scope::All)
    }

    fn rules_of(f: &[Finding]) -> Vec<Rule> {
        let mut v: Vec<Rule> = f.iter().map(|x| x.rule).collect();
        v.dedup();
        v
    }

    #[test]
    fn rule_parse_accepts_aliases() {
        assert_eq!(Rule::parse("R1"), Some(Rule::SafetyComment));
        assert_eq!(Rule::parse("r3"), Some(Rule::ProtectBeforeDeref));
        assert_eq!(
            Rule::parse("R2-ordering-justification"),
            Some(Rule::OrderingJustification)
        );
        assert_eq!(Rule::parse("guard-must-use"), Some(Rule::GuardMustUse));
        assert_eq!(Rule::parse("bogus"), None);
    }

    #[test]
    fn r1_fires_and_is_satisfiable() {
        let bad = run("a.rs", "fn f() { unsafe { g() } }");
        assert_eq!(rules_of(&bad), vec![Rule::SafetyComment]);
        let good = run(
            "a.rs",
            "fn f() {\n    // SAFETY: g has no preconditions.\n    unsafe { g() }\n}",
        );
        assert!(good.is_empty(), "{good:?}");
        let doc = run(
            "a.rs",
            "/// # Safety\n/// Caller promises.\npub unsafe fn f() { unsafe { g() } }",
        );
        assert!(doc.is_empty(), "{doc:?}");
    }

    #[test]
    fn r1_fn_level_comment_covers_later_sites() {
        let src = "fn f() {\n    // SAFETY: every node on this walk is pinned.\n    let a = unsafe { x() };\n    let b = 1;\n    let c = 2;\n    let d = 3;\n    let e = 4;\n    let g = 5;\n    let h = 6;\n    let i = 7;\n    let j = 8;\n    let k = unsafe { y() };\n}";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn r2_relaxed_needs_justification() {
        let bad = run("a.rs", "fn f(a: &A) { a.store(1, Ordering::Relaxed); }");
        assert_eq!(rules_of(&bad), vec![Rule::OrderingJustification]);
        let good = run(
            "a.rs",
            "fn f(a: &A) {\n    // SAFETY(ordering): private counter, no ordering needed.\n    a.store(1, Ordering::Relaxed);\n}",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r2_seqcst_scoped_to_smr() {
        let src = "fn f(a: &A) { a.store(1, Ordering::SeqCst); }";
        let auto = check_file(&SourceFile::parse("crates/kv/src/x.rs", src), Scope::Auto);
        assert!(auto.is_empty(), "SeqCst outside smr is free: {auto:?}");
        let smr = check_file(&SourceFile::parse("crates/smr/src/x.rs", src), Scope::Auto);
        assert_eq!(rules_of(&smr), vec![Rule::OrderingJustification]);
    }

    #[test]
    fn r2_loads_are_exempt() {
        assert!(run("a.rs", "fn f(a: &A) { a.load(Ordering::Relaxed); }").is_empty());
    }

    #[test]
    fn r3_deref_needs_dominating_protect() {
        let bad = "fn walk(ctx: &mut C) {\n    // SAFETY: pinned.\n    let k = unsafe { (*node).key };\n}";
        let f = check_file(&SourceFile::parse("crates/ds/src/x.rs", bad), Scope::Auto);
        assert_eq!(rules_of(&f), vec![Rule::ProtectBeforeDeref]);
        let good = "fn walk(&self, ctx: &mut C) {\n    self.smr.begin_op(ctx);\n    // SAFETY: pinned by begin_op.\n    let k = unsafe { (*node).key };\n}";
        let f = check_file(&SourceFile::parse("crates/ds/src/x.rs", good), Scope::Auto);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r3_waiver_and_unsafe_fn_exempt() {
        let waived = "// LINT: op-scoped — protection is the caller's begin_op.\nfn walk() {\n    // SAFETY: caller pinned.\n    let k = unsafe { (*node).key };\n}";
        let f = check_file(
            &SourceFile::parse("crates/ds/src/x.rs", waived),
            Scope::Auto,
        );
        assert!(f.is_empty(), "{f:?}");
        let un = "/// # Safety\n/// Caller owns node.\nunsafe fn free(node: *mut N) {\n    let k = unsafe { (*node).key };\n}";
        let f = check_file(&SourceFile::parse("crates/ds/src/x.rs", un), Scope::Auto);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r3_protected_load_call_dominates() {
        let src = "fn find(&self, ctx: &mut C) {\n    // SAFETY: head is always valid.\n    let w = self.smr.load(ctx, 0, unsafe { &*prev });\n}";
        let f = check_file(&SourceFile::parse("crates/ds/src/x.rs", src), Scope::Auto);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r4_missing_hooks_fire_per_gap() {
        let bad = "impl Smr for Bad {\n    fn begin_op(&self) {}\n}";
        let f = run("a.rs", bad);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::HookCoverage));
        let emits = "impl Smr for Good {\n    fn begin_op(&self) { t.emit(Hook::BeginOp, 0, 0); }\n    fn retire(&self) { t.emit(Hook::Retire, 0, 0); }\n}\nfn tally() { stats.on_reclaim(1); }";
        assert!(run("a.rs", emits).is_empty());
        let delegates = "impl<S: Smr> Smr for Wrap<S> {\n    fn begin_op(&self) { self.inner.begin_op(ctx) }\n    fn retire(&self) { self.inner.retire(ctx) }\n}";
        assert!(run("a.rs", delegates).is_empty());
    }

    #[test]
    fn r5_guard_types_must_use() {
        let bad = run("a.rs", "pub struct FooCtx { x: u32 }");
        assert_eq!(rules_of(&bad), vec![Rule::GuardMustUse]);
        assert!(run("a.rs", "#[must_use]\npub struct FooCtx { x: u32 }").is_empty());
        assert!(
            run("a.rs", "struct PrivCtx;").is_empty(),
            "private types are the file's own business"
        );
        assert!(run("a.rs", "pub struct Store;").is_empty());
    }
}
