//! The nine era-lint rules.
//!
//! Each rule turns one piece of the repo's reviewed-by-convention
//! discipline into a machine-checked fact. R1–R5 are *syntactic*
//! approximations over the token stream (DESIGN §3.10); R6/R7 run the
//! flow-sensitive pointer life-cycle pass ([`crate::flow`]) over each
//! function body; R8/R9 are **cross-file** passes over a whole check
//! unit ([`check_unit`]) — the fence-pairing graph and the ERA
//! scheme-obligation check (DESIGN §3.14).

use std::collections::BTreeMap;

use crate::flow::{self, FlowKind};
use crate::lexer::TokKind;
use crate::model::SourceFile;

/// How many lines above a site a justifying comment may sit.
const WINDOW: usize = 8;

/// How many lines below a `PAIRS(…)` annotation its sync site may sit
/// (R8) — wider than [`WINDOW`] because ordering justifications run to
/// full paragraphs.
const PAIR_WINDOW: usize = 16;

/// The rules, in stable report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// R1: every `unsafe` site carries a `SAFETY` comment.
    SafetyComment,
    /// R2: atomic writes carry a `SAFETY(ordering)` justification
    /// (non-SeqCst everywhere; *all* writes inside `crates/smr`, where
    /// a SeqCst site must name its fence-pairing partner).
    OrderingJustification,
    /// R3: raw derefs in `crates/ds` are dominated by a protect call.
    ProtectBeforeDeref,
    /// R4: every `impl Smr` emits (or delegates) the era-obs hook set.
    HookCoverage,
    /// R5: guard types (`*Ctx`, `*Handle`, `*Guard`) are `#[must_use]`.
    GuardMustUse,
    /// R6: a protected pointer must not outlive (or be returned past)
    /// its guard's scope — flow-sensitive.
    GuardEscape,
    /// R7: no deref or re-protect of a value after it flows into
    /// `retire` (incl. deref after `drop(guard)`) — flow-sensitive.
    UseAfterRetire,
    /// R8: `PAIRS(name)` fence-pairing annotations form a cross-file
    /// graph; every tag has ≥2 endpoints, each on a real sync site.
    FencePairing,
    /// R9: every `impl Smr` declares its ERA class in an
    /// `// ERA-CLASS:` header whose claim matches the implementation's
    /// structure and the crates/scenarios invariant table.
    SchemeObligation,
}

impl Rule {
    /// All rules, report order.
    pub const ALL: [Rule; 9] = [
        Rule::SafetyComment,
        Rule::OrderingJustification,
        Rule::ProtectBeforeDeref,
        Rule::HookCoverage,
        Rule::GuardMustUse,
        Rule::GuardEscape,
        Rule::UseAfterRetire,
        Rule::FencePairing,
        Rule::SchemeObligation,
    ];

    /// Stable identifier (used in reports, fixtures and CLI flags).
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "R1-safety-comment",
            Rule::OrderingJustification => "R2-ordering-justification",
            Rule::ProtectBeforeDeref => "R3-protect-before-deref",
            Rule::HookCoverage => "R4-hook-coverage",
            Rule::GuardMustUse => "R5-guard-must-use",
            Rule::GuardEscape => "R6-guard-escape",
            Rule::UseAfterRetire => "R7-use-after-retire",
            Rule::FencePairing => "R8-fence-pairing",
            Rule::SchemeObligation => "R9-scheme-obligation",
        }
    }

    /// One-line description for `era-lint rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::SafetyComment => {
                "every `unsafe` block/fn/impl carries a // SAFETY: comment (or a # Safety doc)"
            }
            Rule::OrderingJustification => {
                "atomic stores/RMWs carry SAFETY(ordering): non-SeqCst everywhere; all writes in crates/smr"
            }
            Rule::ProtectBeforeDeref => {
                "in crates/ds, raw derefs are dominated by protect/begin_op (waive with // LINT: op-scoped)"
            }
            Rule::HookCoverage => {
                "every `impl Smr` emits or delegates the BeginOp/Retire/reclaim hook set"
            }
            Rule::GuardMustUse => "guard types (*Ctx, *Handle, *Guard) are #[must_use]",
            Rule::GuardEscape => {
                "flow: a protected pointer must not outlive or be returned past its guard's scope"
            }
            Rule::UseAfterRetire => {
                "flow: no deref or re-protect after a value flows into retire (or its guard drops)"
            }
            Rule::FencePairing => {
                "PAIRS(name) fence annotations pair up across files, each on a real fence/atomic site"
            }
            Rule::SchemeObligation => {
                "every impl Smr declares // ERA-CLASS: and its robustness claim matches its structure"
            }
        }
    }

    /// Parses `"R1"`, `"r3"`, `"R2-ordering-justification"` or the
    /// bare slug.
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim().to_ascii_lowercase();
        Rule::ALL.iter().copied().find(|r| {
            let id = r.id().to_ascii_lowercase();
            id == s || id.starts_with(&format!("{s}-")) || id[3..] == s
        })
    }
}

/// Rule scoping: `Auto` derives each rule's applicability from the
/// file's workspace path; `All` applies every rule (used by the
/// fixture harness, whose files live outside the scoped trees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Path-based applicability (workspace checks).
    Auto,
    /// Every rule applies (fixtures).
    All,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

/// Trees where the R6/R7 life-cycle pass applies under [`Scope::Auto`]:
/// the protocol *users*. `crates/smr` itself is exempt — the schemes
/// implement `load`/`protect`/`retire`, they don't call them through a
/// guard.
const FLOW_SCOPED: [&str; 4] = [
    "crates/ds/",
    "crates/kv/",
    "crates/net/",
    "crates/scenarios/",
];

/// Runs every rule against one parsed file (a single-file check unit:
/// the cross-file rules R8/R9 see only this file).
pub fn check_file(file: &SourceFile, scope: Scope) -> Vec<Finding> {
    check_unit(std::slice::from_ref(file), scope)
}

/// Runs every rule against a check unit: the per-file rules R1–R7,
/// then the cross-file passes (R8 fence-pairing graph, R9 scheme
/// obligations) over the whole unit at once.
pub fn check_unit(files: &[SourceFile], scope: Scope) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        r1_safety_comment(file, &mut out);
        r2_ordering(file, scope, &mut out);
        if scope == Scope::All || file.path.contains("crates/ds/") {
            r3_protect_before_deref(file, &mut out);
        }
        r4_hook_coverage(file, &mut out);
        r5_guard_must_use(file, &mut out);
        if scope == Scope::All || FLOW_SCOPED.iter().any(|p| file.path.contains(p)) {
            r6_r7_lifecycle(file, &mut out);
        }
    }
    r8_fence_pairing(files, &mut out);
    r9_scheme_obligation(files, scope, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

fn finding(file: &SourceFile, rule: Rule, line: usize, message: impl Into<String>) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line,
        message: message.into(),
    }
}

/// R1 — every `unsafe` token is justified by a `SAFETY` comment within
/// [`WINDOW`] lines above, a `# Safety` doc section on the enclosing
/// (or declared) fn, or a fn-level `SAFETY` comment earlier in the same
/// body (one argument may cover a whole traversal).
fn r1_safety_comment(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let line = t.line;
        if file.comment_in_window(line, WINDOW, "SAFETY") {
            continue;
        }
        // `unsafe fn` / `unsafe impl` / `unsafe trait` declarations:
        // a `# Safety` doc section is the canonical justification.
        let next_decl = toks[i + 1..]
            .iter()
            .take(3)
            .find(|n| n.is_ident("fn") || n.is_ident("impl") || n.is_ident("trait"));
        if let Some(decl) = next_decl {
            // Bodyless declarations (trait methods, `unsafe trait`s,
            // fn-pointer type aliases) have no `FnSpan`; their `# Safety`
            // doc block is read straight off the lines above.
            if file.doc_above_has_safety(line) {
                continue;
            }
            if decl.is_ident("fn") {
                if file
                    .fns
                    .iter()
                    .any(|f| f.is_unsafe && f.sig_line.abs_diff(line) <= 1 && f.doc_has_safety)
                {
                    continue;
                }
                out.push(finding(
                    file,
                    Rule::SafetyComment,
                    line,
                    "`unsafe fn` without a `# Safety` doc section or // SAFETY: comment",
                ));
            } else {
                out.push(finding(
                    file,
                    Rule::SafetyComment,
                    line,
                    "`unsafe impl`/`unsafe trait` without a // SAFETY: comment or # Safety doc",
                ));
            }
            continue;
        }
        // Unsafe block: enclosing-fn-level coverage.
        if let Some(f) = file.enclosing_fn(i) {
            if f.doc_has_safety {
                continue;
            }
            let body_start = toks[f.body.0].line;
            if (body_start..=line).any(|l| file.comment_on(l).contains("SAFETY")) {
                continue;
            }
        }
        out.push(finding(
            file,
            Rule::SafetyComment,
            line,
            "`unsafe` block without a // SAFETY: comment (within 8 lines, or fn-level)",
        ));
    }
}

/// Atomic write methods R2 inspects.
const WRITE_METHODS: [&str; 13] = [
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
];

/// R2 — atomic store/RMW sites. A call is "atomic" when its argument
/// list names `Ordering::…`; sites passing orderings through variables
/// are invisible (documented false negative).
fn r2_ordering(file: &SourceFile, scope: Scope, out: &mut Vec<Finding>) {
    let toks = &file.lexed.toks;
    let smr_scoped = scope == Scope::All || file.path.contains("crates/smr/");
    for i in 0..toks.len() {
        if !(toks[i].is_punct('.')
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && WRITE_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct('('))
        {
            continue;
        }
        // Scan the argument list for Ordering::X tokens.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut orderings: Vec<&str> = Vec::new();
        let mut end_line = toks[i].line;
        while j < toks.len() {
            let t = &toks[j];
            end_line = t.line;
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("Ordering")
                && j + 3 < toks.len()
                && toks[j + 1].is_punct(':')
                && toks[j + 2].is_punct(':')
                && toks[j + 3].kind == TokKind::Ident
            {
                orderings.push(toks[j + 3].text.as_str());
            }
            j += 1;
        }
        if orderings.is_empty() {
            continue; // not an atomic call (or indirect orderings)
        }
        let site_line = toks[i].line;
        let lo = site_line.saturating_sub(WINDOW).max(1);
        let justified = (lo..=end_line).any(|l| file.comment_on(l).contains("SAFETY(ordering)"));
        if justified {
            continue;
        }
        let method = toks[i + 1].text.as_str();
        if orderings.iter().any(|o| *o != "SeqCst") {
            out.push(finding(
                file,
                Rule::OrderingJustification,
                site_line,
                format!(
                    "non-SeqCst atomic `{method}` ({}) without a SAFETY(ordering) justification",
                    orderings.join("/")
                ),
            ));
        } else if smr_scoped {
            out.push(finding(
                file,
                Rule::OrderingJustification,
                site_line,
                format!(
                    "SeqCst atomic `{method}` in era-smr without a SAFETY(ordering) note naming \
                     its fence-pairing partner"
                ),
            ));
        }
    }
}

/// Calls that establish protection for subsequent derefs.
fn is_protect_call(file: &SourceFile, idx: usize) -> bool {
    let toks = &file.lexed.toks;
    let t = &toks[idx];
    if t.kind != TokKind::Ident {
        return false;
    }
    match t.text.as_str() {
        "begin_op" | "enter_read_phase" | "protect_alias" | "protect" | "try_protect" => {
            idx + 1 < toks.len() && toks[idx + 1].is_punct('(')
        }
        // `smr.load(ctx, …)` / `smr.load(&mut guard, …)` — the
        // protected load; distinguished from plain atomic loads by its
        // context/guard first argument (plain loads start with
        // `Ordering::…`).
        "load" => {
            idx + 2 < toks.len()
                && toks[idx + 1].is_punct('(')
                && (toks[idx + 2].is_ident("ctx") || toks[idx + 2].is_punct('&'))
        }
        _ => false,
    }
}

/// Raw-deref token patterns: `&*p`, `&mut *p`, `(*p).field`.
fn deref_at(file: &SourceFile, idx: usize) -> bool {
    let toks = &file.lexed.toks;
    let star_ident = |k: usize| {
        k + 1 < toks.len() && toks[k].is_punct('*') && toks[k + 1].kind == TokKind::Ident
    };
    if toks[idx].is_punct('&') {
        if star_ident(idx + 1) {
            return true; // &*p
        }
        if idx + 1 < toks.len() && toks[idx + 1].is_ident("mut") && star_ident(idx + 2) {
            return true; // &mut *p
        }
    }
    // (*p).field
    toks[idx].is_punct('(')
        && star_ident(idx + 1)
        && idx + 3 < toks.len()
        && toks[idx + 3].is_punct(')')
        && idx + 4 < toks.len()
        && toks[idx + 4].is_punct('.')
}

/// R3 — within each safe fn in `crates/ds`, the first raw deref must
/// come after a protect-establishing call. `unsafe fn`s are exempt
/// (their contract is the caller's, stated under R1); `// LINT:`
/// waivers exempt the fn (op-scoped protection established by the
/// caller, quiescent snapshots, exclusive `Drop` access).
fn r3_protect_before_deref(file: &SourceFile, out: &mut Vec<Finding>) {
    for f in &file.fns {
        if f.is_unsafe || f.has_lint_waiver {
            continue;
        }
        let (lo, hi) = f.body;
        let dominator = (lo..=hi).find(|&i| is_protect_call(file, i));
        for i in lo..=hi {
            if deref_at(file, i) {
                if dominator.is_none_or(|d| d > i) {
                    out.push(finding(
                        file,
                        Rule::ProtectBeforeDeref,
                        file.lexed.toks[i].line,
                        format!(
                            "raw deref in `{}` not dominated by protect/begin_op \
                             (waive with // LINT: op-scoped if protection is the caller's)",
                            f.name
                        ),
                    ));
                }
                break; // one finding per fn keeps the report readable
            }
        }
    }
}

/// R4 — each `impl Smr for T` must emit `Hook::BeginOp` and
/// `Hook::Retire` (or delegate `begin_op`/`retire` to an inner scheme)
/// and its file must tally reclamation through `on_reclaim` (or the
/// impl delegates retire, inheriting the inner scheme's tally).
fn r4_hook_coverage(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.toks;
    let file_has_on_reclaim = toks.iter().any(|t| t.is_ident("on_reclaim"));
    for im in &file.impl_smrs {
        let (lo, hi) = im.body;
        let slice = &toks[lo..=hi];
        let hook = |name: &str| {
            slice
                .windows(4)
                .any(|w| w[0].is_ident("Hook") && w[3].is_ident(name))
        };
        let delegates = |method: &str| {
            slice
                .windows(2)
                .any(|w| w[0].is_punct('.') && w[1].is_ident(method))
        };
        if !(hook("BeginOp") || delegates("begin_op")) {
            out.push(finding(
                file,
                Rule::HookCoverage,
                im.line,
                format!(
                    "`impl Smr for {}` neither emits Hook::BeginOp nor delegates begin_op",
                    im.self_ty
                ),
            ));
        }
        if !(hook("Retire") || delegates("retire")) {
            out.push(finding(
                file,
                Rule::HookCoverage,
                im.line,
                format!(
                    "`impl Smr for {}` neither emits Hook::Retire nor delegates retire",
                    im.self_ty
                ),
            ));
        }
        if !(file_has_on_reclaim || delegates("retire")) {
            out.push(finding(
                file,
                Rule::HookCoverage,
                im.line,
                format!(
                    "`impl Smr for {}`: no on_reclaim tally anywhere in this file \
                     (reclaim events would not reach era-obs)",
                    im.self_ty
                ),
            ));
        }
    }
}

/// R5 — public guard types must be `#[must_use]`: silently dropping a
/// `Ctx` releases its slot and orphans its garbage; dropping a pinned
/// handle voids its protection.
fn r5_guard_must_use(file: &SourceFile, out: &mut Vec<Finding>) {
    for s in &file.structs {
        let guardish =
            s.name.ends_with("Ctx") || s.name.ends_with("Handle") || s.name.ends_with("Guard");
        if guardish && s.is_pub && !s.has_must_use {
            out.push(finding(
                file,
                Rule::GuardMustUse,
                s.line,
                format!("guard type `{}` is not #[must_use]", s.name),
            ));
        }
    }
}

/// R6/R7 — the flow-sensitive pointer life-cycle pass, one run per
/// function body. `// LINT:` waivers exempt the fn (same escape hatch
/// as R3 — protection scoping the analysis cannot see).
fn r6_r7_lifecycle(file: &SourceFile, out: &mut Vec<Finding>) {
    for f in &file.fns {
        if f.has_lint_waiver {
            continue;
        }
        for issue in flow::analyze_body(&file.lexed.toks, f.body) {
            let rule = match issue.kind {
                FlowKind::GuardEscape => Rule::GuardEscape,
                FlowKind::UseAfterRetire => Rule::UseAfterRetire,
            };
            out.push(finding(
                file,
                rule,
                issue.line,
                format!("in `{}`: {}", f.name, issue.message),
            ));
        }
    }
}

/// R8 — the fence-pairing graph. A `SAFETY(ordering)` comment line
/// that also carries a machine-readable partner tag — the word
/// `PAIRS` followed by the tag name in parentheses — is one endpoint
/// of that pairing. Only ordering-note lines are read, so prose
/// mentions of the tag syntax are inert (this doc comment keeps the
/// two halves on separate lines for exactly that reason). Across the
/// whole check unit, every tag must have ≥2 endpoints — both sides of
/// the handshake annotated, in whatever files they live — and every
/// endpoint must sit on a real sync site (a `fence(…)` call or an
/// atomic load/store/RMW within [`PAIR_WINDOW`] lines below the
/// annotation — wider than [`WINDOW`] because ordering justifications
/// run to full paragraphs).
fn r8_fence_pairing(files: &[SourceFile], out: &mut Vec<Finding>) {
    struct Site {
        file: usize,
        line: usize,
        on_sync: bool,
    }
    let mut graph: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        // Lines carrying a real sync token in this file.
        let toks = &file.lexed.toks;
        let mut sync_lines: Vec<usize> = Vec::new();
        for i in 0..toks.len() {
            let is_fence =
                toks[i].is_ident("fence") && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            let is_atomic_method = toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident
                        && (WRITE_METHODS.contains(&t.text.as_str()) || t.text == "load")
                })
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('));
            if is_fence || is_atomic_method {
                sync_lines.push(toks[i].line);
            }
        }
        for (line, c) in file.lexed.comments.iter().enumerate() {
            if !c.text.contains("SAFETY(ordering)") {
                continue;
            }
            let mut rest = c.text.as_str();
            while let Some(pos) = rest.find("PAIRS(") {
                rest = &rest[pos + "PAIRS(".len()..];
                let Some(end) = rest.find(')') else { break };
                let tag = rest[..end].trim().to_string();
                rest = &rest[end + 1..];
                if tag.is_empty() {
                    continue;
                }
                let on_sync = sync_lines
                    .iter()
                    .any(|&sl| sl >= line && sl <= line + PAIR_WINDOW);
                graph.entry(tag).or_default().push(Site {
                    file: fi,
                    line,
                    on_sync,
                });
            }
        }
    }
    for (tag, sites) in &graph {
        for s in sites {
            if !s.on_sync {
                out.push(finding(
                    &files[s.file],
                    Rule::FencePairing,
                    s.line,
                    format!(
                        "PAIRS({tag}) annotation is not attached to a sync site \
                         (no fence/atomic call within {PAIR_WINDOW} lines below it)"
                    ),
                ));
            }
        }
        if sites.len() < 2 {
            let s = &sites[0];
            out.push(finding(
                &files[s.file],
                Rule::FencePairing,
                s.line,
                format!(
                    "fence pairing `{tag}` has only this endpoint — its partner is \
                     missing or its annotation rotted"
                ),
            ));
        }
    }
}

/// R9 — scheme-obligation check. Every file containing an `impl Smr`
/// (under `crates/smr/` in [`Scope::Auto`]; everywhere under
/// [`Scope::All`]) must carry a machine-readable header comment
///
/// ```text
/// // ERA-CLASS: <Name> <robust|non-robust>
/// ```
///
/// and the claim must match the implementation's structure: a robust
/// scheme (bounded trapped memory, Def. 4.2) must contain a
/// bounded-scan reclaim path (a `*threshold*` knob plus a
/// `*scan*`/`*reclaim*` routine); a non-robust one must not advertise
/// a bound (no `*bound*` function). When the check unit contains the
/// crates/scenarios invariant table (`fn is_robust_scheme`), the
/// declared class is also cross-checked against it — the lint, the
/// runtime verdicts and the docs must all tell the same ERA story.
fn r9_scheme_obligation(files: &[SourceFile], scope: Scope, out: &mut Vec<Finding>) {
    // The invariant table, when present in the unit: scheme names the
    // scenarios layer holds to a robustness bound.
    let mut table: Option<Vec<String>> = None;
    for file in files {
        for f in &file.fns {
            if f.name == "is_robust_scheme" {
                let names: Vec<String> = file.lexed.toks[f.body.0..=f.body.1]
                    .iter()
                    .filter(|t| t.kind == TokKind::Literal && !t.text.is_empty())
                    .map(|t| t.text.clone())
                    .collect();
                if !names.is_empty() {
                    table = Some(names);
                }
            }
        }
    }
    for file in files {
        if file.impl_smrs.is_empty() {
            continue;
        }
        if scope == Scope::Auto && !file.path.contains("crates/smr/") {
            continue;
        }
        let impl_line = file.impl_smrs[0].line;
        let header = file
            .lexed
            .comments
            .iter()
            .enumerate()
            .find_map(|(line, c)| {
                c.text
                    .find("ERA-CLASS:")
                    .map(|pos| (line, c.text[pos + "ERA-CLASS:".len()..].to_string()))
            });
        let Some((header_line, rest)) = header else {
            out.push(finding(
                file,
                Rule::SchemeObligation,
                impl_line,
                "file contains an `impl Smr` but no machine-readable \
                 `// ERA-CLASS: <Name> <robust|non-robust>` header",
            ));
            continue;
        };
        let mut words = rest.split_whitespace();
        let name = words.next().unwrap_or("").to_string();
        let class = words.next().unwrap_or("");
        let robust = match class {
            "robust" => true,
            "non-robust" => false,
            _ => {
                out.push(finding(
                    file,
                    Rule::SchemeObligation,
                    header_line,
                    format!(
                        "malformed ERA-CLASS header: want `<Name> <robust|non-robust>`, \
                         got `{}`",
                        rest.trim()
                    ),
                ));
                continue;
            }
        };
        if robust {
            // Def. 4.2 structural witness: a reclamation path that
            // scans a bounded set, gated by a threshold.
            let has_threshold = file
                .lexed
                .toks
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.contains("threshold"));
            let has_scan = file.lexed.toks.iter().any(|t| {
                t.kind == TokKind::Ident && (t.text.contains("scan") || t.text.contains("reclaim"))
            });
            if !(has_threshold && has_scan) {
                out.push(finding(
                    file,
                    Rule::SchemeObligation,
                    header_line,
                    format!(
                        "`{name}` claims robust but shows no bounded-scan reclaim path \
                         (need a *threshold* knob and a *scan*/*reclaim* routine)"
                    ),
                ));
            }
        } else {
            // A non-robust scheme advertising a bound is the ERA
            // theorem violated in the API.
            if let Some(f) = file.fns.iter().find(|f| f.name.contains("bound")) {
                out.push(finding(
                    file,
                    Rule::SchemeObligation,
                    f.sig_line,
                    format!(
                        "`{name}` declares non-robust but exposes `{}` — a non-robust \
                         scheme must not claim a trapped-memory bound",
                        f.name
                    ),
                ));
            }
        }
        if let Some(table) = &table {
            let in_table = table.iter().any(|n| n == &name);
            if in_table != robust {
                out.push(finding(
                    file,
                    Rule::SchemeObligation,
                    header_line,
                    format!(
                        "ERA-CLASS says `{name}` is {}, but the crates/scenarios invariant \
                         table says {} — the lint and the runtime verdicts must agree",
                        if robust { "robust" } else { "non-robust" },
                        if in_table { "robust" } else { "non-robust" },
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check_file(&SourceFile::parse(path, src), Scope::All)
    }

    fn rules_of(f: &[Finding]) -> Vec<Rule> {
        let mut v: Vec<Rule> = f.iter().map(|x| x.rule).collect();
        v.dedup();
        v
    }

    #[test]
    fn rule_parse_accepts_aliases() {
        assert_eq!(Rule::parse("R1"), Some(Rule::SafetyComment));
        assert_eq!(Rule::parse("r3"), Some(Rule::ProtectBeforeDeref));
        assert_eq!(
            Rule::parse("R2-ordering-justification"),
            Some(Rule::OrderingJustification)
        );
        assert_eq!(Rule::parse("guard-must-use"), Some(Rule::GuardMustUse));
        assert_eq!(Rule::parse("bogus"), None);
    }

    #[test]
    fn r1_fires_and_is_satisfiable() {
        let bad = run("a.rs", "fn f() { unsafe { g() } }");
        assert_eq!(rules_of(&bad), vec![Rule::SafetyComment]);
        let good = run(
            "a.rs",
            "fn f() {\n    // SAFETY: g has no preconditions.\n    unsafe { g() }\n}",
        );
        assert!(good.is_empty(), "{good:?}");
        let doc = run(
            "a.rs",
            "/// # Safety\n/// Caller promises.\npub unsafe fn f() { unsafe { g() } }",
        );
        assert!(doc.is_empty(), "{doc:?}");
    }

    #[test]
    fn r1_fn_level_comment_covers_later_sites() {
        let src = "fn f() {\n    // SAFETY: every node on this walk is pinned.\n    let a = unsafe { x() };\n    let b = 1;\n    let c = 2;\n    let d = 3;\n    let e = 4;\n    let g = 5;\n    let h = 6;\n    let i = 7;\n    let j = 8;\n    let k = unsafe { y() };\n}";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn r2_relaxed_needs_justification() {
        let bad = run("a.rs", "fn f(a: &A) { a.store(1, Ordering::Relaxed); }");
        assert_eq!(rules_of(&bad), vec![Rule::OrderingJustification]);
        let good = run(
            "a.rs",
            "fn f(a: &A) {\n    // SAFETY(ordering): private counter, no ordering needed.\n    a.store(1, Ordering::Relaxed);\n}",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r2_seqcst_scoped_to_smr() {
        let src = "fn f(a: &A) { a.store(1, Ordering::SeqCst); }";
        let auto = check_file(&SourceFile::parse("crates/kv/src/x.rs", src), Scope::Auto);
        assert!(auto.is_empty(), "SeqCst outside smr is free: {auto:?}");
        let smr = check_file(&SourceFile::parse("crates/smr/src/x.rs", src), Scope::Auto);
        assert_eq!(rules_of(&smr), vec![Rule::OrderingJustification]);
    }

    #[test]
    fn r2_loads_are_exempt() {
        assert!(run("a.rs", "fn f(a: &A) { a.load(Ordering::Relaxed); }").is_empty());
    }

    #[test]
    fn r3_deref_needs_dominating_protect() {
        let bad = "fn walk(ctx: &mut C) {\n    // SAFETY: pinned.\n    let k = unsafe { (*node).key };\n}";
        let f = check_file(&SourceFile::parse("crates/ds/src/x.rs", bad), Scope::Auto);
        assert_eq!(rules_of(&f), vec![Rule::ProtectBeforeDeref]);
        let good = "fn walk(&self, ctx: &mut C) {\n    self.smr.begin_op(ctx);\n    // SAFETY: pinned by begin_op.\n    let k = unsafe { (*node).key };\n}";
        let f = check_file(&SourceFile::parse("crates/ds/src/x.rs", good), Scope::Auto);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r3_waiver_and_unsafe_fn_exempt() {
        let waived = "// LINT: op-scoped — protection is the caller's begin_op.\nfn walk() {\n    // SAFETY: caller pinned.\n    let k = unsafe { (*node).key };\n}";
        let f = check_file(
            &SourceFile::parse("crates/ds/src/x.rs", waived),
            Scope::Auto,
        );
        assert!(f.is_empty(), "{f:?}");
        let un = "/// # Safety\n/// Caller owns node.\nunsafe fn free(node: *mut N) {\n    let k = unsafe { (*node).key };\n}";
        let f = check_file(&SourceFile::parse("crates/ds/src/x.rs", un), Scope::Auto);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r3_protected_load_call_dominates() {
        let src = "fn find(&self, ctx: &mut C) {\n    // SAFETY: head is always valid.\n    let w = self.smr.load(ctx, 0, unsafe { &*prev });\n}";
        let f = check_file(&SourceFile::parse("crates/ds/src/x.rs", src), Scope::Auto);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r4_missing_hooks_fire_per_gap() {
        let bad = "// ERA-CLASS: Bad non-robust\nimpl Smr for Bad {\n    fn begin_op(&self) {}\n}";
        let f = run("a.rs", bad);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::HookCoverage));
        let emits = "// ERA-CLASS: Good non-robust\nimpl Smr for Good {\n    fn begin_op(&self) { t.emit(Hook::BeginOp, 0, 0); }\n    fn retire(&self) { t.emit(Hook::Retire, 0, 0); }\n}\nfn tally() { stats.on_reclaim(1); }";
        assert!(run("a.rs", emits).is_empty());
        let delegates = "// ERA-CLASS: Wrap non-robust\nimpl<S: Smr> Smr for Wrap<S> {\n    fn begin_op(&self) { self.inner.begin_op(ctx) }\n    fn retire(&self) { self.inner.retire(ctx) }\n}";
        assert!(run("a.rs", delegates).is_empty());
    }

    #[test]
    fn r6_guard_escape_fires_via_flow() {
        let src = "fn f(list: &L) {\n    let p;\n    {\n        let mut g = list.smr.register().unwrap();\n        p = list.smr.load(&mut g, 0, &list.head);\n    }\n    // SAFETY: (wrongly) assumed pinned.\n    let k = unsafe { (*p).key };\n}";
        let f = run("a.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::GuardEscape], "{f:?}");
    }

    #[test]
    fn r7_use_after_retire_fires_via_flow() {
        let src = "fn f(list: &L, ctx: &mut C) {\n    let p = list.smr.load(ctx, 0, &list.head);\n    // SAFETY: p was protected by the load above.\n    unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, D) };\n    // SAFETY: stale claim.\n    let k = unsafe { (*p).key };\n}";
        let f = run("a.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::UseAfterRetire], "{f:?}");
    }

    #[test]
    fn r6_r7_scoped_to_protocol_users() {
        let src = "fn f(list: &L, ctx: &mut C) {\n    let p = list.smr.load(ctx, 0, &list.head);\n    // SAFETY: stale.\n    unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, D) };\n    // SAFETY: stale.\n    let k = unsafe { (*p).key };\n}";
        let smr = check_file(&SourceFile::parse("crates/smr/src/x.rs", src), Scope::Auto);
        assert!(
            !smr.iter().any(|f| f.rule == Rule::UseAfterRetire),
            "smr internals are exempt: {smr:?}"
        );
        let ds = check_file(&SourceFile::parse("crates/ds/src/x.rs", src), Scope::Auto);
        assert!(ds.iter().any(|f| f.rule == Rule::UseAfterRetire), "{ds:?}");
    }

    #[test]
    fn r6_r7_lint_waiver_exempts_fn() {
        let src = "// LINT: op-scoped — guard identity is managed by the pool.\nfn f(list: &L, ctx: &mut C) {\n    let p = list.smr.load(ctx, 0, &list.head);\n    // SAFETY: pool keeps it live.\n    unsafe { list.smr.retire(ctx, p as *mut u8, &(*p).header, D) };\n    // SAFETY: pool keeps it live.\n    let k = unsafe { (*p).key };\n}";
        let f = check_file(&SourceFile::parse("crates/ds/src/x.rs", src), Scope::Auto);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r8_lone_pair_tag_fires_and_partner_satisfies() {
        let lone = "fn f() {\n    // SAFETY(ordering): PAIRS(retire-handshake) partner below.\n    fence(Ordering::SeqCst);\n}";
        let f = run("a.rs", lone);
        assert_eq!(rules_of(&f), vec![Rule::FencePairing], "{f:?}");
        // Two endpoints in *different files* of the same unit: clean.
        let a = SourceFile::parse("a.rs", lone);
        let b = SourceFile::parse(
            "b.rs",
            "fn g() {\n    // SAFETY(ordering): PAIRS(retire-handshake) partner in a.rs.\n    fence(Ordering::SeqCst);\n}",
        );
        let f = check_unit(&[a, b], Scope::All);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r8_annotation_must_sit_on_a_sync_site() {
        // Enough filler lines to keep the detached annotation outside
        // the PAIR_WINDOW of the real fence below.
        let filler = "fn pad() { let x = 1; }\n".repeat(PAIR_WINDOW + 4);
        let src = format!(
            "// SAFETY(ordering): PAIRS(ghost) nowhere near a fence.\n{filler}fn g() {{\n    // SAFETY(ordering): PAIRS(ghost) partner is real.\n    fence(Ordering::SeqCst);\n}}"
        );
        let f = run("a.rs", &src);
        assert_eq!(rules_of(&f), vec![Rule::FencePairing]);
        assert_eq!(f.len(), 1, "only the detached endpoint fires: {f:?}");
        assert!(f[0].message.contains("not attached"), "{f:?}");
    }

    #[test]
    fn r8_prose_mentions_without_ordering_tag_are_inert() {
        let f = run(
            "a.rs",
            "/// Docs explaining the PAIRS(name) syntax.\nfn f() {}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r9_missing_and_malformed_headers_fire() {
        let missing = "impl Smr for Foo {\n    fn begin_op(&self) { self.inner.begin_op(ctx) }\n    fn retire(&self) { self.inner.retire(ctx) }\n}";
        let f = run("a.rs", missing);
        assert_eq!(rules_of(&f), vec![Rule::SchemeObligation], "{f:?}");
        let malformed = format!("// ERA-CLASS: Foo sorta-robust\n{missing}");
        let f = run("a.rs", &malformed);
        assert_eq!(rules_of(&f), vec![Rule::SchemeObligation], "{f:?}");
        let good = format!("// ERA-CLASS: Foo non-robust\n{missing}");
        assert!(run("a.rs", &good).is_empty());
    }

    #[test]
    fn r9_robust_claim_needs_bounded_scan_path() {
        let base = "impl Smr for Foo {\n    fn begin_op(&self) { self.inner.begin_op(ctx) }\n    fn retire(&self) { self.inner.retire(ctx) }\n}";
        let bare = format!("// ERA-CLASS: Foo robust\n{base}");
        let f = run("a.rs", &bare);
        assert_eq!(rules_of(&f), vec![Rule::SchemeObligation], "{f:?}");
        let witnessed = format!(
            "// ERA-CLASS: Foo robust\nconst scan_threshold: usize = 64;\nfn scan_and_reclaim() {{}}\n{base}"
        );
        assert!(run("a.rs", &witnessed).is_empty());
    }

    #[test]
    fn r9_non_robust_must_not_claim_a_bound() {
        let src = "// ERA-CLASS: Foo non-robust\nimpl Smr for Foo {\n    fn begin_op(&self) { self.inner.begin_op(ctx) }\n    fn retire(&self) { self.inner.retire(ctx) }\n}\npub fn robustness_bound() -> usize { 64 }";
        let f = run("a.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::SchemeObligation], "{f:?}");
        assert!(f[0].message.contains("robustness_bound"), "{f:?}");
    }

    #[test]
    fn r9_cross_checks_the_invariant_table() {
        let scheme = SourceFile::parse(
            "crates/smr/src/foo.rs",
            "// ERA-CLASS: Foo robust\nconst scan_threshold: usize = 64;\nfn scan_and_reclaim() {}\nimpl Smr for Foo {\n    fn begin_op(&self) { self.inner.begin_op(ctx) }\n    fn retire(&self) { self.inner.retire(ctx) }\n}",
        );
        let table = SourceFile::parse(
            "crates/scenarios/src/invariant.rs",
            "pub fn is_robust_scheme(name: &str) -> bool {\n    matches!(name, \"HP\" | \"HE\")\n}",
        );
        let f = check_unit(&[scheme, table], Scope::Auto);
        let r9: Vec<_> = f
            .iter()
            .filter(|x| x.rule == Rule::SchemeObligation)
            .collect();
        assert_eq!(r9.len(), 1, "Foo robust but not in table: {f:?}");
        assert!(r9[0].message.contains("invariant"), "{r9:?}");
    }

    #[test]
    fn r5_guard_types_must_use() {
        let bad = run("a.rs", "pub struct FooCtx { x: u32 }");
        assert_eq!(rules_of(&bad), vec![Rule::GuardMustUse]);
        assert!(run("a.rs", "#[must_use]\npub struct FooCtx { x: u32 }").is_empty());
        assert!(
            run("a.rs", "struct PrivCtx;").is_empty(),
            "private types are the file's own business"
        );
        assert!(run("a.rs", "pub struct Store;").is_empty());
    }
}
