//! A minimal Rust lexer: just enough token structure for the era-lint
//! rules, none of the grammar.
//!
//! The workspace builds offline with no registry access, so `syn` is
//! not available; this hand-rolled scanner fills the gap. It produces
//! two streams per file:
//!
//! * [`Tok`]s — identifiers, punctuation, lifetimes and literals, each
//!   stamped with its 1-based source line. Comment content and string
//!   *structure* never reach the identifier/punctuation stream, so rule
//!   patterns cannot be spoofed by prose (a doc comment mentioning
//!   `unsafe`, a test embedding bad code in a string literal). String
//!   literals keep their inner text on the [`TokKind::Literal`] token —
//!   rules that match identifiers or punctuation never see it, but the
//!   R9 scheme-obligation check reads the scenarios invariant table
//!   (`matches!(name, "HP" | …)`) straight from those literals.
//! * [`Comment`]s — the comment text per line, which is exactly where
//!   the discipline this linter enforces lives (`// SAFETY:`,
//!   `SAFETY(ordering)`, `// LINT:` waivers, `# Safety` doc sections,
//!   `PAIRS(name)` fence partners, `ERA-CLASS:` headers).
//!
//! Handled: line and (nested) block comments, doc comments, string /
//! raw-string / byte-string / c-string / char / byte-char literals,
//! lifetimes vs. char literals, numeric literals. Not handled (not
//! needed): macro tokenization subtleties, float-vs-range ambiguity,
//! non-ASCII identifiers.

/// Kinds of tokens the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `store`, …).
    Ident,
    /// Single punctuation character (`.`, `(`, `*`, …).
    Punct,
    /// Lifetime (`'a`, `'retry`) — distinct so `'x` never reads as a deref.
    Lifetime,
    /// String/char/numeric literal. String literals carry their inner
    /// text (no delimiters); all other literals carry `""`.
    Literal,
}

/// One token: kind, text and 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (single char for punctuation; inner text for string
    /// literals; `""` for char/numeric literals).
    pub text: String,
    /// 1-based line number of the token's *first* character (multi-line
    /// string literals are stamped where they open, not where they
    /// close).
    pub line: usize,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Comment text found on one source line (all comments on the line,
/// concatenated: trailing `//`, doc `///`, and any block-comment text
/// that covers the line).
#[derive(Debug, Clone, Default)]
pub struct Comment {
    /// Concatenated comment text for the line (empty = no comment).
    pub text: String,
}

/// Lexer output for one file.
#[derive(Debug)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Per-line comment text, indexed by 1-based line (slot 0 unused).
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Comment text on `line` (empty string when out of range).
    pub fn comment_on(&self, line: usize) -> &str {
        self.comments.get(line).map_or("", |c| c.text.as_str())
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Never fails: unrecognized bytes are skipped, and an
/// unterminated literal or comment simply consumes the rest of the
/// file — for a linter, resilience beats strictness.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let nlines = src.lines().count() + 2;
    let mut out = Lexed {
        toks: Vec::new(),
        comments: vec![Comment::default(); nlines + 1],
    };
    let mut i = 0;
    let mut line = 1;
    let push_comment = |comments: &mut Vec<Comment>, line: usize, text: &str| {
        if let Some(slot) = comments.get_mut(line) {
            if !slot.text.is_empty() {
                slot.text.push(' ');
            }
            slot.text.push_str(text);
        }
    };
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                push_comment(&mut out.comments, line, &text);
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Nested block comment; record its text on every line
                // it covers so line-window scans see it.
                let mut depth = 1usize;
                i += 2;
                let mut cur = String::from("/*");
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        cur.push_str("/*");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        cur.push_str("*/");
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            push_comment(&mut out.comments, line, &cur);
                            cur.clear();
                            line += 1;
                        } else {
                            cur.push(b[i]);
                        }
                        i += 1;
                    }
                }
                if !cur.is_empty() {
                    push_comment(&mut out.comments, line, &cur);
                }
            }
            '"' => {
                let tok_line = line;
                let mut content = String::new();
                i = skip_string(&b, i, &mut line, &mut content);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: content,
                    line: tok_line,
                });
            }
            // `b'x'` / `b'\n'` byte-char literals: without this arm the
            // `b` would lex as a stray identifier ahead of the char
            // literal, desyncing fixed-width window matches.
            'b' if i + 1 < n && b[i + 1] == '\'' => {
                i = skip_char_literal(&b, i + 1);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            'r' | 'b' | 'c' if starts_string_prefix(&b, i) => {
                let tok_line = line;
                let mut content = String::new();
                i = skip_prefixed_string(&b, i, &mut line, &mut content);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: content,
                    line: tok_line,
                });
            }
            '\'' => {
                // Lifetime or char literal. `'ident` not followed by a
                // closing quote is a lifetime; anything else is a char.
                let mut j = i + 1;
                if j < n && is_ident_start(b[j]) {
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' {
                        // 'a' — char literal
                        out.toks.push(Tok {
                            kind: TokKind::Literal,
                            text: String::new(),
                            line,
                        });
                        i = j + 1;
                    } else {
                        let text: String = b[i..j].iter().collect();
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text,
                            line,
                        });
                        i = j;
                    }
                } else {
                    i = skip_char_literal(&b, i);
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                while i < n && (is_ident_continue(b[i]) || b[i] == '.') {
                    // `0..10` — stop before a range so `..` stays punctuation.
                    if b[i] == '.' && i + 1 < n && b[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` (at `r`/`b`/`c`) starts a prefixed string
/// literal (`r"`, `r#"`, `b"`, `br#"`, `c"`, …).
fn starts_string_prefix(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    // up to two prefix letters (br, rb) then optional #s then a quote
    let mut letters = 0;
    while j < n && matches!(b[j], 'r' | 'b' | 'c') && letters < 2 {
        j += 1;
        letters += 1;
    }
    let mut hashes = false;
    while j < n && b[j] == '#' {
        j += 1;
        hashes = true;
    }
    j < n && b[j] == '"' && (hashes || j > i)
}

/// Skips a char-ish literal starting at `i` (the opening quote):
/// `'x'`, `'\n'`, `'\''`, `'\u{7f}'`. Returns the index after the
/// closing quote.
fn skip_char_literal(b: &[char], mut i: usize) -> usize {
    let n = b.len();
    i += 1;
    if i < n && b[i] == '\\' {
        i += 1;
        if i < n {
            i += 1;
        }
        // \u{...}
        while i < n && b[i] != '\'' && b[i] != '\n' {
            i += 1;
        }
    } else if i < n {
        i += 1;
    }
    if i < n && b[i] == '\'' {
        i += 1;
    }
    i
}

/// Skips a plain `"…"` string starting at `i` (the opening quote);
/// returns the index after the closing quote, appending the inner text
/// (escapes left raw) to `content`.
fn skip_string(b: &[char], mut i: usize, line: &mut usize, content: &mut String) -> usize {
    let n = b.len();
    i += 1;
    while i < n {
        match b[i] {
            '\\' => {
                content.push(b[i]);
                if i + 1 < n {
                    content.push(b[i + 1]);
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                content.push('\n');
                i += 1;
            }
            c => {
                content.push(c);
                i += 1;
            }
        }
    }
    i
}

/// Skips a prefixed (and possibly raw) string starting at `i`; returns
/// the index after its closing delimiter, appending the inner text to
/// `content`.
fn skip_prefixed_string(b: &[char], mut i: usize, line: &mut usize, content: &mut String) -> usize {
    let n = b.len();
    let mut raw = false;
    while i < n && matches!(b[i], 'r' | 'b' | 'c') {
        if b[i] == 'r' {
            raw = true;
        }
        i += 1;
    }
    let mut hashes = 0usize;
    while i < n && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || b[i] != '"' {
        return i;
    }
    if !raw && hashes == 0 {
        return skip_string(b, i, line, content);
    }
    i += 1;
    while i < n {
        if b[i] == '\n' {
            *line += 1;
            content.push('\n');
            i += 1;
            continue;
        }
        if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < n && b[j] == '#' && seen < hashes {
                j += 1;
                seen += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        if !raw && b[i] == '\\' {
            content.push(b[i]);
            i += 1;
        }
        if i < n {
            content.push(b[i]);
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_do_not_reach_tokens() {
        let l = lex("let x = 1; // unsafe in prose\n/* unsafe too */ let y;");
        assert!(!l.toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(l.comment_on(1).contains("unsafe in prose"));
        assert!(l.comment_on(2).contains("unsafe too"));
    }

    #[test]
    fn strings_are_opaque_to_ident_matching() {
        let src = "let s = \"unsafe { }\"; let r = r#\"also unsafe\"# ;";
        let l = lex(src);
        // Nothing inside either literal tokenizes as an identifier.
        assert!(!l.toks.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn string_literals_keep_their_content() {
        let l = lex("matches!(name, \"HP\" | \"HE\")");
        let lits: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && !t.text.is_empty())
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["HP", "HE"]);
        // …but content never satisfies identifier matching.
        assert!(!l.toks.iter().any(|t| t.is_ident("HP")));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("'retry: loop { let c = 'x'; &*p }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'retry"));
        let derefs: Vec<_> = l.toks.iter().filter(|t| t.is_punct('*')).collect();
        assert_eq!(derefs.len(), 1);
    }

    #[test]
    fn lines_are_tracked() {
        let l = lex("a\nb\nc");
        let lines: Vec<usize> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert!(l.toks.iter().any(|t| t.is_ident("fn")));
        assert!(l.comment_on(1).contains('b'));
    }

    // ---- regression: edge cases that can desync rule matching ----

    #[test]
    fn double_slash_inside_string_is_not_a_comment() {
        // A URL in a string must neither open a comment (swallowing the
        // rest of the line) nor hide the real trailing comment.
        let l = lex("let url = \"https://example.com\"; x.store(1); // SAFETY: real");
        assert!(l.toks.iter().any(|t| t.is_ident("store")));
        assert!(l.comment_on(1).contains("SAFETY: real"));
        // And a SAFETY-shaped string must not spoof a comment.
        let l = lex("let fake = \"// SAFETY: spoofed\";\nunsafe_marker();");
        assert!(!l.comment_on(1).contains("SAFETY"));
    }

    #[test]
    fn raw_string_with_hashes_is_opaque_and_tracks_lines() {
        let src = "let re = r#\"multi\nline \" with quote\nand // slashes\"#;\nfn after() {}";
        let l = lex(src);
        assert!(!l.toks.iter().any(|t| t.is_ident("line")));
        assert!(l.comment_on(3).is_empty(), "// inside raw string spoofed");
        let after = l.toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 4, "raw string desynced line tracking");
        // The literal is stamped where it opens, not where it closes.
        let lit = l.toks.iter().find(|t| t.kind == TokKind::Literal).unwrap();
        assert_eq!(lit.line, 1);
    }

    #[test]
    fn multiline_plain_string_is_stamped_at_its_opening_line() {
        let l = lex("let s = \"a\nb\";\nfn g() {}");
        let lit = l.toks.iter().find(|t| t.kind == TokKind::Literal).unwrap();
        assert_eq!(lit.line, 1, "multi-line string stamped at close line");
        let g = l.toks.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 3);
    }

    #[test]
    fn nested_block_comment_hides_code_and_keeps_line_numbers() {
        let src = "/* outer /* unsafe { bad() } */ still comment\n*/\nfn real() {}";
        let l = lex(src);
        assert!(!l.toks.iter().any(|t| t.is_ident("unsafe")));
        let real = l.toks.iter().find(|t| t.is_ident("real")).unwrap();
        assert_eq!(real.line, 3);
    }

    #[test]
    fn byte_char_literal_does_not_shed_a_stray_ident() {
        let l = lex("let nl = b'\\n'; let q = b'\"'; let sp = b' '; done();");
        assert!(
            !l.toks.iter().any(|t| t.is_ident("b")),
            "b'…' byte-char shed a stray `b` ident: {:?}",
            l.toks
        );
        assert!(l.toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn quote_chars_do_not_open_strings() {
        // '"' and '\'' must not be mistaken for string openers.
        let l = lex("let a = '\"'; let b = '\\''; trailing(); // SAFETY: here");
        assert!(l.toks.iter().any(|t| t.is_ident("trailing")));
        assert!(l.comment_on(1).contains("SAFETY: here"));
    }

    #[test]
    fn escaped_backslash_then_comment() {
        let l = lex("let s = \"tail\\\\\"; x.load(); // LINT: visible");
        assert!(l.toks.iter().any(|t| t.is_ident("load")));
        assert!(l.comment_on(1).contains("LINT: visible"));
    }
}
