//! Token-tree parser: the bridge from the flat token stream to
//! structure the dataflow pass can walk.
//!
//! Like `proc_macro`'s token trees, the grammar is just bracket
//! nesting: a [`Tree`] is either a leaf token or a delimited group
//! (`(…)`, `[…]`, `{…}`) containing more trees. That is all the
//! structure the pointer life-cycle analysis needs — blocks are `{}`
//! groups (scopes), call argument lists are `()` groups, and statement
//! boundaries are `;` leaves at one nesting level. No expression
//! grammar, no precedence: the flow pass pattern-matches leaf
//! sequences the same way the line-oriented rules always have, but now
//! *per nesting level*, which is what makes scope reasoning sound.
//!
//! Resilience over strictness, as everywhere in this crate: a stray
//! closing delimiter becomes a leaf, and an unclosed group simply
//! extends to the end of the parsed range.

use crate::lexer::Tok;

/// One node of the token tree.
#[derive(Debug)]
pub enum Tree {
    /// A single non-delimiter token, by index into the file's token
    /// stream.
    Leaf(usize),
    /// A delimited group.
    Group(Group),
}

impl Tree {
    /// The leaf's token index, if this is a leaf.
    pub fn leaf(&self) -> Option<usize> {
        match self {
            Tree::Leaf(i) => Some(*i),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is a group.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Leaf(_) => None,
            Tree::Group(g) => Some(g),
        }
    }
}

/// A delimited group of trees.
#[derive(Debug)]
pub struct Group {
    /// Opening delimiter: `(`, `[` or `{`.
    pub delim: char,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter (or the last consumed
    /// token, when unclosed).
    pub close: usize,
    /// Children, in source order.
    pub children: Vec<Tree>,
}

fn closer_for(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Parses the inclusive token range `[lo, hi]` into a tree sequence.
pub fn parse_range(toks: &[Tok], lo: usize, hi: usize) -> Vec<Tree> {
    let hi = hi.min(toks.len().saturating_sub(1));
    let mut i = lo;
    parse_level(toks, &mut i, hi, None)
}

/// Parses trees until `hi` (inclusive) or until the expected closing
/// delimiter for the enclosing group is found at this level.
fn parse_level(toks: &[Tok], i: &mut usize, hi: usize, closing: Option<char>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *i <= hi {
        let t = &toks[*i];
        let c = if t.text.len() == 1 {
            t.text.chars().next().unwrap_or('\0')
        } else {
            '\0'
        };
        if let Some(close) = closing {
            if t.is_punct(close) {
                return out;
            }
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            let open = *i;
            *i += 1;
            let children = parse_level(toks, i, hi, Some(closer_for(c)));
            // `*i` now sits on the closer (or past `hi` when unclosed).
            let close = (*i).min(hi);
            out.push(Tree::Group(Group {
                delim: c,
                open,
                close,
                children,
            }));
            *i += 1;
        } else {
            out.push(Tree::Leaf(*i));
            *i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn shape(trees: &[Tree], toks: &[Tok]) -> String {
        let mut s = String::new();
        for t in trees {
            match t {
                Tree::Leaf(i) => {
                    s.push_str(&toks[*i].text);
                    s.push(' ');
                }
                Tree::Group(g) => {
                    s.push(g.delim);
                    s.push_str(&shape(&g.children, toks));
                    s.push(closer_for(g.delim));
                    s.push(' ');
                }
            }
        }
        s.trim_end().to_string()
    }

    #[test]
    fn groups_nest() {
        let l = lex("f(a, g(b)) { h[i] }");
        let trees = parse_range(&l.toks, 0, l.toks.len() - 1);
        assert_eq!(shape(&trees, &l.toks), "f (a , g (b)) {h [i]}");
    }

    #[test]
    fn stray_closer_is_a_leaf() {
        let l = lex(") x (y");
        let trees = parse_range(&l.toks, 0, l.toks.len() - 1);
        // The stray `)` leads, and the unclosed `(y` still captures y.
        assert_eq!(shape(&trees, &l.toks), ") x (y)");
    }

    #[test]
    fn subrange_parsing_respects_bounds() {
        let l = lex("fn f() { a; b; } fn g() {}");
        // Parse only f's body braces.
        let open = l.toks.iter().position(|t| t.is_punct('{')).unwrap();
        let close = l.toks.iter().position(|t| t.is_punct('}')).unwrap();
        let trees = parse_range(&l.toks, open, close);
        assert_eq!(shape(&trees, &l.toks), "{a ; b ;}");
    }
}
