//! Golden-fixture tests: every rule has a known-bad snippet asserted
//! to trip exactly that rule, plus a clean fixture asserted to trip
//! nothing. The same expectations run in CI via `era-lint fixtures`,
//! proving the analyzer still fires after any refactor.

use std::collections::BTreeSet;
use std::path::PathBuf;

use era_lint::{check_file, run_fixtures, Rule, Scope, SourceFile};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fired(name: &str) -> BTreeSet<Rule> {
    let path = fixtures_dir().join(name);
    let text = std::fs::read_to_string(&path).unwrap();
    let file = SourceFile::parse(name, &text);
    check_file(&file, Scope::All)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

fn only(rule: Rule) -> BTreeSet<Rule> {
    [rule].into_iter().collect()
}

#[test]
fn missing_safety_trips_exactly_r1() {
    assert_eq!(fired("missing_safety.rs"), only(Rule::SafetyComment));
}

#[test]
fn unjustified_relaxed_trips_exactly_r2() {
    assert_eq!(
        fired("unjustified_relaxed.rs"),
        only(Rule::OrderingJustification)
    );
}

#[test]
fn seqcst_unpaired_trips_exactly_r2() {
    assert_eq!(
        fired("seqcst_unpaired.rs"),
        only(Rule::OrderingJustification)
    );
}

#[test]
fn deref_without_protect_trips_exactly_r3() {
    assert_eq!(
        fired("deref_without_protect.rs"),
        only(Rule::ProtectBeforeDeref)
    );
}

#[test]
fn missing_hook_trips_exactly_r4() {
    assert_eq!(fired("missing_hook.rs"), only(Rule::HookCoverage));
}

#[test]
fn guard_not_must_use_trips_exactly_r5() {
    assert_eq!(fired("guard_not_must_use.rs"), only(Rule::GuardMustUse));
}

#[test]
fn guard_escape_trips_exactly_r6() {
    assert_eq!(fired("guard_escape.rs"), only(Rule::GuardEscape));
}

#[test]
fn use_after_retire_trips_exactly_r7() {
    assert_eq!(fired("use_after_retire.rs"), only(Rule::UseAfterRetire));
}

#[test]
fn unmatched_fence_pair_trips_exactly_r8() {
    assert_eq!(fired("fence_pair_unmatched.rs"), only(Rule::FencePairing));
}

#[test]
fn missing_scheme_class_trips_exactly_r9() {
    assert_eq!(
        fired("scheme_class_missing.rs"),
        only(Rule::SchemeObligation)
    );
}

#[test]
fn unbounded_scheme_claiming_bound_trips_exactly_r9() {
    assert_eq!(
        fired("scheme_class_unbounded.rs"),
        only(Rule::SchemeObligation)
    );
}

#[test]
fn clean_fixtures_are_clean() {
    for f in [
        "clean.rs",
        "guard_scoped_clean.rs",
        "retire_last_clean.rs",
        "fence_pair_clean.rs",
        "scheme_class_clean.rs",
        "lexer_edgecases.rs",
    ] {
        assert!(fired(f).is_empty(), "{f}: {:?}", fired(f));
    }
}

#[test]
fn fixture_harness_agrees_with_headers() {
    // The CI gate (`era-lint fixtures`) and these tests must never
    // drift: the harness reads the //@ expect headers and reaches the
    // same verdicts.
    let results = run_fixtures(&fixtures_dir()).unwrap();
    assert!(results.len() >= 16, "fixture tree shrank: {results:?}");
    for r in &results {
        assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
    }
}

#[test]
fn every_rule_has_at_least_one_firing_fixture() {
    let mut covered: BTreeSet<Rule> = BTreeSet::new();
    for f in [
        "missing_safety.rs",
        "unjustified_relaxed.rs",
        "seqcst_unpaired.rs",
        "deref_without_protect.rs",
        "missing_hook.rs",
        "guard_not_must_use.rs",
        "guard_escape.rs",
        "use_after_retire.rs",
        "fence_pair_unmatched.rs",
        "scheme_class_missing.rs",
    ] {
        covered.extend(fired(f));
    }
    assert_eq!(covered.len(), Rule::ALL.len(), "uncovered rules exist");
}
