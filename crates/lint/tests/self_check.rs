//! The workspace self-check: `era-lint check .` must stay clean on
//! `main`. This is the actual gate — the fixtures prove the rules can
//! fire; this proves the tree does not.

use era_lint::{check_tree, LintConfig};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint → workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn workspace_is_rule_clean() {
    let report = check_tree(&workspace_root(), &LintConfig::default()).unwrap();
    let mut msg = String::new();
    for r in &report.records {
        msg.push_str(&format!(
            "  {}:{} [{}] {}\n",
            r.path, r.line, r.rule, r.message
        ));
    }
    assert_eq!(report.denied(), 0, "workspace has lint findings:\n{msg}");
    // Sanity: the walk actually visited the source tree.
    assert!(
        report.files_scanned > 60,
        "only {} files scanned — walker broke?",
        report.files_scanned
    );
}
