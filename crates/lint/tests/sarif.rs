//! End-to-end SARIF test: real findings from the golden fixtures, the
//! baseline waiver flow, the emitter, and the shape check — the exact
//! pipeline `era-lint check --sarif-out` runs in CI.

use std::path::PathBuf;

use era_lint::baseline;
use era_lint::sarif::{shape_check, to_sarif};
use era_lint::{check_file, LintRecord, Scope, SourceFile};

fn fixture_records(name: &str) -> Vec<LintRecord> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap();
    let file = SourceFile::parse(&format!("crates/lint/fixtures/{name}"), &text);
    check_file(&file, Scope::All)
        .iter()
        .map(|f| LintRecord::new(f, true))
        .collect()
}

#[test]
fn fixture_findings_emit_valid_sarif() {
    let mut records = Vec::new();
    for f in [
        "guard_escape.rs",
        "use_after_retire.rs",
        "fence_pair_unmatched.rs",
        "scheme_class_missing.rs",
    ] {
        records.extend(fixture_records(f));
    }
    assert!(records.len() >= 4, "expected one finding per fixture");

    let s = to_sarif(&records);
    shape_check(&s).unwrap();

    // The rule catalog rides along even for rules with no results.
    for id in [
        "R1-safety-comment",
        "R8-fence-pairing",
        "R9-scheme-obligation",
    ] {
        assert!(
            s.contains(&format!("\"id\": \"{id}\"")),
            "catalog lost {id}"
        );
    }
    // Each fixture's finding surfaces with its uri and rule id.
    assert!(s.contains("\"ruleId\": \"R6-guard-escape\""));
    assert!(s.contains("\"ruleId\": \"R7-use-after-retire\""));
    assert!(s.contains("\"uri\": \"crates/lint/fixtures/guard_escape.rs\""));
    assert!(s.contains("\"level\": \"error\""));
}

#[test]
fn waived_findings_become_suppressed_notes() {
    let mut records = fixture_records("guard_escape.rs");
    let n = records.len();
    assert!(n >= 1);

    let base = baseline::parse(
        "R6-guard-escape | crates/lint/fixtures/guard_escape.rs | \
         fixture demonstrates the firing shape | expires=2999-01-01\n",
    )
    .unwrap();
    let outcome = base.apply(&mut records, (2026, 8, 7));
    assert_eq!(outcome.waived, n);
    assert!(outcome.expired.is_empty());
    assert!(outcome.unused.is_empty());

    let s = to_sarif(&records);
    shape_check(&s).unwrap();
    assert_eq!(s.matches("\"level\": \"note\"").count(), n);
    assert_eq!(s.matches("\"suppressions\"").count(), n);
    assert!(!s.contains("\"level\": \"error\""));
}

#[test]
fn snapshot_of_a_single_result_block() {
    let records = vec![LintRecord {
        rule: "R9-scheme-obligation",
        level: "deny",
        path: "crates/smr/src/ebr.rs".into(),
        line: 234,
        message: "file contains an `impl Smr` but no header".into(),
    }];
    let s = to_sarif(&records);
    let expected = r#"        {
          "ruleId": "R9-scheme-obligation",
          "level": "error",
          "message": {"text": "file contains an `impl Smr` but no header"},
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {"uri": "crates/smr/src/ebr.rs"},
                "region": {"startLine": 234}
              }
            }
          ]
        }"#;
    assert!(s.contains(expected), "snapshot drifted; emitted:\n{s}");
}
