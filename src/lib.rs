//! # era — reproduction of "The ERA Theorem for Safe Memory Reclamation"
//!
//! Facade crate re-exporting the workspace members:
//!
//! * [`core`] (`era-core`) — the executable formal model: histories,
//!   linearizability, pointer validity, SMR safety, robustness,
//!   integration and applicability, and the ERA matrix.
//! * [`sim`] (`era-sim`) — the deterministic shared-memory simulator and
//!   the paper's Figure 1 / Figure 2 constructions.
//! * [`smr`] (`era-smr`) — real, concurrent reclamation schemes: EBR,
//!   HP, HE, IBR, VBR, NBR and a leaking baseline.
//! * [`ds`] (`era-ds`) — lock-free data structures integrated with the
//!   schemes: Harris/Michael lists, Treiber stack, Michael–Scott queue,
//!   hash map.
//! * [`obs`] (`era-obs`) — lock-free event tracing, footprint metrics,
//!   and JSON-lines run reports shared by the layers above.
//! * [`kv`] (`era-kv`) — the serving layer: a sharded SMR-backed
//!   key-value store whose runtime ERA navigator trades the theorem's
//!   three properties dynamically (admission control, cooperative
//!   neutralization) instead of fixing one trade-off at design time.
//! * [`chaos`] (`era-chaos`) — deterministic fault injection: a
//!   `ChaosSmr` decorator (and a VBR `ChaosArena`) replaying seeded
//!   `FaultPlan`s — die-pinned contexts, stalled announcements,
//!   delayed flushes, slot exhaustion — against any scheme.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the reproduction
//! of every figure in the paper.

pub use era_chaos as chaos;
pub use era_core as core;
pub use era_ds as ds;
pub use era_kv as kv;
pub use era_obs as obs;
pub use era_sim as sim;
pub use era_smr as smr;
