//! Failure injection: threads that die at the worst moments.
//!
//! Nikolaev & Ravindran's *transparency* (§2 related work) asks that
//! threads may come and go without compromising the scheme. We inject
//! the nastier version: a thread's context is dropped **mid-operation**
//! (the thread panicked or was torn down while pinned). The schemes
//! must (a) not free anything the departed thread could still have
//! referenced *before* the drop, (b) release the slot for reuse, and
//! (c) let reclamation resume afterwards — including adopting the
//! departed thread's orphaned garbage.

use era::ds::MichaelList;
use era::smr::common::Smr;
use era::smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, nbr::Nbr, qsbr::Qsbr};

/// Begin an op, load through a protected slot, then drop the context
/// without ever calling `end_op` — the "thread died pinned" injection.
fn die_pinned<S: Smr>(smr: &S) {
    let mut ctx = smr.register().expect("slot");
    smr.begin_op(&mut ctx);
    let word = std::sync::atomic::AtomicUsize::new(0);
    let _ = smr.load(&mut ctx, 0, &word);
    drop(ctx); // no end_op
}

fn churn_and_drain<S: Smr>(smr: &S, rounds: i64) -> (u64, usize) {
    let list = MichaelList::new(smr);
    let mut ctx = smr.register().expect("slot");
    for k in 0..rounds {
        assert!(list.insert(&mut ctx, k % 97));
        assert!(list.delete(&mut ctx, k % 97));
    }
    for _ in 0..8 {
        smr.flush(&mut ctx);
    }
    let st = smr.stats();
    (st.total_retired, st.retired_now)
}

#[test]
fn ebr_recovers_after_a_thread_dies_pinned() {
    let smr = Ebr::with_threshold(4, 8);
    die_pinned(&smr);
    // The dead thread's announcement was cleared on drop: the epoch can
    // advance and reclamation proceeds as if it had never existed.
    let (retired, now) = churn_and_drain(&smr, 2_000);
    assert_eq!(retired, 2_000);
    assert_eq!(now, 0, "dead pinned thread must not block EBR forever");
}

#[test]
fn hp_recovers_after_a_thread_dies_pinned() {
    let smr = Hp::with_threshold(4, 3, 8);
    die_pinned(&smr);
    let (retired, now) = churn_and_drain(&smr, 2_000);
    assert_eq!(retired, 2_000);
    assert_eq!(now, 0, "dead thread's hazards must be cleared on drop");
}

#[test]
fn he_and_ibr_recover_after_a_thread_dies_pinned() {
    let he = He::with_params(4, 3, 8, 4);
    die_pinned(&he);
    let (_, now) = churn_and_drain(&he, 2_000);
    assert_eq!(now, 0);

    let ibr = Ibr::with_params(4, 8, 4);
    die_pinned(&ibr);
    let (_, now) = churn_and_drain(&ibr, 2_000);
    assert_eq!(now, 0);
}

#[test]
fn nbr_recovers_after_a_thread_dies_pinned() {
    let smr = Nbr::with_threshold(4, 2, 8);
    die_pinned(&smr);
    let (_, now) = churn_and_drain(&smr, 2_000);
    assert_eq!(now, 0, "dead thread counts as quiescent for neutralization");
}

#[test]
fn qsbr_recovers_after_a_thread_dies_pinned() {
    let smr = Qsbr::with_threshold(4, 8);
    die_pinned(&smr);
    // QSBR still needs the LIVE thread to announce quiescence.
    let list = MichaelList::new(&smr);
    let mut ctx = smr.register().expect("slot");
    for k in 0..500i64 {
        assert!(list.insert(&mut ctx, k % 31));
        assert!(list.delete(&mut ctx, k % 31));
        if k % 16 == 0 {
            smr.quiescent(&mut ctx);
        }
    }
    for _ in 0..4 {
        smr.quiescent(&mut ctx);
        smr.flush(&mut ctx);
    }
    assert_eq!(
        smr.stats().retired_now,
        0,
        "a departed thread is permanently quiescent"
    );
}

#[test]
fn slots_are_reusable_after_many_deaths() {
    // Capacity 2: if dead threads leaked their slots, the 17th
    // registration would fail.
    let smr = Ebr::new(2);
    for _ in 0..16 {
        die_pinned(&smr);
    }
    let mut ctx = smr.register().expect("slots recycled after deaths");
    smr.begin_op(&mut ctx);
    smr.end_op(&mut ctx);
}

#[test]
fn orphaned_garbage_is_adopted_not_leaked() {
    let smr = Ebr::with_threshold(4, 1_000_000); // never self-collects
    {
        // A worker retires a pile and dies without flushing.
        let list = MichaelList::new(&smr);
        let mut ctx = smr.register().unwrap();
        for k in 0..500i64 {
            assert!(list.insert(&mut ctx, k));
            assert!(list.delete(&mut ctx, k));
        }
        drop(ctx); // garbage goes to the orphan pool
        assert_eq!(smr.stats().retired_now, 500);
        // A survivor adopts and frees it.
        let mut survivor = smr.register().unwrap();
        for _ in 0..6 {
            smr.begin_op(&mut survivor);
            smr.end_op(&mut survivor);
            smr.flush(&mut survivor);
        }
        assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
    }
}

#[test]
fn death_during_concurrent_churn() {
    // Threads keep dying pinned while others churn: the system must
    // neither crash nor wedge, and must drain at the end.
    let smr = Ebr::with_threshold(8, 16);
    let list = MichaelList::new(&smr);
    std::thread::scope(|s| {
        for t in 0..2i64 {
            let (list, smr) = (&list, &smr);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for k in 0..2_000i64 {
                    let key = t * 10_000 + k % 101;
                    let _ = list.insert(&mut ctx, key);
                    let _ = list.delete(&mut ctx, key);
                }
                for _ in 0..4 {
                    smr.flush(&mut ctx);
                }
            });
        }
        s.spawn(|| {
            for _ in 0..50 {
                die_pinned(&smr);
            }
        });
    });
    let mut ctx = smr.register().unwrap();
    for _ in 0..8 {
        smr.begin_op(&mut ctx);
        smr.end_op(&mut ctx);
        smr.flush(&mut ctx);
    }
    assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
}
