//! Failure injection: threads that die at the worst moments.
//!
//! Nikolaev & Ravindran's *transparency* (§2 related work) asks that
//! threads may come and go without compromising the scheme. We inject
//! the nastier version: a thread's context is dropped **mid-operation**
//! (the thread panicked or was torn down while pinned). The schemes
//! must (a) not free anything the departed thread could still have
//! referenced *before* the drop, (b) release the slot for reuse, and
//! (c) let reclamation resume afterwards — including adopting the
//! departed thread's orphaned garbage.

use era::ds::MichaelList;
use era::smr::common::Smr;
use era::smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, leak::Leak, nbr::Nbr, qsbr::Qsbr, vbr};

/// Begin an op, load through a protected slot, then drop the context
/// without ever calling `end_op` — the "thread died pinned" injection.
fn die_pinned<S: Smr>(smr: &S) {
    let mut ctx = smr.register().expect("slot");
    smr.begin_op(&mut ctx);
    let word = std::sync::atomic::AtomicUsize::new(0);
    let _ = smr.load(&mut ctx, 0, &word);
    drop(ctx); // no end_op
}

fn churn_and_drain<S: Smr>(smr: &S, rounds: i64) -> (u64, usize) {
    let list = MichaelList::new(smr);
    let mut ctx = smr.register().expect("slot");
    for k in 0..rounds {
        assert!(list.insert(&mut ctx, k % 97));
        assert!(list.delete(&mut ctx, k % 97));
    }
    for _ in 0..8 {
        smr.flush(&mut ctx);
    }
    let st = smr.stats();
    (st.total_retired, st.retired_now)
}

#[test]
fn ebr_recovers_after_a_thread_dies_pinned() {
    let smr = Ebr::with_threshold(4, 8);
    die_pinned(&smr);
    // The dead thread's announcement was cleared on drop: the epoch can
    // advance and reclamation proceeds as if it had never existed.
    let (retired, now) = churn_and_drain(&smr, 2_000);
    assert_eq!(retired, 2_000);
    assert_eq!(now, 0, "dead pinned thread must not block EBR forever");
}

#[test]
fn hp_recovers_after_a_thread_dies_pinned() {
    let smr = Hp::with_threshold(4, 3, 8);
    die_pinned(&smr);
    let (retired, now) = churn_and_drain(&smr, 2_000);
    assert_eq!(retired, 2_000);
    assert_eq!(now, 0, "dead thread's hazards must be cleared on drop");
}

#[test]
fn he_and_ibr_recover_after_a_thread_dies_pinned() {
    let he = He::with_params(4, 3, 8, 4);
    die_pinned(&he);
    let (_, now) = churn_and_drain(&he, 2_000);
    assert_eq!(now, 0);

    let ibr = Ibr::with_params(4, 8, 4);
    die_pinned(&ibr);
    let (_, now) = churn_and_drain(&ibr, 2_000);
    assert_eq!(now, 0);
}

#[test]
fn nbr_recovers_after_a_thread_dies_pinned() {
    let smr = Nbr::with_threshold(4, 2, 8);
    die_pinned(&smr);
    let (_, now) = churn_and_drain(&smr, 2_000);
    assert_eq!(now, 0, "dead thread counts as quiescent for neutralization");
}

#[test]
fn qsbr_recovers_after_a_thread_dies_pinned() {
    let smr = Qsbr::with_threshold(4, 8);
    die_pinned(&smr);
    // QSBR still needs the LIVE thread to announce quiescence.
    let list = MichaelList::new(&smr);
    let mut ctx = smr.register().expect("slot");
    for k in 0..500i64 {
        assert!(list.insert(&mut ctx, k % 31));
        assert!(list.delete(&mut ctx, k % 31));
        if k % 16 == 0 {
            smr.quiescent(&mut ctx);
        }
    }
    for _ in 0..4 {
        smr.quiescent(&mut ctx);
        smr.flush(&mut ctx);
    }
    assert_eq!(
        smr.stats().retired_now,
        0,
        "a departed thread is permanently quiescent"
    );
}

#[test]
fn slots_are_reusable_after_many_deaths() {
    // Capacity 2: if dead threads leaked their slots, the 17th
    // registration would fail.
    let smr = Ebr::new(2);
    for _ in 0..16 {
        die_pinned(&smr);
    }
    let mut ctx = smr.register().expect("slots recycled after deaths");
    smr.begin_op(&mut ctx);
    smr.end_op(&mut ctx);
}

#[test]
fn orphaned_garbage_is_adopted_not_leaked() {
    let smr = Ebr::with_threshold(4, 1_000_000); // never self-collects
    {
        // A worker retires a pile and dies without flushing.
        let list = MichaelList::new(&smr);
        let mut ctx = smr.register().unwrap();
        for k in 0..500i64 {
            assert!(list.insert(&mut ctx, k));
            assert!(list.delete(&mut ctx, k));
        }
        drop(ctx); // garbage goes to the orphan pool
        assert_eq!(smr.stats().retired_now, 500);
        // A survivor adopts and frees it.
        let mut survivor = smr.register().unwrap();
        for _ in 0..6 {
            smr.begin_op(&mut survivor);
            smr.end_op(&mut survivor);
            smr.flush(&mut survivor);
        }
        assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
    }
}

/// A thread panics while pinned; the context is dropped during stack
/// unwinding. The Drop path must release the registry slot exactly
/// once — no leak (the slot stays claimed forever) and no double
/// release (two later registrations sharing one slot).
fn die_by_panic<S: Smr>(smr: &S) {
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut ctx = smr.register().expect("slot");
        smr.begin_op(&mut ctx);
        panic!("injected panic while pinned");
    }));
    assert!(unwound.is_err(), "the injected panic must propagate");
}

#[test]
fn panicking_thread_releases_its_slot_exactly_once() {
    // Capacity 2 exposes both failure modes: a leaked slot makes the
    // second post-panic registration fail; a double-released slot
    // would let a third one succeed.
    let smr = Ebr::new(2);
    for _ in 0..4 {
        die_by_panic(&smr);
    }
    let a = smr.register().expect("slot released by unwinding drop");
    let b = smr.register().expect("second slot untouched by panics");
    assert!(
        smr.register().is_err(),
        "exactly-once release: capacity must not grow past 2"
    );
    drop((a, b));
}

/// Satellite: K = 16 *sequential* deaths on a capacity-2 scheme. Each
/// death must fully return its slot before the next, and the orphaned
/// garbage of all sixteen must drain once a live thread churns.
fn sixteen_sequential_deaths<S: Smr>(smr: &S, expect_drain: bool) {
    for _ in 0..16 {
        die_pinned(smr);
    }
    // Slot count must not erode: both slots claimable, a third is not.
    let a = smr.register().expect("slot after 16 deaths");
    let b = smr.register().expect("second slot after 16 deaths");
    assert!(smr.register().is_err(), "capacity grew past 2");
    drop((a, b));
    let (retired, now) = churn_and_drain(smr, 1_000);
    assert!(retired >= 1_000);
    if expect_drain {
        assert_eq!(now, 0, "orphans of 16 deaths failed to drain: {now}");
    }
}

#[test]
fn repeated_deaths_do_not_erode_capacity() {
    sixteen_sequential_deaths(&Ebr::with_threshold(2, 8), true);
    sixteen_sequential_deaths(&Hp::with_threshold(2, 3, 8), true);
    sixteen_sequential_deaths(&He::with_params(2, 3, 8, 4), true);
    sixteen_sequential_deaths(&Ibr::with_params(2, 8, 4), true);
    sixteen_sequential_deaths(&Nbr::with_threshold(2, 2, 8), true);
}

#[test]
fn qsbr_repeated_deaths_do_not_erode_capacity() {
    // QSBR's drain needs explicit quiescence announcements from the
    // survivor, so it gets its own churn loop.
    let smr = Qsbr::with_threshold(2, 8);
    for _ in 0..16 {
        die_pinned(&smr);
    }
    let a = smr.register().expect("slot after 16 deaths");
    let b = smr.register().expect("second slot after 16 deaths");
    assert!(smr.register().is_err(), "capacity grew past 2");
    drop((a, b));
    let list = MichaelList::new(&smr);
    let mut ctx = smr.register().unwrap();
    for k in 0..500i64 {
        assert!(list.insert(&mut ctx, k % 31));
        assert!(list.delete(&mut ctx, k % 31));
        smr.quiescent(&mut ctx);
    }
    for _ in 0..4 {
        smr.quiescent(&mut ctx);
        smr.flush(&mut ctx);
    }
    assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
}

#[test]
fn leak_repeated_deaths_do_not_erode_capacity() {
    // The leaking baseline never drains, but deaths must still recycle
    // slots and never wedge the workload.
    let smr = Leak::new(2);
    sixteen_sequential_deaths(&smr, false);
    assert_eq!(smr.stats().total_reclaimed, 0);
    assert!(smr.stats().retired_now >= 1_000);
}

#[test]
fn vbr_departed_readers_cannot_wedge_the_arena() {
    // VBR has no per-thread contexts: a departed reader leaves only
    // stale (handle, version) pairs behind. The arena must keep
    // recycling through them, and the versions must keep the stale
    // handles detectably dead.
    let arena: vbr::Arena<2> = vbr::Arena::new(8);
    let mut abandoned = Vec::new();
    for round in 0..16u64 {
        // A "reader" grabs handles mid-operation and disappears.
        let h = arena.alloc().expect("capacity cycles");
        arena.write(h, 0, round).unwrap();
        abandoned.push(h);
        arena.retire(h).unwrap(); // unlinked after the reader vanished
    }
    // Slots recycled: the arena can still fill to capacity...
    let live: Vec<_> = (0..arena.capacity() - arena.live())
        .map(|_| arena.alloc().expect("slot recycled"))
        .collect();
    // ...and every abandoned handle is detectably stale, not readable.
    let stale = abandoned
        .iter()
        .filter(|&&h| arena.validate(h).is_err())
        .count();
    assert!(
        stale >= abandoned.len() - arena.capacity(),
        "recycled slots must bump versions: only {stale} stale"
    );
    for h in live {
        arena.retire(h).unwrap();
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn death_during_concurrent_churn() {
    // Threads keep dying pinned while others churn: the system must
    // neither crash nor wedge, and must drain at the end.
    let smr = Ebr::with_threshold(8, 16);
    let list = MichaelList::new(&smr);
    std::thread::scope(|s| {
        for t in 0..2i64 {
            let (list, smr) = (&list, &smr);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for k in 0..2_000i64 {
                    let key = t * 10_000 + k % 101;
                    let _ = list.insert(&mut ctx, key);
                    let _ = list.delete(&mut ctx, key);
                }
                for _ in 0..4 {
                    smr.flush(&mut ctx);
                }
            });
        }
        s.spawn(|| {
            for _ in 0..50 {
                die_pinned(&smr);
            }
        });
    });
    let mut ctx = smr.register().unwrap();
    for _ in 0..8 {
        smr.begin_op(&mut ctx);
        smr.end_op(&mut ctx);
        smr.flush(&mut ctx);
    }
    assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
}

/// The same injections with every scheme wrapped in
/// [`era::chaos::ChaosSmr`]: a transparent wrapper must change nothing,
/// and an armed wrapper must stack *its* deaths on top of the manual
/// ones without the recovery story regressing. (`--features chaos`.)
#[cfg(feature = "chaos")]
mod chaos_wrapped {
    use super::*;
    use era::chaos::{ChaosSmr, FaultAction, FaultPlan};

    #[test]
    fn transparent_wrapper_changes_nothing() {
        let smr = ChaosSmr::transparent(Ebr::with_threshold(4, 8));
        die_pinned(&smr);
        let (retired, now) = churn_and_drain(&smr, 2_000);
        assert_eq!(retired, 2_000);
        assert_eq!(now, 0);
        assert_eq!(smr.faults_injected(), 0);

        let smr = ChaosSmr::transparent(Hp::with_threshold(4, 3, 8));
        die_pinned(&smr);
        let (_, now) = churn_and_drain(&smr, 2_000);
        assert_eq!(now, 0);

        let smr = ChaosSmr::transparent(Nbr::with_threshold(4, 2, 8));
        die_pinned(&smr);
        let (_, now) = churn_and_drain(&smr, 2_000);
        assert_eq!(now, 0);
    }

    #[test]
    fn injected_deaths_stack_on_manual_ones() {
        let plan = FaultPlan::new(
            7,
            (1..=8u64)
                .map(|i| FaultAction::DiePinned { at_op: i * 64 })
                .collect(),
        );
        let smr = ChaosSmr::new(Ebr::with_threshold(8, 8), plan);
        die_pinned(&smr); // manual death before the plan starts firing
        let list = MichaelList::new(&smr);
        let mut ctx = smr.register().unwrap();
        for k in 0..2_000i64 {
            assert!(list.insert(&mut ctx, k % 97));
            assert!(list.delete(&mut ctx, k % 97));
        }
        assert_eq!(smr.faults_injected(), 8, "all planned deaths fired");
        smr.quiesce(&mut ctx);
        for _ in 0..8 {
            smr.begin_op(&mut ctx);
            smr.end_op(&mut ctx);
            smr.flush(&mut ctx);
        }
        assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
    }
}
