//! Chaos stress: the ordering-stress hammer re-run under an armed
//! [`ChaosSmr`] — at least eight die-pinned context drops per scheme,
//! plus frozen announcements, a delayed flush, and a spurious-restart
//! storm, all firing while writers retire and readers hold protected
//! loads.
//!
//! Safety is checked the same way as `ordering_stress.rs`: reclaimed
//! canary nodes are **poisoned, not freed**, so a use-after-free
//! (garbage adopted and reclaimed while a survivor still held it
//! protected) trips a deterministic assertion instead of a segfault.
//! Robustness is checked on the schemes the paper classes as robust
//! under live threads (EBR/QSBR/IBR with everyone advancing, NBR via
//! its restart protocol): `retired_peak` must stay inside a
//! navigator-style hard budget even with dead contexts orphaning
//! garbage mid-run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use era::chaos::{ChaosSmr, FaultAction, FaultPlan};
use era::obs::{FlightDump, FlightRecorder, Hook, Recorder};
use era::smr::common::{Smr, SmrHeader};
use era::smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, leak::Leak, nbr::Nbr, qsbr::Qsbr};

const CANARY: u64 = 0xA11A_C0DE_CAFE_F00D;
const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

const SLOTS: usize = 4;
const WRITERS: usize = 2;
const READERS: usize = 2;
const ITERS: usize = 2_000;
const THRESHOLD: usize = 64;
const DEATHS: u64 = 8;
const STALL_WINDOW: u64 = 400;

/// Scheme capacity: the four workers, the draining main context, two
/// concurrently-stalled victims, and headroom for a die-pinned victim
/// registered while both stalls are live.
const CAPACITY: usize = WRITERS + READERS + 5;

/// The navigator-style hard budget (cf. `KvConfig::retired_hard`): the
/// live-thread bound of `ordering_stress.rs` widened by what the plan
/// legitimately pins — each stall window holds up to its length in
/// retires, and each death orphans a fixed clutch of canaries.
const HARD_BUDGET: usize = (CAPACITY + 1) * (CAPACITY + 1) * THRESHOLD * 2
    + 2 * STALL_WINDOW as usize
    + 8 * DEATHS as usize;

#[repr(C)]
struct Node {
    header: SmrHeader,
    canary: AtomicU64,
}

fn alloc_node() -> *mut Node {
    Box::into_raw(Box::new(Node {
        header: SmrHeader::new(),
        canary: AtomicU64::new(CANARY),
    }))
}

/// # Safety
///
/// `p` must point at a live `Node` from `alloc_node`. The allocation is
/// never unmapped (leaked by design), so the canary store is always to
/// mapped memory — "reclamation" here is the poison mark itself.
unsafe fn poison_node(p: *mut u8) {
    let node = p as *const Node;
    unsafe { (*node).canary.store(POISON, Ordering::SeqCst) };
}

/// Eight deaths spread across the run, two long stalls, one delayed
/// flush, one spurious-restart storm. No injected registration faults:
/// worker threads must be able to register, so those families are
/// covered by `failure_injection.rs` and the era-chaos unit tests.
fn armed_plan() -> FaultPlan {
    let horizon = ((WRITERS + READERS) * ITERS) as u64;
    let step = horizon / (DEATHS + 1);
    let mut ops: Vec<FaultAction> = (1..=DEATHS)
        .map(|i| FaultAction::DiePinned { at_op: i * step })
        .collect();
    ops.push(FaultAction::StallThread {
        at_op: step / 2,
        for_ops: STALL_WINDOW,
    });
    ops.push(FaultAction::StallThread {
        at_op: 5 * step + step / 2,
        for_ops: STALL_WINDOW,
    });
    ops.push(FaultAction::DelayFlush {
        at_op: 3 * step + step / 2,
        for_ops: STALL_WINDOW / 2,
    });
    ops.push(FaultAction::RestartStorm {
        at_op: 6 * step + step / 2,
        count: 50,
    });
    FaultPlan::new(0xC4A05, ops)
}

fn hammer<S>(label: &str, inner: S) -> era::smr::SmrStats
where
    S: Smr + Sync,
    S::ThreadCtx: Send,
{
    // SAFETY (fn-level, covers every unsafe below): nodes come from
    // alloc_node and are leaked, never unmapped, so every raw deref hits
    // mapped memory; a node is retired exactly once, right after the
    // SeqCst swap unlinks it; header references point into the node
    // itself. The canary assertions check the SMR protocol, not memory
    // validity.
    let smr = ChaosSmr::new(inner, armed_plan());
    // Flight recorder armed by default: a failing canary assertion
    // (a panic) leaves a replayable `.eraflt` post-mortem in the temp
    // dir, and a clean run verifies the dump end to end below.
    let recorder = Recorder::new(CAPACITY + 4);
    smr.attach_recorder(&recorder);
    let flight = Arc::new(FlightRecorder::single(label, &recorder));
    let dump_path = std::env::temp_dir().join(format!("era_chaos_stress_{label}.eraflt"));
    flight.install_panic_hook(dump_path.clone());
    let shared: Vec<AtomicUsize> = (0..SLOTS).map(|_| AtomicUsize::new(0)).collect();
    let mut main_ctx = smr.register().unwrap();
    for s in &shared {
        let node = alloc_node();
        smr.init_header(&mut main_ctx, unsafe { &(*node).header });
        s.store(node as usize, Ordering::SeqCst);
    }
    std::thread::scope(|sc| {
        let smr = &smr;
        for w in 0..WRITERS {
            let shared = &shared;
            sc.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for i in 0..ITERS {
                    smr.begin_op(&mut ctx);
                    let fresh = alloc_node();
                    smr.init_header(&mut ctx, unsafe { &(*fresh).header });
                    let old = shared[(w + i) % SLOTS].swap(fresh as usize, Ordering::SeqCst);
                    let old_node = old as *const Node;
                    assert_ne!(
                        unsafe { (*old_node).canary.load(Ordering::SeqCst) },
                        POISON,
                        "double reclamation: unlinked a node already poisoned"
                    );
                    unsafe {
                        smr.retire(&mut ctx, old as *mut u8, &(*old_node).header, poison_node);
                    }
                    smr.end_op(&mut ctx);
                    smr.quiescent_point(&mut ctx);
                }
                for _ in 0..4 {
                    smr.flush(&mut ctx);
                }
            });
        }
        for r in 0..READERS {
            let shared = &shared;
            sc.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for i in 0..ITERS {
                    smr.begin_op(&mut ctx);
                    smr.enter_read_phase(&mut ctx);
                    let word = smr.load(&mut ctx, 0, &shared[(r + i) % SLOTS]);
                    let node = word as *const Node;
                    // A pending (possibly chaos-injected, spurious)
                    // restart means the protected region must not be
                    // trusted — exactly the NBR contract. Otherwise the
                    // canary must still be live.
                    if !smr.needs_restart(&mut ctx) {
                        let seen = unsafe { (*node).canary.load(Ordering::SeqCst) };
                        assert_eq!(
                            seen, CANARY,
                            "use-after-free: protected node reclaimed under a reader"
                        );
                    }
                    smr.end_op(&mut ctx);
                    smr.quiescent_point(&mut ctx);
                }
            });
        }
    });
    // Every planned fault fired, eight of them deaths.
    let deaths = smr.fault_log().iter().filter(|f| f.kind == 0).count() as u64;
    assert_eq!(deaths, DEATHS, "all die-pinned injections must fire");
    assert!(smr.faults_injected() >= DEATHS + 2);
    // Release surviving chaos pins, then drain with the main context.
    smr.quiesce(&mut main_ctx);
    for _ in 0..64 {
        smr.begin_op(&mut main_ctx);
        smr.end_op(&mut main_ctx);
        smr.quiescent_point(&mut main_ctx);
        smr.flush(&mut main_ctx);
    }
    // The clean-exit dump must replay: every injected death shows up
    // as a Fault event, and the dump survives its own byte roundtrip.
    flight
        .snapshot_to_file(&dump_path)
        .expect("flight dump must be writable");
    let dump = FlightDump::decode(&std::fs::read(&dump_path).expect("dump file readable"))
        .expect("flight dump must decode");
    let src = &dump.sources[0];
    assert_eq!(src.label, label);
    let recorded_deaths = src
        .events
        .iter()
        .filter(|e| Hook::from_u8(e.hook) == Some(Hook::Fault) && e.a == 0)
        .count() as u64;
    if src.dropped == 0 {
        assert_eq!(
            recorded_deaths, DEATHS,
            "{label}: every die-pinned fault must be in a lossless dump"
        );
    } else {
        assert!(
            recorded_deaths <= DEATHS,
            "{label}: dump cannot contain more deaths than were injected"
        );
    }
    let _ = std::fs::remove_file(&dump_path);
    smr.stats()
}

fn assert_recovered(st: &era::smr::SmrStats, scheme: &str) {
    assert!(
        st.retired_peak <= HARD_BUDGET,
        "{scheme}: retired_peak {} exceeds hard budget {HARD_BUDGET}",
        st.retired_peak
    );
    assert_eq!(
        st.retired_now, 0,
        "{scheme}: orphaned garbage failed to drain: {st}"
    );
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn ebr_survives_chaos_with_bounded_footprint() {
    let st = hammer("ebr", Ebr::with_threshold(CAPACITY, THRESHOLD));
    assert_recovered(&st, "EBR");
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn qsbr_survives_chaos_with_bounded_footprint() {
    let st = hammer("qsbr", Qsbr::with_threshold(CAPACITY, THRESHOLD));
    assert_recovered(&st, "QSBR");
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn ibr_survives_chaos_with_bounded_footprint() {
    let st = hammer("ibr", Ibr::with_params(CAPACITY, THRESHOLD, 4));
    assert_recovered(&st, "IBR");
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn nbr_survives_chaos_with_bounded_footprint() {
    let st = hammer("nbr", Nbr::with_threshold(CAPACITY, 2, THRESHOLD));
    assert_recovered(&st, "NBR");
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn hp_survives_chaos() {
    // HP's per-pointer protection bounds the peak tighter than the
    // navigator budget; the chaos question is purely safety + drain.
    let st = hammer("hp", Hp::with_threshold(CAPACITY, 1, THRESHOLD));
    assert_eq!(st.retired_now, 0, "HP: orphans failed to drain: {st}");
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn he_survives_chaos() {
    let st = hammer("he", He::with_params(CAPACITY, 1, THRESHOLD, 4));
    assert_eq!(st.retired_now, 0, "HE: orphans failed to drain: {st}");
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn leak_survives_chaos() {
    // The leaking baseline reclaims nothing, so the only chaos claims
    // are safety (canaries, asserted inline) and that every injection
    // fired without wedging the workload.
    let st = hammer("leak", Leak::new(CAPACITY));
    assert_eq!(st.total_reclaimed, 0);
    assert!(st.total_retired > 0);
}
