//! Randomized-schedule integration test for Michael's list in the
//! simulator: the protect-based schemes (HP/HE/IBR) — unsafe on
//! Harris's list — are safe and linearizable here, across random
//! interleavings. This is §4.3's positive claim at scale, and evidence
//! the Definition 4.2 oracle has no false positives on the discipline
//! these schemes were designed for.

use era::core::ids::ThreadId;
use era::core::linearizability::Checker;
use era::core::spec::SetSpec;
use era::sim::michael::{MichaelOp, MichaelSim};
use era::sim::schemes::{SimEbr, SimHe, SimHp, SimIbr, SimScheme};
use era::sim::OpKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_run(
    scheme: Box<dyn SimScheme>,
    threads: usize,
    total_ops: usize,
    key_range: i64,
    seed: u64,
) -> MichaelSim {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = MichaelSim::new(scheme);
    let mut pending: Vec<Option<MichaelOp>> = (0..threads).map(|_| None).collect();
    let mut started = 0usize;
    let mut finished = 0usize;
    let mut guard = 0usize;
    while finished < total_ops {
        guard += 1;
        assert!(guard < 20_000_000, "random schedule did not terminate");
        let t = rng.random_range(0..threads);
        if pending[t].is_none() {
            if started < total_ops {
                let key = rng.random_range(0..key_range);
                let kind = match rng.random_range(0..3u32) {
                    0 => OpKind::Insert(key),
                    1 => OpKind::Delete(key),
                    _ => OpKind::Contains(key),
                };
                pending[t] = Some(sim.start_op(ThreadId(t), kind));
                started += 1;
            } else {
                continue;
            }
        }
        if let Some(op) = &mut pending[t] {
            if sim.step(op) {
                pending[t] = None;
                finished += 1;
            }
        }
    }
    sim
}

fn check(name: &str, make: impl Fn() -> Box<dyn SimScheme>) {
    for seed in 0..8u64 {
        let sim = random_run(make(), 3, 30, 5, 0xBEEF + seed);
        let verdict = sim.sim.heap.verdict();
        assert!(
            verdict.is_smr(),
            "{name} seed {seed}: violations {:?}",
            verdict.violations
        );
        assert!(
            Checker::new(&SetSpec).is_linearizable(&sim.sim.history),
            "{name} seed {seed}: non-linearizable history:\n{}",
            sim.sim.history
        );
    }
}

#[test]
fn hp_random_schedules_on_michael_are_safe_and_linearizable() {
    check("HP", || Box::new(SimHp::new(3, 3)));
}

#[test]
fn he_random_schedules_on_michael_are_safe_and_linearizable() {
    check("HE", || Box::new(SimHe::new(3, 3)));
}

#[test]
fn ibr_random_schedules_on_michael_are_safe_and_linearizable() {
    check("IBR", || Box::new(SimIbr::new(3)));
}

#[test]
fn ebr_random_schedules_on_michael_are_safe_and_linearizable() {
    check("EBR", || Box::new(SimEbr::new(3)));
}

#[test]
fn hp_footprint_stays_bounded_on_large_random_runs() {
    let sim = random_run(Box::new(SimHp::new(4, 3)), 4, 500, 12, 7);
    assert!(sim.sim.heap.verdict().is_smr());
    assert!(
        sim.sim.heap.sample().retired <= 4 * 3 + 4,
        "HP's bound: hazards + in-flight"
    );
}

#[test]
fn the_oracle_distinguishes_the_two_lists() {
    // Same scheme, same kind of adversarial run: Figure-1 style stall.
    // On Michael's list: silent. (The Harris-side violation is already
    // asserted by tests/theorem.rs.)
    let mut sim = MichaelSim::new(Box::new(SimHp::new(2, 3)) as Box<dyn SimScheme>);
    let (t1, t2) = (ThreadId(0), ThreadId(1));
    assert!(sim.run_op(t2, OpKind::Insert(1)));
    assert!(sim.run_op(t2, OpKind::Insert(2)));
    let mut stalled = sim.start_op(t1, OpKind::Delete(3));
    for _ in 0..3 {
        sim.step(&mut stalled);
    }
    assert!(sim.run_op(t2, OpKind::Delete(1)));
    for n in 2..202i64 {
        assert!(sim.run_op(t2, OpKind::Insert(n + 1)));
        assert!(sim.run_op(t2, OpKind::Delete(n)));
    }
    let done = sim.run_to_completion(&mut stalled, 1_000_000);
    assert_eq!(done, Some(false));
    assert!(sim.sim.heap.verdict().is_smr(), "HP on Michael: safe");
}
