//! Exhaustive schedule enumeration — a miniature model checker.
//!
//! For pairs of operations on a small list, enumerate **every**
//! two-thread interleaving (each schedule is a binary string deciding
//! which thread steps next) and check, for each complete execution:
//!
//! * the history is linearizable against the set specification;
//! * the Definition 4.2 oracle stayed silent (for the schemes that are
//!   applicable to the structure);
//! * the footprint invariants hold (VBR's retired population is zero).
//!
//! This covers *all* races between two operations up to the step bound,
//! not a random sample.

use era::core::ids::ThreadId;
use era::core::linearizability::Checker;
use era::core::spec::SetSpec;
use era::sim::michael::MichaelSim;
use era::sim::schemes::{SimEbr, SimHp, SimLeak, SimNbr, SimScheme, SimVbr};
use era::sim::{HarrisSim, OpKind};

const T0: ThreadId = ThreadId(0);
const T1: ThreadId = ThreadId(1);

/// Enumerate every interleaving of two ops on a Harris list prefilled
/// with {1, 2}; returns the number of distinct complete executions.
fn enumerate_harris(
    make: impl Fn() -> Box<dyn SimScheme>,
    op0: OpKind,
    op1: OpKind,
    max_len: usize,
) -> usize {
    let mut executions = 0usize;
    // Schedules as bit strings: bit i = which thread takes step i. A
    // schedule is complete when both ops are done; incomplete schedules
    // at max_len are extended by running both to completion (tail
    // determinism makes longer prefixes redundant).
    for bits in 0u64..(1 << max_len) {
        let mut sim = HarrisSim::new(make());
        assert!(sim.run_op(T1, OpKind::Insert(1)));
        assert!(sim.run_op(T1, OpKind::Insert(2)));
        let mut a = sim.start_op(T0, op0);
        let mut b = sim.start_op(T1, op1);
        let (mut da, mut db) = (false, false);
        for i in 0..max_len {
            if bits & (1 << i) == 0 {
                if !da {
                    da = sim.step(&mut a);
                }
            } else if !db {
                db = sim.step(&mut b);
            }
            if da && db {
                break;
            }
        }
        // Finish deterministically.
        let mut guard = 0;
        while !da || !db {
            guard += 1;
            assert!(guard < 100_000, "ops must terminate");
            if !da {
                da = sim.step(&mut a);
            }
            if !db {
                db = sim.step(&mut b);
            }
        }
        executions += 1;
        let verdict = sim.sim.heap.verdict();
        assert!(
            verdict.is_smr(),
            "{:?} vs {:?}, bits {bits:b}: {:?}",
            op0,
            op1,
            verdict.violations
        );
        assert!(
            Checker::new(&SetSpec).is_linearizable(&sim.sim.history),
            "{:?} vs {:?}, bits {bits:b}: non-linearizable:\n{}",
            op0,
            op1,
            sim.sim.history
        );
    }
    executions
}

/// Same, for Michael's list (the HP-compatible structure).
fn enumerate_michael(
    make: impl Fn() -> Box<dyn SimScheme>,
    op0: OpKind,
    op1: OpKind,
    max_len: usize,
) {
    for bits in 0u64..(1 << max_len) {
        let mut sim = MichaelSim::new(make());
        assert!(sim.run_op(T1, OpKind::Insert(1)));
        assert!(sim.run_op(T1, OpKind::Insert(2)));
        let mut a = sim.start_op(T0, op0);
        let mut b = sim.start_op(T1, op1);
        let (mut da, mut db) = (false, false);
        for i in 0..max_len {
            if bits & (1 << i) == 0 {
                if !da {
                    da = sim.step(&mut a);
                }
            } else if !db {
                db = sim.step(&mut b);
            }
            if da && db {
                break;
            }
        }
        let mut guard = 0;
        while !da || !db {
            guard += 1;
            assert!(guard < 100_000, "ops must terminate");
            if !da {
                da = sim.step(&mut a);
            }
            if !db {
                db = sim.step(&mut b);
            }
        }
        let verdict = sim.sim.heap.verdict();
        assert!(
            verdict.is_smr(),
            "{op0:?} vs {op1:?}, bits {bits:b}: {:?}",
            verdict.violations
        );
        assert!(
            Checker::new(&SetSpec).is_linearizable(&sim.sim.history),
            "{op0:?} vs {op1:?}, bits {bits:b}: non-linearizable:\n{}",
            sim.sim.history
        );
    }
}

/// The contended op pairs worth enumerating: same-key races of every
/// flavour plus the delete/delete and insert/insert symmetric races.
fn contended_pairs() -> Vec<(OpKind, OpKind)> {
    vec![
        (OpKind::Insert(1), OpKind::Delete(1)),
        (OpKind::Delete(1), OpKind::Delete(1)),
        (OpKind::Insert(3), OpKind::Insert(3)),
        (OpKind::Delete(1), OpKind::Contains(1)),
        (OpKind::Insert(3), OpKind::Contains(3)),
        (OpKind::Delete(1), OpKind::Insert(3)),
        (OpKind::Delete(2), OpKind::Delete(1)),
    ]
}

// 2^BITS schedules per pair per scheme: keep BITS moderate.
const BITS: usize = 12;

#[test]
#[ignore = "exhaustive DFS over 2^12 schedules, ~5-8s in debug; CI runs these in release via `cargo test --release -- --ignored`"]
fn harris_with_ebr_all_interleavings() {
    for (a, b) in contended_pairs() {
        let n = enumerate_harris(|| Box::new(SimEbr::new(2)), a, b, BITS);
        assert_eq!(n, 1 << BITS);
    }
}

#[test]
#[ignore = "exhaustive DFS over 2^12 schedules, ~5-8s in debug; CI runs these in release via `cargo test --release -- --ignored`"]
fn harris_with_leak_all_interleavings() {
    for (a, b) in contended_pairs() {
        enumerate_harris(|| Box::new(SimLeak), a, b, BITS);
    }
}

#[test]
#[ignore = "exhaustive DFS over 2^12 schedules, ~5-8s in debug; CI runs these in release via `cargo test --release -- --ignored`"]
fn harris_with_vbr_all_interleavings() {
    for (a, b) in contended_pairs() {
        enumerate_harris(|| Box::new(SimVbr::new()), a, b, BITS);
    }
}

#[test]
// Promoted from the `#[ignore]` set: the fastest of the 2^12 sweeps
// (~6.5s debug, well under a second in release), so the default run
// keeps one full-width exhaustive case — and it is the NBR one, the
// scheme with the most delicate neutralization protocol.
fn harris_with_nbr_all_interleavings() {
    for (a, b) in contended_pairs() {
        enumerate_harris(|| Box::new(SimNbr::new(2, 1)), a, b, BITS);
    }
}

#[test]
#[ignore = "exhaustive DFS over 2^12 schedules, ~5-8s in debug; CI runs these in release via `cargo test --release -- --ignored`"]
fn michael_with_hp_all_interleavings() {
    // The §4.3 positive claim, exhaustively at this scale: HP is safe
    // with respect to Michael's list — across EVERY two-op race.
    for (a, b) in contended_pairs() {
        enumerate_michael(|| Box::new(SimHp::new(2, 3)), a, b, BITS);
    }
}

// Reduced always-on variant: the first 2^FAST_BITS schedules cover the
// short races outright (most op pairs finish in well under 8 steps of
// interleaving freedom), so every tier-1 run still exercises the §4.3
// safety claim; the 2^12 sweep above stays in the release-mode
// `--ignored` pass.
const FAST_BITS: usize = 8;

#[test]
fn michael_with_hp_fast_interleavings() {
    for (a, b) in contended_pairs() {
        enumerate_michael(|| Box::new(SimHp::new(2, 3)), a, b, FAST_BITS);
    }
}

#[test]
fn vbr_retired_population_is_zero_on_every_interleaving() {
    for bits in 0u64..(1 << BITS) {
        let mut sim = HarrisSim::new(Box::new(SimVbr::new()) as Box<dyn SimScheme>);
        assert!(sim.run_op(T1, OpKind::Insert(1)));
        let mut a = sim.start_op(T0, OpKind::Delete(1));
        let mut b = sim.start_op(T1, OpKind::Insert(2));
        let (mut da, mut db) = (false, false);
        for i in 0..BITS {
            if bits & (1 << i) == 0 {
                if !da {
                    da = sim.step(&mut a);
                }
            } else if !db {
                db = sim.step(&mut b);
            }
            assert_eq!(sim.sim.heap.sample().retired, 0, "retire is reclaim");
        }
        let _ = (da, db);
    }
}
