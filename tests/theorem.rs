//! End-to-end integration test: the ERA theorem pipeline.
//!
//! Replays the paper's two constructions (Figure 1 / Theorem 6.1 and
//! Figure 2 / Appendix E) across every simulated scheme and asserts the
//! complete classification the paper derives.

use era::core::era::reference_matrix;
use era::core::robustness::{classify, RobustnessVerdict};
use era::sim::figure2::run_figure2;
use era::sim::schemes::{
    all_schemes, SimEbr, SimHe, SimHp, SimIbr, SimLeak, SimNbr, SimScheme, SimVbr,
};
use era::sim::theorem::{figure1_observations, measured_matrix, run_figure1, Sacrificed};

#[test]
fn every_scheme_sacrifices_exactly_the_expected_property() {
    let expected: &[(&str, Sacrificed)] = &[
        ("EBR", Sacrificed::Robustness),
        ("HP", Sacrificed::Applicability),
        ("HE", Sacrificed::Applicability),
        ("IBR", Sacrificed::Applicability),
        ("VBR", Sacrificed::EasyIntegration),
        ("NBR", Sacrificed::EasyIntegration),
        ("Leak", Sacrificed::Robustness),
    ];
    for (scheme, want) in expected {
        let out = run_figure1(scheme_by_name(scheme), 150);
        assert_eq!(out.sacrificed, *want, "{scheme}: {out}");
        assert_eq!(
            out.peak_max_active, 4,
            "{scheme}: the paper's max_active is 4"
        );
    }
}

fn scheme_by_name(name: &str) -> Box<dyn SimScheme> {
    match name {
        "EBR" => Box::new(SimEbr::new(2)),
        "HP" => Box::new(SimHp::new(2, 3)),
        "HE" => Box::new(SimHe::new(2, 3)),
        "IBR" => Box::new(SimIbr::new(2)),
        "VBR" => Box::new(SimVbr::new()),
        "NBR" => Box::new(SimNbr::new(2, 1)),
        "Leak" => Box::new(SimLeak),
        other => panic!("unknown scheme {other}"),
    }
}

#[test]
fn figure1_retired_growth_is_linear_for_ebr_and_bounded_for_hp() {
    let small = run_figure1(Box::new(SimEbr::new(2)), 50);
    let large = run_figure1(Box::new(SimEbr::new(2)), 400);
    assert!(
        large.peak_retired >= 8 * small.peak_retired - 16,
        "EBR grows linearly: {} vs {}",
        small.peak_retired,
        large.peak_retired
    );

    let small = run_figure1(Box::new(SimHp::new(2, 3)), 50);
    let large = run_figure1(Box::new(SimHp::new(2, 3)), 400);
    assert!(
        large.peak_retired <= small.peak_retired + 4,
        "HP stays bounded: {} vs {}",
        small.peak_retired,
        large.peak_retired
    );
}

#[test]
fn robustness_classification_matches_the_paper() {
    let scales = &[64, 256, 1024];
    let cases: &[(&str, RobustnessVerdict)] = &[
        ("EBR", RobustnessVerdict::NotRobust),
        ("HP", RobustnessVerdict::Robust),
        ("VBR", RobustnessVerdict::Robust),
        ("NBR", RobustnessVerdict::Robust),
        ("Leak", RobustnessVerdict::NotRobust),
    ];
    for (name, want) in cases {
        let obs = figure1_observations(|| scheme_by_name(name), scales);
        let got = classify(&obs).verdict;
        assert_eq!(got, *want, "{name}");
    }
}

#[test]
fn figure2_separates_protect_based_from_the_rest() {
    for scheme in all_schemes(4) {
        let name = scheme.name();
        let out = run_figure2(scheme);
        match name {
            "HP" | "HE" | "IBR" => {
                assert!(!out.safe(), "{name} must violate on Figure 2: {out}");
                assert!(out.node43_reclaimed, "{name}");
            }
            "EBR" | "Leak" => {
                assert!(out.safe(), "{name}: {out}");
                assert_eq!(out.rollbacks, 0, "{name} needs no rollbacks");
                assert!(out.t1_completed, "{name}");
            }
            "VBR" | "NBR" => {
                assert!(out.safe(), "{name}: {out}");
                assert!(out.rollbacks > 0, "{name} survives via rollbacks");
                assert!(out.t1_completed, "{name}");
            }
            "QSBR" => {
                // No quiescent announcements in the schedule: nothing is
                // reclaimed, so nothing can go wrong — the footprint is
                // the casualty, not safety.
                assert!(out.safe(), "{name}: {out}");
                assert!(!out.node43_reclaimed, "{name}");
                assert!(out.t1_completed, "{name}");
            }
            other => panic!("unexpected scheme {other}"),
        }
    }
}

#[test]
fn measured_and_reference_matrices_respect_theorem_6_1() {
    reference_matrix().check_theorem().expect("reference");
    let measured = measured_matrix(200);
    measured.check_theorem().expect("measured");
    // Every measured row has at most two of the three properties, and
    // the schemes the paper calls out hit their expected corners.
    for row in measured.rows() {
        assert!(row.property_count() <= 2, "{}", row.scheme);
        match row.scheme.as_str() {
            "EBR" | "Leak" => {
                assert!(row.easy_integration);
                assert!(!row.robustness.is_weakly_robust());
                assert!(row.applicability.is_wide());
            }
            "HP" | "HE" | "IBR" => {
                assert!(row.easy_integration);
                assert!(row.robustness.is_weakly_robust());
                assert!(!row.applicability.is_wide());
            }
            "VBR" | "NBR" => {
                assert!(!row.easy_integration);
                assert!(row.robustness.is_weakly_robust());
                assert!(row.applicability.is_wide());
            }
            "QSBR" => {
                // Only ONE property: the theorem is an upper bound.
                assert!(
                    !row.easy_integration,
                    "quiescent points are arbitrary insertions"
                );
                assert!(!row.robustness.is_weakly_robust());
                assert!(row.applicability.is_wide());
                assert_eq!(row.property_count(), 1);
            }
            other => panic!("unexpected scheme {other}"),
        }
    }
}

#[test]
fn theorem_holds_across_scales() {
    for rounds in [32, 64, 128] {
        let m = measured_matrix(rounds);
        m.check_theorem()
            .unwrap_or_else(|v| panic!("rounds={rounds}: {v}"));
    }
}
