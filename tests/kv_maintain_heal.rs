//! Seeded interleaving stress for the store's maintenance surfaces:
//! `maintain` (idle-thread quiescent pass), `heal` (context
//! swap-and-adopt after a death or neutralization), and `drain`
//! (shutdown) all racing against live churn on one shard.
//!
//! The hazard under test is the swap window inside `heal`: a fresh
//! context is registered, the old one is flushed and dropped (its
//! garbage moves to the orphan pool), and the fresh context flushes to
//! adopt — while another thread's `maintain` pass races the adoption
//! and a writer keeps retiring. The invariants are scheme-independent:
//! no deadlock, no double reclaim (every retire is reclaimed at most
//! once), and a final drain leaves zero retired garbage with the
//! ledger balanced (`total_reclaimed == total_retired`).

use era::kv::{KvConfig, KvStore};
use era::smr::common::{Smr, SmrStats};
use era::smr::ebr::Ebr;
use era::smr::hp::Hp;
use era::smr::qsbr::Qsbr;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

/// Slots per thread for HP (get/put/remove traverse with ≤3 hands).
const SLOTS: usize = 3;

fn stress<S: Smr>(schemes: &[S], seed: u64) {
    let cfg = KvConfig {
        retired_soft: 64,
        retired_hard: 256,
        max_threads: 8,
        ..KvConfig::default()
    };
    let store = KvStore::new(schemes, cfg);
    let rounds = if cfg!(debug_assertions) { 400 } else { 2_000 };

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (store_ref, done_ref) = (&store, &done);

        // Writer: seeded churn — retires continuously so heal always
        // has garbage in flight to orphan and adopt.
        let writer = s.spawn(move || {
            let mut ctx = store_ref.register().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..rounds {
                let k = (rng.next_u64() % 128) as i64;
                if rng.next_u64() % 3 == 0 {
                    let _ = store_ref.remove(&mut ctx, k);
                } else {
                    let _ = store_ref.put(&mut ctx, k, k);
                }
            }
            store_ref.flush(&mut ctx);
        });

        // Maintainer: idle-pass loop racing the healer's adoption
        // window (quiescent point + flush on every shard).
        let maintainer = s.spawn(move || {
            let mut ctx = store_ref.register().unwrap();
            while !done_ref.load(Ordering::Acquire) {
                store_ref.maintain(&mut ctx);
                std::thread::yield_now();
            }
            store_ref.maintain(&mut ctx);
        });

        // Healer: repeatedly swaps its shard-0 context. `Err` (no
        // spare slot right now) is legal — the old context must then
        // be untouched, which the next iteration's ops exercise.
        let healer = s.spawn(move || {
            let mut ctx = store_ref.register().unwrap();
            let mut healed = 0usize;
            let mut iters = 0usize;
            // On one core the writer can finish before this loop gets
            // scheduled at all — a minimum iteration count keeps the
            // swap path exercised even when the race window is gone.
            while !done_ref.load(Ordering::Acquire) || iters < 64 {
                iters += 1;
                if store_ref.heal(&mut ctx, 0).is_ok() {
                    healed += 1;
                }
                // Drive an op through the (possibly fresh) context so
                // a broken swap would surface as a crash or a stuck
                // restart flag, not silence.
                let _ = store_ref.get(&mut ctx, 1);
                std::thread::yield_now();
            }
            healed
        });

        let writer_ok = writer.join().is_ok();
        // SAFETY(ordering): Release — publishes the writer's completed
        // churn to the maintainer/healer Acquire polls of `done`.
        done.store(true, Ordering::Release);
        let maintainer_ok = maintainer.join().is_ok();
        let healed = healer.join().expect("healer panicked");
        assert!(writer_ok, "writer panicked");
        assert!(maintainer_ok, "maintainer panicked");
        assert!(healed > 0, "heal never succeeded — the race never ran");
    });

    // Shutdown: drain must terminate (no garbage is pinned — every
    // context above is gone) and the ledger must balance.
    let mut ctx = store.register().unwrap();
    assert!(store.drain(&mut ctx, 512), "drain did not complete");
    let stats: SmrStats = store.stats();
    assert_eq!(stats.retired_now, 0, "{stats:?}");
    assert_eq!(
        stats.total_reclaimed, stats.total_retired,
        "reclamation ledger out of balance: {stats:?}"
    );
}

#[test]
fn maintain_heal_drain_race_ebr() {
    let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(8)).collect();
    stress(&schemes, 0xAB5E_0001);
}

#[test]
fn maintain_heal_drain_race_qsbr() {
    let schemes: Vec<Qsbr> = (0..2).map(|_| Qsbr::new(8)).collect();
    stress(&schemes, 0xAB5E_0002);
}

#[test]
fn maintain_heal_drain_race_hp() {
    let schemes: Vec<Hp> = (0..2).map(|_| Hp::new(8, SLOTS)).collect();
    stress(&schemes, 0xAB5E_0003);
}
