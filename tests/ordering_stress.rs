//! Ordering-downgrade regression net: multi-thread protect / retire /
//! reclaim hammering for every scheme whose memory orderings were
//! relaxed from blanket `SeqCst` to `Acquire`/`Release`/`Relaxed` +
//! explicit fences (EBR, QSBR, HP, HE, IBR).
//!
//! The harness publishes nodes through a small array of shared slots.
//! Writers swap fresh nodes in and retire the displaced ones; readers
//! take protected loads and check the node's canary word. A reclaimed
//! node is **poisoned, not freed**: its drop function overwrites the
//! canary and leaks the allocation, so a protection bug (a reader
//! holding a node whose reclamation the fences should have forbidden)
//! shows up as a deterministic canary assertion instead of an
//! undiagnosable segfault. The leak is bounded by the iteration count
//! and reclaimed at process exit.
//!
//! For the epoch/interval schemes the test also bounds `retired_peak`:
//! with every thread live and threshold T, garbage must keep draining,
//! so a peak anywhere near `total_retired` means a fence bug silently
//! stopped epoch/era advancement even though nothing crashed.
//!
//! NBR is exercised through `real_schemes.rs` (HarrisList + the
//! neutralization hooks); its orderings were not touched.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use era::obs::{FlightDump, FlightRecorder, Hook, Recorder};
use era::smr::common::{Smr, SmrHeader};
use era::smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, qsbr::Qsbr};

/// Value a live node's canary holds from allocation to reclamation.
const CANARY: u64 = 0xA11A_C0DE_CAFE_F00D;
/// Value the drop function writes over the canary.
const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

const SLOTS: usize = 4;
const WRITERS: usize = 2;
const READERS: usize = 2;
const ITERS: usize = 3_000;
const THRESHOLD: usize = 64;

#[repr(C)]
struct Node {
    header: SmrHeader,
    canary: AtomicU64,
}

fn alloc_node() -> *mut Node {
    Box::into_raw(Box::new(Node {
        header: SmrHeader::new(),
        canary: AtomicU64::new(CANARY),
    }))
}

/// "Reclaims" a node by poisoning its canary. The allocation is
/// deliberately leaked (see module docs): memory stays mapped so a
/// racing reader observes POISON instead of faulting.
/// # Safety
///
/// `p` must point at a live `Node` from `alloc_node`. The allocation is
/// never unmapped (leaked by design), so the canary store is always to
/// mapped memory — "reclamation" here is the poison mark itself.
unsafe fn poison_node(p: *mut u8) {
    let node = p as *const Node;
    unsafe { (*node).canary.store(POISON, Ordering::SeqCst) };
}

fn hammer<S: Smr + Sync>(label: &str, smr: &S) -> era::smr::SmrStats {
    // SAFETY (fn-level, covers every unsafe below): nodes come from
    // alloc_node and are leaked, never unmapped, so every raw deref hits
    // mapped memory; a node is retired exactly once, right after the
    // SeqCst swap unlinks it; header references point into the node
    // itself. The canary assertions check the SMR protocol, not memory
    // validity.
    //
    // Flight recorder armed by default (attached before any register,
    // per the Smr contract): a canary assertion leaves a replayable
    // `.eraflt` post-mortem in the temp dir; a clean run checks the
    // dump below and removes it.
    let recorder = Recorder::new(WRITERS + READERS + 4);
    smr.attach_recorder(&recorder);
    let flight = Arc::new(FlightRecorder::single(label, &recorder));
    let dump_path = std::env::temp_dir().join(format!("era_ordering_stress_{label}.eraflt"));
    flight.install_panic_hook(dump_path.clone());
    let shared: Vec<AtomicUsize> = (0..SLOTS).map(|_| AtomicUsize::new(0)).collect();
    {
        let mut ctx = smr.register().unwrap();
        for s in &shared {
            let node = alloc_node();
            smr.init_header(&mut ctx, unsafe { &(*node).header });
            s.store(node as usize, Ordering::SeqCst);
        }
    }
    std::thread::scope(|sc| {
        for w in 0..WRITERS {
            let shared = &shared;
            sc.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for i in 0..ITERS {
                    smr.begin_op(&mut ctx);
                    let fresh = alloc_node();
                    smr.init_header(&mut ctx, unsafe { &(*fresh).header });
                    // SC swap = the unlink step: after it, no reader can
                    // newly reach `old`, so retiring it is well-formed.
                    let old = shared[(w + i) % SLOTS].swap(fresh as usize, Ordering::SeqCst);
                    let old_node = old as *const Node;
                    assert_ne!(
                        unsafe { (*old_node).canary.load(Ordering::SeqCst) },
                        POISON,
                        "double reclamation: unlinked a node already poisoned"
                    );
                    unsafe {
                        smr.retire(&mut ctx, old as *mut u8, &(*old_node).header, poison_node);
                    }
                    smr.end_op(&mut ctx);
                    smr.quiescent_point(&mut ctx);
                }
                for _ in 0..4 {
                    smr.flush(&mut ctx);
                }
            });
        }
        for r in 0..READERS {
            let shared = &shared;
            sc.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for i in 0..ITERS {
                    smr.begin_op(&mut ctx);
                    let word = smr.load(&mut ctx, 0, &shared[(r + i) % SLOTS]);
                    let node = word as *const Node;
                    // The protected load must keep the node unreclaimed
                    // until end_op — a POISON canary here means the
                    // relaxed orderings let a scan miss the protection.
                    let seen = unsafe { (*node).canary.load(Ordering::SeqCst) };
                    assert_eq!(
                        seen, CANARY,
                        "use-after-free: protected node was reclaimed under a reader"
                    );
                    smr.end_op(&mut ctx);
                    smr.quiescent_point(&mut ctx);
                }
            });
        }
    });
    // Clean-exit dump: every retire the scheme counted must either be
    // in the trace or accounted as a ring drop — the flight layer
    // itself never loses events.
    flight
        .snapshot_to_file(&dump_path)
        .expect("flight dump must be writable");
    let dump = FlightDump::decode(&std::fs::read(&dump_path).expect("dump file readable"))
        .expect("flight dump must decode");
    let src = &dump.sources[0];
    assert_eq!(src.label, label);
    let traced_retires = src
        .events
        .iter()
        .filter(|e| Hook::from_u8(e.hook) == Some(Hook::Retire))
        .count() as u64;
    let st = smr.stats();
    assert!(
        traced_retires + src.dropped + src.trimmed >= st.total_retired,
        "{label}: {traced_retires} traced retires + {} dropped + {} trimmed \
         cannot cover {} retire calls",
        src.dropped,
        src.trimmed,
        st.total_retired
    );
    let _ = std::fs::remove_file(&dump_path);
    st
}

/// All threads stayed live, so reclamation must have kept up: the
/// retired population may burst past the threshold while a grace period
/// completes, but a peak anywhere near `total_retired` means nothing
/// was ever freed.
fn assert_bounded_peak(st: &era::smr::SmrStats, scheme: &str) {
    let total = WRITERS * ITERS;
    let bound = (WRITERS + READERS + 1) * (WRITERS + READERS + 1) * THRESHOLD * 2;
    assert!(
        st.retired_peak <= bound,
        "{scheme}: retired_peak {} exceeds live-thread bound {bound}",
        st.retired_peak
    );
    assert!(
        st.total_reclaimed >= (total as u64) / 2,
        "{scheme}: reclamation stalled: {st}"
    );
}

/// The peak bound for the non-robust epoch schemes is probabilistic,
/// not guaranteed: these are exactly the schemes where one reader
/// descheduled for the whole (sub-second) run pins the epoch and lets
/// the peak climb toward `total_retired` — the ERA trade-off they
/// declared, not a fence bug. One retry separates the two: a real
/// ordering regression stops advancement deterministically and fails
/// both runs; a scheduler burst (seen only under a fully parallel,
/// oversubscribed test suite) does not repeat.
fn assert_bounded_peak_with_retry(
    scheme: &str,
    run: impl Fn() -> era::smr::SmrStats,
) -> era::smr::SmrStats {
    let st = run();
    let bound = (WRITERS + READERS + 1) * (WRITERS + READERS + 1) * THRESHOLD * 2;
    if st.retired_peak > bound {
        eprintln!(
            "{scheme}: retired_peak {} exceeded bound {bound} once — \
             retrying to rule out a scheduler burst",
            st.retired_peak
        );
        let st = run();
        assert_bounded_peak(&st, scheme);
        return st;
    }
    assert_bounded_peak(&st, scheme);
    st
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn ebr_protect_retire_reclaim() {
    assert_bounded_peak_with_retry("EBR", || {
        hammer(
            "ebr",
            &Ebr::with_threshold(WRITERS + READERS + 1, THRESHOLD),
        )
    });
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn qsbr_protect_retire_reclaim() {
    assert_bounded_peak_with_retry("QSBR", || {
        hammer(
            "qsbr",
            &Qsbr::with_threshold(WRITERS + READERS + 1, THRESHOLD),
        )
    });
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn ibr_protect_retire_reclaim() {
    assert_bounded_peak_with_retry("IBR", || {
        hammer(
            "ibr",
            &Ibr::with_params(WRITERS + READERS + 1, THRESHOLD, 4),
        )
    });
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn hp_protect_retire_reclaim() {
    let smr = Hp::with_threshold(WRITERS + READERS + 1, 1, THRESHOLD);
    let st = hammer("hp", &smr);
    // HP is robust: the peak respects the scheme's own bound.
    assert!(
        st.retired_peak <= smr.robustness_bound(),
        "HP: retired_peak {} exceeds robustness bound {}",
        st.retired_peak,
        smr.robustness_bound()
    );
    assert!(st.total_reclaimed >= (WRITERS * ITERS) as u64 / 2, "{st}");
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn he_protect_retire_reclaim() {
    let smr = He::with_params(WRITERS + READERS + 1, 1, THRESHOLD, 4);
    let st = hammer("he", &smr);
    assert!(st.total_reclaimed >= (WRITERS * ITERS) as u64 / 2, "{st}");
}

/// The same hammer through a transparent (empty-plan)
/// [`era::chaos::ChaosSmr`]: the decorator must preserve the fence
/// discipline and the footprint bounds exactly — its fast path is a
/// single relaxed clock increment and one load. (`--features chaos`;
/// armed-plan multi-thread runs live in `chaos_stress.rs`.)
#[cfg(feature = "chaos")]
mod chaos_wrapped {
    use super::*;
    use era::chaos::ChaosSmr;

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn ebr_hammer_is_oblivious_to_a_transparent_wrapper() {
        assert_bounded_peak_with_retry("EBR/chaos", || {
            let smr = ChaosSmr::transparent(Ebr::with_threshold(WRITERS + READERS + 1, THRESHOLD));
            let st = hammer("ebr_chaos", &smr);
            // The transparency half is deterministic — no retry needed.
            assert_eq!(smr.faults_injected(), 0);
            assert_eq!(smr.op_clock(), ((WRITERS + READERS) * ITERS) as u64);
            st
        });
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn hp_hammer_is_oblivious_to_a_transparent_wrapper() {
        let smr = ChaosSmr::transparent(Hp::with_threshold(WRITERS + READERS + 1, 1, THRESHOLD));
        let st = hammer("hp_chaos", &smr);
        assert!(
            st.retired_peak <= smr.inner().robustness_bound(),
            "HP/chaos: retired_peak {} exceeds robustness bound {}",
            st.retired_peak,
            smr.inner().robustness_bound()
        );
    }
}
