//! Property test for the self-healing KV write path: against a store
//! with a stalled (pinned-and-degraded) shard and a quarantined shard,
//! `put_with_retry` must **always** terminate within its deadline
//! budget — every call returns either `Ok` or the typed
//! `KvError::DeadlineExceeded`, and never blocks unboundedly, no
//! matter which shard the key routes to.

use std::time::{Duration, Instant};

use era::kv::{KvConfig, KvError, KvStore, RetryPolicy};
use era::smr::common::Smr;
use era::smr::ebr::Ebr;
use proptest::prelude::*;

fn tight_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_backoff: Duration::from_micros(20),
        max_backoff: Duration::from_micros(200),
        deadline: Duration::from_millis(3),
        jitter: true,
    }
}

/// Generous wall-clock ceiling per call: the policy's worst case is
/// `max_attempts` flushes plus ~1ms of sleeps; 500ms of slack keeps the
/// assertion meaningful (a hang, not scheduling jitter) on any machine.
const NEVER_HANGS: Duration = Duration::from_millis(500);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn put_with_retry_terminates_on_stalled_and_quarantined_shards(
        keys in prop::collection::vec(-256i64..256, 1..48),
        quarantine_rest in prop::bool::weighted(0.5),
    ) {
        let schemes: Vec<Ebr> = (0..3).map(|_| Ebr::with_threshold(4, 1)).collect();
        let cfg = KvConfig {
            retired_soft: 4,
            retired_hard: 1 << 20, // stay out of neutralization
            admission_depth: 0,    // degraded shards shed every write
            ..KvConfig::default()
        };
        let store = KvStore::new(&schemes, cfg);
        let mut ctx = store.register().unwrap();

        // Stall shard 0: a pinned reader freezes its epoch while churn
        // piles up garbage, then a tick classifies it Degrading. The
        // pin is never released, so no amount of retry-flushing can
        // drain it — the worst case for the retry loop.
        let smr = store.scheme(0);
        let mut pin = smr.register().unwrap();
        smr.begin_op(&mut pin);
        let mut seeded = 0;
        for k in 0.. {
            if store.shard_of(k) == 0 {
                store.put(&mut ctx, k, k).unwrap();
                store.remove(&mut ctx, k).unwrap();
                seeded += 1;
                if seeded == 16 { break; }
            }
        }
        store.navigator_tick();
        prop_assert_eq!(store.health(0), era::kv::ShardHealth::Degrading);
        if quarantine_rest {
            for s in 1..store.shard_count() {
                store.quarantine(s);
            }
        }

        for k in keys {
            let t0 = Instant::now();
            let out = store.put_with_retry(&mut ctx, k, 1, tight_policy());
            let took = t0.elapsed();
            prop_assert!(took < NEVER_HANGS, "put({k}) took {took:?}");
            match out {
                Ok(_) => {
                    // Only an unimpaired shard may admit the write.
                    prop_assert!(!quarantine_rest, "all shards impaired: no write may land");
                    prop_assert_ne!(store.shard_of(k), 0, "shard 0 sheds everything");
                }
                Err(KvError::DeadlineExceeded { shard }) => {
                    prop_assert_eq!(shard, store.shard_of(k));
                }
                Err(other) => prop_assert!(false, "untyped failure: {other}"),
            }
        }
        smr.end_op(&mut pin);
    }
}

#[test]
fn put_with_retry_is_plain_put_on_a_healthy_store() {
    let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(2)).collect();
    let store = KvStore::new(&schemes, KvConfig::default());
    let mut ctx = store.register().unwrap();
    for k in 0..64 {
        assert_eq!(
            store.put_with_retry(&mut ctx, k, k * 3, RetryPolicy::default()),
            Ok(None)
        );
    }
    for k in 0..64 {
        assert_eq!(store.get(&mut ctx, k), Some(k * 3));
    }
}
