//! Cross-crate integration tests of the *real* schemes and structures:
//! every compatible (structure × scheme) pair under multi-threaded
//! stress, plus the paper-level properties one can check on real
//! hardware — footprint bounds, transparency (thread churn), and the
//! drain-on-quiescence behaviour.

use std::sync::atomic::{AtomicUsize, Ordering};

use era::ds::{HarrisList, HashSet, MichaelList, MsQueue, TreiberStack};
use era::smr::common::{Smr, SupportsUnlinkedTraversal};
use era::smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, leak::Leak, nbr::Nbr};

const THREADS: usize = 4;
const PER_THREAD: i64 = 300;

fn stress_michael<S: Smr + Sync>(smr: &S) {
    let list = MichaelList::new(smr);
    let succeeded = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (list, succeeded) = (&list, &succeeded);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                // Disjoint ranges: all succeed.
                let base = t as i64 * PER_THREAD;
                for k in base..base + PER_THREAD {
                    assert!(list.insert(&mut ctx, k));
                }
                // Contended key: exactly one winner per round.
                for _ in 0..100 {
                    if list.insert(&mut ctx, -1) {
                        assert!(list.delete(&mut ctx, -1));
                        // SAFETY(ordering): Relaxed — tally read after
                        // the scope joins every worker.
                        succeeded.fetch_add(1, Ordering::Relaxed);
                    }
                }
                for k in base..base + PER_THREAD {
                    assert!(list.delete(&mut ctx, k));
                }
                for _ in 0..4 {
                    smr.flush(&mut ctx);
                }
            });
        }
    });
    assert!(list.is_empty() || list.collect_keys() == vec![-1]);
}

fn stress_harris<S: Smr + SupportsUnlinkedTraversal + Sync>(smr: &S) {
    let list = HarrisList::new(smr);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let list = &list;
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                let base = t as i64 * PER_THREAD;
                for k in base..base + PER_THREAD {
                    assert!(list.insert(&mut ctx, k));
                    assert!(list.contains(&mut ctx, k));
                }
                for k in base..base + PER_THREAD {
                    assert!(list.delete(&mut ctx, k));
                }
                for _ in 0..4 {
                    smr.flush(&mut ctx);
                }
            });
        }
    });
    assert!(list.is_empty());
}

#[test]
fn michael_list_under_every_scheme() {
    stress_michael(&Ebr::new(THREADS + 1));
    stress_michael(&Hp::new(THREADS + 1, 3));
    stress_michael(&He::new(THREADS + 1, 3));
    stress_michael(&Ibr::new(THREADS + 1));
    stress_michael(&Leak::new(THREADS + 1));
}

#[test]
fn harris_list_under_every_compatible_scheme() {
    stress_harris(&Ebr::new(THREADS + 1));
    stress_harris(&Nbr::with_threshold(THREADS + 1, 2, 32));
    stress_harris(&Leak::new(THREADS + 1));
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn stack_and_queue_under_hp_and_ebr() {
    let hp = Hp::new(THREADS + 1, 2);
    let stack = TreiberStack::new(&hp);
    let queue_smr = Ebr::new(THREADS + 1);
    let queue = MsQueue::new(&queue_smr);
    let popped = AtomicUsize::new(0);
    let dequeued = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (stack, queue, popped, dequeued, queue_smr, hp) =
                (&stack, &queue, &popped, &dequeued, &queue_smr, &hp);
            s.spawn(move || {
                let mut sctx = hp.register().unwrap();
                let mut qctx = queue_smr.register().unwrap();
                for i in 0..500 {
                    stack.push(&mut sctx, t as i64 * 1000 + i);
                    queue.enqueue(&mut qctx, t as i64 * 1000 + i);
                    if stack.pop(&mut sctx).is_some() {
                        // SAFETY(ordering): Relaxed — pop/dequeue tallies
                        // read after the scope joins every worker.
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                    if queue.dequeue(&mut qctx).is_some() {
                        dequeued.fetch_add(1, Ordering::Relaxed);
                    }
                }
                hp.flush(&mut sctx);
                queue_smr.flush(&mut qctx);
            });
        }
    });
    assert_eq!(popped.load(Ordering::Relaxed) + stack.len(), THREADS * 500);
    assert_eq!(
        dequeued.load(Ordering::Relaxed) + queue.len(),
        THREADS * 500
    );
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn hash_set_under_contention() {
    let smr = Hp::new(THREADS + 1, 3);
    let set = HashSet::new(&smr, 64);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let set = &set;
            let smr = &smr;
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for i in 0..1_000i64 {
                    let k = (t as i64 * 37 + i * 11) % 256;
                    if set.insert(&mut ctx, k) {
                        let _ = set.contains(&mut ctx, k);
                        let _ = set.delete(&mut ctx, k);
                    }
                }
                smr.flush(&mut ctx);
            });
        }
    });
    // Quiescent invariant: no duplicates across buckets.
    let keys = set.collect_keys();
    let mut dedup = keys.clone();
    dedup.dedup();
    assert_eq!(keys, dedup);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn transparency_threads_come_and_go() {
    // Nikolaev & Ravindran's transparency property (§2 related work):
    // thread slots are recycled; repeated register/unregister cycles
    // never exhaust capacity or corrupt reclamation.
    let smr = Ebr::new(4);
    let list = MichaelList::new(&smr);
    for wave in 0..16 {
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let (list, smr) = (&list, &smr);
                s.spawn(move || {
                    let mut ctx = smr.register().expect("slots are recycled");
                    let k = wave * 100 + t;
                    assert!(list.insert(&mut ctx, k));
                    assert!(list.delete(&mut ctx, k));
                    smr.flush(&mut ctx);
                });
            }
        });
    }
    assert!(list.is_empty());
    let st = smr.stats();
    assert_eq!(st.total_retired, 64);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn hp_footprint_bound_holds_under_parallel_churn() {
    let smr = Hp::with_threshold(THREADS + 1, 3, 32);
    let list = MichaelList::new(&smr);
    let bound = smr.robustness_bound();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (list, smr) = (&list, &smr);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for i in 0..2_000i64 {
                    let k = (t as i64 * 7 + i) % 64;
                    let _ = list.insert(&mut ctx, k);
                    let _ = list.delete(&mut ctx, k);
                    assert!(
                        smr.stats().retired_now <= bound,
                        "HP bound {bound} violated"
                    );
                }
            });
        }
    });
    // The high-water mark is the robustness statement in one number:
    // even the worst instant of the run stayed within the bound.
    let st = smr.stats();
    assert!(st.retired_peak > 0, "churn must have retired something");
    assert!(
        st.retired_peak <= bound,
        "peak {} exceeds bound {bound}",
        st.retired_peak
    );
}

#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn ebr_drains_fully_at_quiescence() {
    let smr = Ebr::with_threshold(THREADS + 1, 8);
    let list = MichaelList::new(&smr);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (list, smr) = (&list, &smr);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for i in 0..1_000i64 {
                    let k = t as i64 * 1_000 + i;
                    let _ = list.insert(&mut ctx, k);
                    let _ = list.delete(&mut ctx, k);
                }
                for _ in 0..8 {
                    smr.flush(&mut ctx);
                }
            });
        }
    });
    // One more drain from a fresh context: everything must go.
    let mut ctx = smr.register().unwrap();
    for _ in 0..8 {
        smr.flush(&mut ctx);
    }
    let st = smr.stats();
    assert_eq!(st.retired_now, 0, "{st}");
    // The peak survives the drain and brackets what the run held.
    assert!(st.retired_peak > 0, "retires happened, peak must be set");
    assert!(st.retired_peak as u64 <= st.total_retired, "{st}");
}
