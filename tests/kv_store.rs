//! Integration tests for the `era-kv` serving layer: map semantics
//! against a `BTreeMap` reference model under random op sequences,
//! shard-routing invariants, and the headline scenario — a stalled
//! reader whose shard's footprint the navigator bounds where bare EBR
//! does not.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use era::kv::workload::{run_workload, KeyDist, KvMix, KvWorkloadSpec};
use era::kv::{KvConfig, KvStore};
use era::smr::common::Smr;
use era::smr::ebr::Ebr;
use era::smr::qsbr::Qsbr;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum MapOp {
    Put(i64, i64),
    Remove(i64),
    Get(i64),
    Incr(i64, i64),
}

fn map_ops(max_key: i64) -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        (0..4u8, 0..max_key, -8i64..8).prop_map(|(w, k, v)| match w {
            0 => MapOp::Put(k, v),
            1 => MapOp::Remove(k),
            2 => MapOp::Get(k),
            _ => MapOp::Incr(k, v),
        }),
        0..160,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The sharded store is a map: random op sequences agree with a
    // BTreeMap model op by op, and a final scan agrees wholesale. High
    // budgets keep the navigator out of the way (no shedding), so every
    // write is admitted and Ok(..) can be unwrapped.
    #[test]
    fn kv_store_matches_btreemap_model(ops in map_ops(24)) {
        let schemes: Vec<Ebr> = (0..4).map(|_| Ebr::new(2)).collect();
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Put(k, v) => {
                    prop_assert_eq!(store.put(&mut ctx, k, v).unwrap(), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(store.remove(&mut ctx, k).unwrap(), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(store.get(&mut ctx, k), model.get(&k).copied());
                }
                MapOp::Incr(k, d) => {
                    let expected = model.get_mut(&k).map(|v| { *v += d; *v });
                    prop_assert_eq!(store.incr(&mut ctx, k, d).unwrap(), expected);
                }
            }
        }
        let snapshot: Vec<(i64, i64)> = model.into_iter().collect();
        prop_assert_eq!(store.scan(i64::MIN, i64::MAX), snapshot);
    }

    // Routing is a pure function of the key, and every key's data really
    // lives on (only) the shard it routes to.
    #[test]
    fn keys_land_on_their_routed_shard(raw in prop::collection::vec(-500i64..500, 1..40)) {
        let keys: std::collections::BTreeSet<i64> = raw.into_iter().collect();
        let schemes: Vec<Qsbr> = (0..3).map(|_| Qsbr::new(2)).collect();
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        for &k in &keys {
            store.put(&mut ctx, k, k).unwrap();
        }
        let mut expected = vec![0usize; store.shard_count()];
        for &k in &keys {
            expected[store.shard_of(k)] += 1;
        }
        let counts: Vec<usize> = (0..store.shard_count())
            .map(|i| {
                store
                    .scan(i64::MIN, i64::MAX)
                    .iter()
                    .filter(|&&(k, _)| store.shard_of(k) == i)
                    .count()
            })
            .collect();
        prop_assert_eq!(counts, expected);
        prop_assert_eq!(store.len(), keys.len());
    }
}

/// The acceptance scenario, as a test: one reader stalls inside shard
/// 0's protected region while workers churn. Without the navigator the
/// stalled shard's retired population grows with the run length
/// (EBR's non-robustness); with it, footprint stays bounded near the
/// hard budget because the navigator neutralizes the stalled pin.
///
/// The bounded peak is a sawtooth whose amplitude scales with the
/// *retire rate* against the fixed 200µs navigator poll, while the
/// unbounded baseline scales with the *op count* — so the release
/// build (roughly an order of magnitude faster) needs a longer run for
/// the two regimes to separate by the asserted 4× margin.
#[test]
fn navigator_bounds_footprint_under_stalled_reader() {
    let spec = KvWorkloadSpec {
        mix: KvMix::CHURN,
        dist: KeyDist::Uniform,
        key_range: 512,
        ops_per_thread: if cfg!(debug_assertions) {
            60_000
        } else {
            300_000
        },
        threads: 2,
        prefill: 256,
        seed: 7,
    };
    let cfg = KvConfig {
        retired_soft: 128,
        retired_hard: 512,
        max_threads: 8,
        ..KvConfig::default()
    };

    let run = |navigator_on: bool| {
        let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(6)).collect();
        let store = KvStore::new(&schemes, cfg);
        run_workload(&store, &spec, navigator_on, Some(0))
    };

    let off = run(false);
    let on = run(true);
    let off_peak = off.per_shard_retired_peak[0];
    let on_peak = on.per_shard_retired_peak[0];

    assert!(
        off_peak > cfg.retired_hard * 4,
        "without the navigator the stalled shard must blow far past the \
         hard budget: peak {off_peak} vs budget {}",
        cfg.retired_hard
    );
    assert_eq!(off.neutralizations, 0);
    assert!(
        on.neutralizations >= 1,
        "the navigator must neutralize the stalled pin: {on:?}"
    );
    assert!(
        on.transitions >= 1,
        "health transitions must be recorded: {on:?}"
    );
    assert!(
        on_peak * 4 < off_peak,
        "navigator must bound the stalled shard's footprint: \
         on={on_peak} off={off_peak}"
    );
}

/// QSBR integrates into the store through `quiescent_point` alone, and
/// the navigator's neutralization (announcing on the victim's behalf)
/// bounds it the same way.
#[test]
fn navigator_bounds_qsbr_too() {
    let spec = KvWorkloadSpec {
        mix: KvMix::CHURN,
        dist: KeyDist::Zipfian { theta: 0.9 },
        key_range: 512,
        ops_per_thread: 8_000,
        threads: 2,
        prefill: 256,
        seed: 11,
    };
    let cfg = KvConfig {
        retired_soft: 128,
        retired_hard: 512,
        max_threads: 8,
        ..KvConfig::default()
    };
    let schemes: Vec<Qsbr> = (0..2).map(|_| Qsbr::new(6)).collect();
    let store = KvStore::new(&schemes, cfg);
    let stats = run_workload(&store, &spec, true, Some(0));
    assert!(stats.neutralizations >= 1, "{stats:?}");
    assert!(stats.reader_restarts >= 1, "{stats:?}");
}

/// A neutralized direct client observes exactly one restart signal, at
/// the op boundary — the protocol the navigator contract demands.
#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn neutralized_reader_restarts_once() {
    let schemes: Vec<Ebr> = vec![Ebr::with_threshold(4, 1)];
    let cfg = KvConfig {
        retired_soft: 8,
        retired_hard: 32,
        max_threads: 8,
        ..KvConfig::default()
    };
    let store = KvStore::new(&schemes, cfg);
    let mut ctx = store.register().unwrap();

    let pinned = AtomicBool::new(false);
    let release = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (pinned, release) = (&pinned, &release);
        let smr = store.scheme(0);
        s.spawn(move || {
            let mut pin = smr.register().unwrap();
            smr.begin_op(&mut pin);
            // SAFETY(ordering): Release — publishes the begin_op above
            // to the main thread's Acquire poll of `pinned`.
            pinned.store(true, Ordering::Release);
            while !release.load(Ordering::Acquire) && !smr.needs_restart(&mut pin) {
                std::hint::spin_loop();
            }
            smr.end_op(&mut pin);
            // Exactly one pending restart was consumed by the loop.
            assert!(!smr.needs_restart(&mut pin));
            // SAFETY(ordering): Release — hands the release token back;
            // pairs with the main thread's Acquire re-load.
            release.store(true, Ordering::Release);
        });
        while !pinned.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        for k in 0..64 {
            store.put(&mut ctx, k, k).unwrap();
            store.remove(&mut ctx, k).unwrap();
        }
        while !release.load(Ordering::Acquire) {
            store.navigator_tick();
            std::thread::yield_now();
        }
    });
    let (_, neutralizations, _) = store.nav_counters();
    assert!(neutralizations >= 1);
}
