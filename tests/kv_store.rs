//! Integration tests for the `era-kv` serving layer: map semantics
//! against a `BTreeMap` reference model under random op sequences,
//! shard-routing invariants, and the headline scenario — a stalled
//! reader whose shard's footprint the navigator bounds where bare EBR
//! does not.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use era::kv::workload::{run_workload, KeyDist, KvMix, KvWorkloadSpec};
use era::kv::{KvConfig, KvError, KvStore};
use era::smr::common::Smr;
use era::smr::ebr::Ebr;
use era::smr::qsbr::Qsbr;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum MapOp {
    Put(i64, i64),
    Remove(i64),
    Get(i64),
    Incr(i64, i64),
}

fn map_ops(max_key: i64) -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        (0..4u8, 0..max_key, -8i64..8).prop_map(|(w, k, v)| match w {
            0 => MapOp::Put(k, v),
            1 => MapOp::Remove(k),
            2 => MapOp::Get(k),
            _ => MapOp::Incr(k, v),
        }),
        0..160,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The sharded store is a map: random op sequences agree with a
    // BTreeMap model op by op, and a final scan agrees wholesale. High
    // budgets keep the navigator out of the way (no shedding), so every
    // write is admitted and Ok(..) can be unwrapped.
    #[test]
    fn kv_store_matches_btreemap_model(ops in map_ops(24)) {
        let schemes: Vec<Ebr> = (0..4).map(|_| Ebr::new(2)).collect();
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Put(k, v) => {
                    prop_assert_eq!(store.put(&mut ctx, k, v).unwrap(), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(store.remove(&mut ctx, k).unwrap(), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(store.get(&mut ctx, k), model.get(&k).copied());
                }
                MapOp::Incr(k, d) => {
                    let expected = model.get_mut(&k).map(|v| { *v += d; *v });
                    prop_assert_eq!(store.incr(&mut ctx, k, d).unwrap(), expected);
                }
            }
        }
        let snapshot: Vec<(i64, i64)> = model.into_iter().collect();
        prop_assert_eq!(store.scan(i64::MIN, i64::MAX), snapshot);
    }

    // Routing is a pure function of the key, and every key's data really
    // lives on (only) the shard it routes to.
    #[test]
    fn keys_land_on_their_routed_shard(raw in prop::collection::vec(-500i64..500, 1..40)) {
        let keys: std::collections::BTreeSet<i64> = raw.into_iter().collect();
        let schemes: Vec<Qsbr> = (0..3).map(|_| Qsbr::new(2)).collect();
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        for &k in &keys {
            store.put(&mut ctx, k, k).unwrap();
        }
        let mut expected = vec![0usize; store.shard_count()];
        for &k in &keys {
            expected[store.shard_of(k)] += 1;
        }
        let counts: Vec<usize> = (0..store.shard_count())
            .map(|i| {
                store
                    .scan(i64::MIN, i64::MAX)
                    .iter()
                    .filter(|&&(k, _)| store.shard_of(k) == i)
                    .count()
            })
            .collect();
        prop_assert_eq!(counts, expected);
        prop_assert_eq!(store.len(), keys.len());
    }
}

/// The acceptance scenario, as a test: one reader stalls inside shard
/// 0's protected region while workers churn. Without the navigator the
/// stalled shard's retired population grows with the run length
/// (EBR's non-robustness); with it, footprint stays bounded near the
/// hard budget because the navigator neutralizes the stalled pin.
///
/// The bounded peak is a sawtooth whose amplitude scales with the
/// *retire rate* against the fixed 200µs navigator poll, while the
/// unbounded baseline scales with the *op count* — so the release
/// build (roughly an order of magnitude faster) needs a longer run for
/// the two regimes to separate by the asserted 4× margin.
#[test]
fn navigator_bounds_footprint_under_stalled_reader() {
    let spec = KvWorkloadSpec {
        mix: KvMix::CHURN,
        dist: KeyDist::Uniform,
        key_range: 512,
        ops_per_thread: if cfg!(debug_assertions) {
            60_000
        } else {
            300_000
        },
        threads: 2,
        prefill: 256,
        seed: 7,
    };
    let cfg = KvConfig {
        retired_soft: 128,
        retired_hard: 512,
        max_threads: 8,
        ..KvConfig::default()
    };

    let run = |navigator_on: bool| {
        let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(6)).collect();
        let store = KvStore::new(&schemes, cfg);
        run_workload(&store, &spec, navigator_on, Some(0))
    };

    let off = run(false);
    let on = run(true);
    let off_peak = off.per_shard_retired_peak[0];
    let on_peak = on.per_shard_retired_peak[0];

    assert!(
        off_peak > cfg.retired_hard * 4,
        "without the navigator the stalled shard must blow far past the \
         hard budget: peak {off_peak} vs budget {}",
        cfg.retired_hard
    );
    assert_eq!(off.neutralizations, 0);
    assert!(
        on.neutralizations >= 1,
        "the navigator must neutralize the stalled pin: {on:?}"
    );
    assert!(
        on.transitions >= 1,
        "health transitions must be recorded: {on:?}"
    );
    assert!(
        on_peak * 4 < off_peak,
        "navigator must bound the stalled shard's footprint: \
         on={on_peak} off={off_peak}"
    );
}

/// QSBR integrates into the store through `quiescent_point` alone, and
/// the navigator's neutralization (announcing on the victim's behalf)
/// bounds it the same way.
#[test]
fn navigator_bounds_qsbr_too() {
    let spec = KvWorkloadSpec {
        mix: KvMix::CHURN,
        dist: KeyDist::Zipfian { theta: 0.9 },
        key_range: 512,
        ops_per_thread: 8_000,
        threads: 2,
        prefill: 256,
        seed: 11,
    };
    let cfg = KvConfig {
        retired_soft: 128,
        retired_hard: 512,
        max_threads: 8,
        ..KvConfig::default()
    };
    let schemes: Vec<Qsbr> = (0..2).map(|_| Qsbr::new(6)).collect();
    let store = KvStore::new(&schemes, cfg);
    let stats = run_workload(&store, &spec, true, Some(0));
    assert!(stats.neutralizations >= 1, "{stats:?}");
    assert!(stats.reader_restarts >= 1, "{stats:?}");
}

/// A neutralized direct client observes exactly one restart signal, at
/// the op boundary — the protocol the navigator contract demands.
#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn neutralized_reader_restarts_once() {
    let schemes: Vec<Ebr> = vec![Ebr::with_threshold(4, 1)];
    let cfg = KvConfig {
        retired_soft: 8,
        retired_hard: 32,
        max_threads: 8,
        ..KvConfig::default()
    };
    let store = KvStore::new(&schemes, cfg);
    let mut ctx = store.register().unwrap();

    let pinned = AtomicBool::new(false);
    let release = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (pinned, release) = (&pinned, &release);
        let smr = store.scheme(0);
        s.spawn(move || {
            let mut pin = smr.register().unwrap();
            smr.begin_op(&mut pin);
            // SAFETY(ordering): Release — publishes the begin_op above
            // to the main thread's Acquire poll of `pinned`.
            pinned.store(true, Ordering::Release);
            while !release.load(Ordering::Acquire) && !smr.needs_restart(&mut pin) {
                std::hint::spin_loop();
            }
            smr.end_op(&mut pin);
            // Exactly one pending restart was consumed by the loop.
            assert!(!smr.needs_restart(&mut pin));
            // SAFETY(ordering): Release — hands the release token back;
            // pairs with the main thread's Acquire re-load.
            release.store(true, Ordering::Release);
        });
        while !pinned.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        for k in 0..64 {
            store.put(&mut ctx, k, k).unwrap();
            store.remove(&mut ctx, k).unwrap();
        }
        while !release.load(Ordering::Acquire) {
            store.navigator_tick();
            std::thread::yield_now();
        }
    });
    let (_, neutralizations, _) = store.nav_counters();
    assert!(neutralizations >= 1);
}

/// `put_batch` edge cases: an empty batch is a no-op with an empty
/// result vector, and duplicate keys inside one batch apply in batch
/// order (stable per-shard grouping), so each item's "previous value"
/// sees the item before it.
#[test]
fn put_batch_empty_and_duplicate_keys() {
    let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(4)).collect();
    let store = KvStore::new(&schemes, KvConfig::default());
    let mut ctx = store.register().unwrap();

    assert!(store.put_batch(&mut ctx, &[]).is_empty());
    assert_eq!(store.len(), 0);

    // Two writes to key 7 in one batch, with an unrelated key between
    // them: the second write's previous value must be the first's.
    let results = store.put_batch(&mut ctx, &[(7, 1), (3, 9), (7, 2)]);
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_ref().unwrap(), &None);
    assert_eq!(results[1].as_ref().unwrap(), &None);
    assert_eq!(results[2].as_ref().unwrap(), &Some(1));
    assert_eq!(store.get(&mut ctx, 7), Some(2), "last write wins");
    assert_eq!(store.get(&mut ctx, 3), Some(9));
}

/// A batch spanning a refused shard and a healthy one: the refused
/// shard's items all come back `Overloaded` naming that shard, the
/// healthy shard's items all land, results stay in item order — and
/// the whole refused group costs exactly one shed (the amortized
/// admission contract).
#[test]
fn put_batch_sheds_the_refused_shard_group_wholesale() {
    let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(4)).collect();
    let store = KvStore::new(&schemes, KvConfig::default());
    let mut ctx = store.register().unwrap();

    // Interleave keys of both shards so grouping, not batch position,
    // decides each item's fate.
    let mut items = Vec::new();
    let (mut on0, mut on1) = (0, 0);
    let mut k = 0i64;
    while on0 < 3 || on1 < 3 {
        if store.shard_of(k) == 0 && on0 < 3 {
            items.push((k, k));
            on0 += 1;
        } else if store.shard_of(k) == 1 && on1 < 3 {
            items.push((k, k));
            on1 += 1;
        }
        k += 1;
    }

    store.quarantine(0);
    let (_, _, sheds_before) = store.nav_counters();
    let results = store.put_batch(&mut ctx, &items);
    for (&(key, _), res) in items.iter().zip(&results) {
        match store.shard_of(key) {
            0 => assert_eq!(res, &Err(KvError::Overloaded { shard: 0 }), "key {key}"),
            _ => assert_eq!(res, &Ok(None), "key {key}"),
        }
    }
    let (_, _, sheds_after) = store.nav_counters();
    assert_eq!(
        sheds_after - sheds_before,
        1,
        "one admission decision (and one shed) per refused shard group"
    );
    let landed: Vec<i64> = store.scan(i64::MIN, i64::MAX).iter().map(|e| e.0).collect();
    let expect: Vec<i64> = items
        .iter()
        .map(|&(k, _)| k)
        .filter(|&k| store.shard_of(k) == 1)
        .collect();
    assert_eq!(landed, expect);
}

/// Shard health flips under a stream of batches (quarantine imposed
/// and lifted from another thread): within any single batch, items of
/// one shard are admitted or refused **as a group** — the one
/// admission decision per shard group can never split a group's
/// results — and every refusal names the item's own shard.
#[test]
fn put_batch_group_admission_is_atomic_under_health_flips() {
    let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(4)).collect();
    let store = KvStore::new(&schemes, KvConfig::default());
    let mut ctx = store.register().unwrap();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (store_ref, stop_ref) = (&store, &stop);
        s.spawn(move || {
            while !stop_ref.load(Ordering::Acquire) {
                store_ref.quarantine(0);
                std::thread::yield_now();
                // With tiny footprints the tick immediately recovers
                // the quarantined shard, so batches see both states.
                store_ref.navigator_tick();
                std::thread::yield_now();
            }
        });

        for round in 0..512i64 {
            let base = round * 8;
            let items: Vec<(i64, i64)> = (base..base + 8).map(|k| (k, k)).collect();
            let results = store.put_batch(&mut ctx, &items);
            let mut verdict_per_shard: [Option<bool>; 2] = [None, None];
            for (&(key, _), res) in items.iter().zip(&results) {
                let si = store.shard_of(key);
                let admitted = match res {
                    Ok(_) => true,
                    Err(KvError::Overloaded { shard }) => {
                        assert_eq!(*shard, si, "refusal must name the item's shard");
                        false
                    }
                    Err(other) => panic!("unexpected error {other:?}"),
                };
                match verdict_per_shard[si] {
                    None => verdict_per_shard[si] = Some(admitted),
                    Some(prev) => assert_eq!(
                        prev, admitted,
                        "a shard group's admission split mid-batch (round {round})"
                    ),
                }
            }
        }
        // SAFETY(ordering): Release — publishes the finished batches
        // to the flipper thread's Acquire poll of `stop`.
        stop.store(true, Ordering::Release);
    });
}
