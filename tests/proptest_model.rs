//! Property-based integration tests: every structure against the
//! `BTreeSet`/`Vec`/`VecDeque` reference model under random sequential
//! op sequences, plus invariants of the VBR arena and the
//! linearizability checker.

use std::collections::{BTreeSet, VecDeque};

use era::ds::{
    HarrisList, HashSet, MichaelList, MichaelMap, MsQueue, SkipList, TreiberStack, VbrList,
};
use era::smr::common::Smr;
use era::smr::{ebr::Ebr, hp::Hp, leak::Leak, nbr::Nbr};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum SetOp {
    Insert(i64),
    Delete(i64),
    Contains(i64),
}

fn set_ops(max_key: i64) -> impl Strategy<Value = Vec<SetOp>> {
    prop::collection::vec(
        (0..3u8, 0..max_key).prop_map(|(w, k)| match w {
            0 => SetOp::Insert(k),
            1 => SetOp::Delete(k),
            _ => SetOp::Contains(k),
        }),
        0..120,
    )
}

fn check_set_against_model(ops: &[SetOp], mut apply: impl FnMut(SetOp) -> bool) {
    let mut model = BTreeSet::new();
    for &op in ops {
        let expected = match op {
            SetOp::Insert(k) => model.insert(k),
            SetOp::Delete(k) => model.remove(&k),
            SetOp::Contains(k) => model.contains(&k),
        };
        let got = apply(op);
        assert_eq!(got, expected, "{op:?} diverged from the model");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn michael_list_matches_model(ops in set_ops(16)) {
        let smr = Hp::new(2, 3);
        let list = MichaelList::new(&smr);
        let mut ctx = smr.register().unwrap();
        check_set_against_model(&ops, |op| match op {
            SetOp::Insert(k) => list.insert(&mut ctx, k),
            SetOp::Delete(k) => list.delete(&mut ctx, k),
            SetOp::Contains(k) => list.contains(&mut ctx, k),
        });
    }

    #[test]
    fn harris_list_matches_model(ops in set_ops(16)) {
        let smr = Ebr::with_threshold(2, 4);
        let list = HarrisList::new(&smr);
        let mut ctx = smr.register().unwrap();
        check_set_against_model(&ops, |op| match op {
            SetOp::Insert(k) => list.insert(&mut ctx, k),
            SetOp::Delete(k) => list.delete(&mut ctx, k),
            SetOp::Contains(k) => list.contains(&mut ctx, k),
        });
    }

    #[test]
    fn harris_list_with_nbr_matches_model(ops in set_ops(16)) {
        let smr = Nbr::with_threshold(2, 2, 8);
        let list = HarrisList::new(&smr);
        let mut ctx = smr.register().unwrap();
        check_set_against_model(&ops, |op| match op {
            SetOp::Insert(k) => list.insert(&mut ctx, k),
            SetOp::Delete(k) => list.delete(&mut ctx, k),
            SetOp::Contains(k) => list.contains(&mut ctx, k),
        });
    }

    #[test]
    fn hash_set_matches_model(ops in set_ops(64)) {
        let smr = Leak::new(2);
        let set = HashSet::new(&smr, 8);
        let mut ctx = smr.register().unwrap();
        check_set_against_model(&ops, |op| match op {
            SetOp::Insert(k) => set.insert(&mut ctx, k),
            SetOp::Delete(k) => set.delete(&mut ctx, k),
            SetOp::Contains(k) => set.contains(&mut ctx, k),
        });
    }

    #[test]
    fn vbr_list_matches_model(ops in set_ops(16)) {
        let list = VbrList::new(64);
        check_set_against_model(&ops, |op| match op {
            SetOp::Insert(k) => list.insert(k),
            SetOp::Delete(k) => list.delete(k),
            SetOp::Contains(k) => list.contains(k),
        });
        // VBR invariant: nothing is ever in the retired state.
        prop_assert_eq!(list.arena().stats().retired_now, 0);
    }

    #[test]
    fn skip_list_matches_model(ops in set_ops(16)) {
        let smr = Ebr::with_threshold(2, 8);
        let list = SkipList::new(&smr);
        let mut ctx = smr.register().unwrap();
        check_set_against_model(&ops, |op| match op {
            SetOp::Insert(k) => list.insert(&mut ctx, k),
            SetOp::Delete(k) => list.delete(&mut ctx, k),
            SetOp::Contains(k) => list.contains(&mut ctx, k),
        });
        list.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn michael_map_matches_model(
        ops in prop::collection::vec((0..4u8, 0..12i64, 0..100i64), 0..120)
    ) {
        let smr = Hp::new(2, 3);
        let map = MichaelMap::new(&smr);
        let mut ctx = smr.register().unwrap();
        let mut model: std::collections::BTreeMap<i64, i64> = Default::default();
        for (w, k, v) in ops {
            match w {
                0 => prop_assert_eq!(map.insert(&mut ctx, k, v), model.insert(k, v)),
                1 => prop_assert_eq!(map.remove(&mut ctx, k), model.remove(&k)),
                2 => prop_assert_eq!(map.get(&mut ctx, k), model.get(&k).copied()),
                _ => {
                    let expected = model.get_mut(&k).map(|x| {
                        *x += v;
                        *x
                    });
                    prop_assert_eq!(map.fetch_add(&mut ctx, k, v), expected);
                }
            }
        }
        let entries: Vec<(i64, i64)> = model.into_iter().collect();
        prop_assert_eq!(map.collect_entries(), entries);
    }

    #[test]
    fn stack_matches_model(ops in prop::collection::vec((0..2u8, 0..100i64), 0..120)) {
        let smr = Hp::new(2, 1);
        let stack = TreiberStack::new(&smr);
        let mut ctx = smr.register().unwrap();
        let mut model: Vec<i64> = Vec::new();
        for (w, v) in ops {
            if w == 0 {
                stack.push(&mut ctx, v);
                model.push(v);
            } else {
                prop_assert_eq!(stack.pop(&mut ctx), model.pop());
            }
        }
        prop_assert_eq!(stack.len(), model.len());
    }

    #[test]
    fn queue_matches_model(ops in prop::collection::vec((0..2u8, 0..100i64), 0..120)) {
        let smr = Ebr::new(2);
        let queue = MsQueue::new(&smr);
        let mut ctx = smr.register().unwrap();
        let mut model: VecDeque<i64> = VecDeque::new();
        for (w, v) in ops {
            if w == 0 {
                queue.enqueue(&mut ctx, v);
                model.push_back(v);
            } else {
                prop_assert_eq!(queue.dequeue(&mut ctx), model.pop_front());
            }
        }
        prop_assert_eq!(queue.len(), model.len());
    }

    #[test]
    fn vbr_arena_handles_never_resurrect(rounds in 1usize..200) {
        use era::smr::vbr::Arena;
        let arena: Arena<1> = Arena::new(4);
        let mut dead = Vec::new();
        for i in 0..rounds {
            let h = arena.alloc().unwrap();
            arena.write(h, 0, i as u64).unwrap();
            // All previously retired handles stay dead forever.
            for &d in &dead {
                prop_assert_eq!(arena.read(d, 0), Err(era::smr::vbr::Stale));
            }
            arena.retire(h).unwrap();
            dead.push(h);
            if dead.len() > 8 {
                dead.drain(..4);
            }
        }
    }

    #[test]
    fn sequential_histories_always_linearizable(ops in set_ops(8)) {
        // A history generated by *actually running* a correct set
        // sequentially must always pass the checker (checker soundness
        // on the positive side).
        use era::core::history::{History, Op, Ret};
        use era::core::ids::{ObjectId, ThreadId};
        use era::core::linearizability::Checker;
        use era::core::spec::SetSpec;
        let mut h = History::new();
        let mut model = BTreeSet::new();
        for op in ops.iter().take(40) {
            let (o, r) = match *op {
                SetOp::Insert(k) => (Op::Insert(k), Ret::Bool(model.insert(k))),
                SetOp::Delete(k) => (Op::Delete(k), Ret::Bool(model.remove(&k))),
                SetOp::Contains(k) => (Op::Contains(k), Ret::Bool(model.contains(&k))),
            };
            h.invoke(ThreadId(0), ObjectId(1), o);
            h.respond(ThreadId(0), ObjectId(1), r);
        }
        prop_assert!(Checker::new(&SetSpec).is_linearizable(&h));
    }

    #[test]
    fn robustness_classifier_is_monotone_in_growth(base in 1usize..50, threads in 1usize..8) {
        use era::core::robustness::{classify, RobustnessObservation};
        // Constant-footprint observations must classify Robust whatever
        // the constants are.
        let obs: Vec<_> = [1_000u64, 4_000, 16_000, 64_000]
            .iter()
            .map(|&s| RobustnessObservation {
                scale: s,
                threads,
                peak_retired: base * threads,
                peak_max_active: 4,
            })
            .collect();
        prop_assert!(classify(&obs).verdict.is_robust());
    }
}
