//! Randomized-schedule integration test: the integrated (scheme +
//! Harris list) implementations stay linearizable and Definition-4.2
//! safe under arbitrary interleavings — Conditions 1–2 of the
//! applicability Definition 5.4, checked mechanically.
//!
//! The scheduler is a seeded uniform random walk over thread steps, so
//! failures are reproducible.

use era::core::ids::ThreadId;
use era::core::linearizability::Checker;
use era::core::spec::SetSpec;
use era::sim::schemes::{SimEbr, SimLeak, SimNbr, SimScheme, SimVbr};
use era::sim::{HarrisOp, HarrisSim, OpKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runs `total_ops` random operations over `threads` threads under a
/// random schedule; returns the finished world.
fn random_run(
    scheme: Box<dyn SimScheme>,
    threads: usize,
    total_ops: usize,
    key_range: i64,
    seed: u64,
) -> HarrisSim {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = HarrisSim::new(scheme);
    let mut pending: Vec<Option<HarrisOp>> = (0..threads).map(|_| None).collect();
    let mut started = 0usize;
    let mut finished = 0usize;
    let mut guard = 0usize;
    while finished < total_ops {
        guard += 1;
        assert!(guard < 20_000_000, "random schedule did not terminate");
        let t = rng.random_range(0..threads);
        if pending[t].is_none() {
            if started < total_ops {
                let key = rng.random_range(0..key_range);
                let kind = match rng.random_range(0..3u32) {
                    0 => OpKind::Insert(key),
                    1 => OpKind::Delete(key),
                    _ => OpKind::Contains(key),
                };
                pending[t] = Some(sim.start_op(ThreadId(t), kind));
                started += 1;
            } else {
                continue;
            }
        }
        if let Some(op) = &mut pending[t] {
            if sim.step(op) {
                pending[t] = None;
                finished += 1;
            }
        }
    }
    sim
}

fn check_safe_and_linearizable(name: &str, make: impl Fn() -> Box<dyn SimScheme>) {
    for seed in 0..8u64 {
        let sim = random_run(make(), 3, 30, 5, 0xC0FFEE + seed);
        let verdict = sim.sim.heap.verdict();
        assert!(
            verdict.is_smr(),
            "{name} seed {seed}: violations {:?}",
            verdict.violations
        );
        assert!(
            Checker::new(&SetSpec).is_linearizable(&sim.sim.history),
            "{name} seed {seed}: non-linearizable history:\n{}",
            sim.sim.history
        );
    }
}

#[test]
fn ebr_random_schedules_are_safe_and_linearizable() {
    check_safe_and_linearizable("EBR", || Box::new(SimEbr::new(3)));
}

#[test]
fn leak_random_schedules_are_safe_and_linearizable() {
    check_safe_and_linearizable("Leak", || Box::new(SimLeak));
}

#[test]
fn vbr_random_schedules_are_safe_and_linearizable() {
    check_safe_and_linearizable("VBR", || Box::new(SimVbr::new()));
}

#[test]
fn nbr_random_schedules_are_safe_and_linearizable() {
    check_safe_and_linearizable("NBR", || Box::new(SimNbr::new(3, 2)));
}

#[test]
fn larger_random_runs_preserve_footprint_expectations() {
    // Bigger runs (history too large for the linearizability checker,
    // so we check safety + footprint only).
    let sim = random_run(Box::new(SimVbr::new()), 4, 400, 12, 99);
    assert!(sim.sim.heap.verdict().is_smr());
    assert_eq!(sim.sim.heap.sample().retired, 0, "VBR: retire is reclaim");

    let sim = random_run(Box::new(SimNbr::new(4, 4)), 4, 400, 12, 100);
    assert!(sim.sim.heap.verdict().is_smr());
    assert!(sim.sim.heap.sample().retired <= 8, "NBR threshold bound");

    let sim = random_run(Box::new(SimEbr::new(4)), 4, 400, 12, 101);
    assert!(sim.sim.heap.verdict().is_smr());
}

#[test]
fn histories_from_random_runs_are_well_formed() {
    use era::core::wellformed;
    for seed in 0..4 {
        let sim = random_run(Box::new(SimEbr::new(3)), 3, 40, 6, seed);
        wellformed::check(&sim.sim.history).expect("well-formed history");
    }
}

#[test]
fn phase_discipline_holds_on_random_schedules() {
    // Appendix D under random interleavings, not just the scripted ones.
    use era::core::ids::ThreadId;
    let mut rng = StdRng::seed_from_u64(4242);
    let mut sim = HarrisSim::new(Box::new(SimEbr::new(3)) as Box<dyn SimScheme>);
    sim.sim.enable_phase_check();
    let mut pending: Vec<Option<HarrisOp>> = vec![None, None, None];
    let mut finished = 0;
    while finished < 60 {
        let t = rng.random_range(0..3usize);
        if pending[t].is_none() {
            let key = rng.random_range(0..6i64);
            let kind = match rng.random_range(0..3u32) {
                0 => OpKind::Insert(key),
                1 => OpKind::Delete(key),
                _ => OpKind::Contains(key),
            };
            pending[t] = Some(sim.start_op(ThreadId(t), kind));
        }
        if let Some(op) = &mut pending[t] {
            if sim.step(op) {
                pending[t] = None;
                finished += 1;
            }
        }
    }
    let phases = sim.sim.phases.take().unwrap();
    assert!(
        phases.is_access_aware(),
        "Harris is access-aware (App. D): {:?}",
        phases.violations()
    );
}
